//! Scan-heavy analytics over a fact column: zone maps prune partitions,
//! SMAs answer aggregates from metadata, column imprints skip cachelines,
//! and a bitmap index serves the low-cardinality dimension — the paper's
//! space-optimized corner at work.
//!
//! ```sh
//! cargo run --release --example analytics_scan
//! ```

use rum::bitmap::{BitmapConfig, BitmapIndex};
use rum::prelude::*;
use rum::sparse::{ColumnImprint, ZoneMapConfig, ZoneMappedColumn};

fn main() -> Result<()> {
    let n: u64 = 1 << 18;
    let records: Vec<Record> = (0..n).map(|k| Record::new(k, k % 97)).collect();

    // --- Zone maps + SMA ---------------------------------------------
    let mut zm = ZoneMappedColumn::with_config(ZoneMapConfig {
        partition_records: 4096,
        ..Default::default()
    });
    zm.bulk_load(&records)?;
    let before = zm.tracker().snapshot();
    let rs = zm.range(100_000, 101_000)?;
    let d = zm.tracker().since(&before);
    println!(
        "zonemap range of {} records: {} page reads ({} zones), MO {:.5}",
        rs.len(),
        d.page_reads,
        zm.zone_count(),
        zm.space_profile().space_amplification()
    );
    let before = zm.tracker().snapshot();
    let (count, sum) = zm.aggregate(0, u64::MAX)?;
    let d = zm.tracker().since(&before);
    println!(
        "SMA whole-table aggregate: count={count} sum={sum} with {} page reads",
        d.page_reads
    );

    // --- Column imprints ----------------------------------------------
    let imprint = ColumnImprint::build(&records);
    let (hits, lines_read) = imprint.scan(&records, 5000, 5200);
    println!(
        "imprint scan: {} hits reading {} of {} cachelines ({:.1}% skipped), {} bytes of imprint",
        hits.len(),
        lines_read,
        imprint.lines(),
        imprint.skip_ratio(5000, 5200) * 100.0,
        imprint.size_bytes()
    );

    // --- Bitmap index on the dimension --------------------------------
    let mut bi = BitmapIndex::with_config(BitmapConfig {
        bins: 128,
        key_domain: n,
        merge_threshold: 1024,
    });
    bi.bulk_load(&records)?;
    let before = bi.tracker().snapshot();
    let rs = bi.range(40_000, 41_000)?;
    let d = bi.tracker().since(&before);
    println!(
        "bitmap index range of {} records: {} page reads, MO {:.4}",
        rs.len(),
        d.page_reads,
        bi.space_profile().space_amplification()
    );
    Ok(())
}
