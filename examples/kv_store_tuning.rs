//! A write-heavy key-value store tunes its LSM-tree, Figure-3 style:
//! sweep the size ratio and compaction policy, then let the §5 advisor
//! pick a configuration when the workload flips to reads.
//!
//! ```sh
//! cargo run --release --example kv_store_tuning
//! ```

use rum::lsm::{advise, retune, CompactionPolicy, LsmConfig, LsmTree, TuningGoal};
use rum::prelude::*;

fn ingest(t: &mut LsmTree, n: u64) -> Result<()> {
    for k in 0..n {
        // Scattered keys so runs overlap (the hard case).
        let key = (k.wrapping_mul(7919)) % n;
        t.insert(2 * key, k)?;
    }
    Ok(())
}

fn main() -> Result<()> {
    println!("=== Phase 1: pick a shape for heavy ingest ===");
    println!(
        "{:<12} {:>14} {:>12} {:>10}",
        "config", "write amp", "page writes", "MO"
    );
    for (tag, policy, ratio) in [
        ("T=2  lvl", CompactionPolicy::Levelling, 2),
        ("T=8  lvl", CompactionPolicy::Levelling, 8),
        ("T=4 tier", CompactionPolicy::Tiering, 4),
    ] {
        let mut t = LsmTree::with_config(LsmConfig {
            size_ratio: ratio,
            policy,
            memtable_records: 1024,
            ..Default::default()
        });
        ingest(&mut t, 50_000)?;
        let s = t.tracker().snapshot();
        println!(
            "{:<12} {:>14.2} {:>12} {:>10.3}",
            tag,
            s.write_amplification(),
            s.page_writes,
            t.space_profile().space_amplification()
        );
    }

    println!("\n=== Phase 2: the workload flips to reads; ask the advisor ===");
    let cfg = advise(&OpMix::READ_HEAVY, TuningGoal::Balanced);
    println!(
        "advisor says: policy={:?}, T={}, bloom={} bits/key",
        cfg.policy, cfg.size_ratio, cfg.bloom_bits_per_key
    );

    let mut t = LsmTree::with_config(LsmConfig {
        size_ratio: 4,
        policy: CompactionPolicy::Tiering,
        memtable_records: 1024,
        bloom_bits_per_key: 4.0,
        ..Default::default()
    });
    ingest(&mut t, 50_000)?;

    let read_phase = |t: &mut LsmTree| -> Result<u64> {
        t.tracker().reset();
        for k in 0..20_000u64 {
            t.get((k * 13) % 200_000)?; // ~50% misses
        }
        Ok(t.tracker().snapshot().page_reads)
    };
    let before = read_phase(&mut t)?;
    retune(&mut t, cfg)?;
    let after = read_phase(&mut t)?;
    println!(
        "read-phase page reads: {before} before retune, {after} after ({:.1}x better)",
        before as f64 / after.max(1) as f64
    );
    Ok(())
}
