//! The §5 "access method wizard": describe your workload and constraints,
//! get a ranked list of access-method families with predicted costs.
//!
//! ```sh
//! cargo run --release --example wizard
//! ```

use rum::core::wizard::{recommend, Constraints, Environment};
use rum::prelude::*;

fn show(title: &str, mix: &OpMix, cons: &Constraints) {
    let env = Environment::default();
    println!("\n=== {title} ===");
    println!(
        "{:<18} {:>14} {:>9} violations",
        "family", "E[pages/op]", "feasible"
    );
    for rec in recommend(mix, &env, cons) {
        println!(
            "{:<18} {:>14.2} {:>9} {}",
            rec.family.name(),
            rec.expected_cost,
            if rec.feasible { "yes" } else { "NO" },
            rec.violations.join("; ")
        );
    }
}

fn main() {
    show(
        "OLTP point lookups (read-only)",
        &OpMix::READ_ONLY,
        &Constraints::default(),
    );
    show(
        "ingest firehose (insert-only), flash-friendly writes",
        &OpMix::INSERT_ONLY,
        &Constraints {
            max_write_amp: Some(32.0),
            ..Default::default()
        },
    );
    show(
        "analytics (scan-heavy), tight memory budget",
        &OpMix::SCAN_HEAVY,
        &Constraints {
            needs_ranges: true,
            max_space_amp: Some(1.1),
            ..Default::default()
        },
    );
    show(
        "balanced mix, everything needed",
        &OpMix::BALANCED,
        &Constraints {
            needs_ranges: true,
            ..Default::default()
        },
    );
}
