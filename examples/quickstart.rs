//! Quickstart: build an access method, run a workload, read its RUM
//! profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rum::prelude::*;

fn main() -> Result<()> {
    // 1. Pick any access method. They all speak the same trait.
    let mut btree = rum::btree::BTree::new();
    let mut lsm = rum::lsm::LsmTree::new();
    let mut zonemap = rum::sparse::ZoneMappedColumn::new();

    // 2. Describe a workload: 50k records, 20k mixed operations.
    let spec = WorkloadSpec {
        initial_records: 50_000,
        operations: 20_000,
        mix: OpMix::BALANCED,
        seed: 42,
        ..Default::default()
    };
    let workload = Workload::generate(&spec);

    // 3. Run it and compare the measured RUM overheads.
    println!("{}", RumReport::table_header());
    let mut points = Vec::new();
    for method in [&mut btree as &mut dyn AccessMethod, &mut lsm, &mut zonemap] {
        let report = run_workload(method, &workload)?;
        println!("{}", report.table_row());
        points.push(rum_point(
            report.method.clone(),
            report.ro,
            report.uo,
            report.mo,
        ));
    }

    // 4. The paper's Figure-1 view of the same numbers.
    println!("\n{}", render_ascii(&points, 64, 20));

    // 5. Use a method directly, too.
    btree.insert(999_999, 7)?;
    assert_eq!(btree.get(999_999)?, Some(7));
    let hits = btree.range(100, 140)?;
    println!("range(100..=140) -> {} records", hits.len());
    Ok(())
}
