//! An exploratory data-science session over a fresh dump: database
//! cracking turns each ad-hoc range query into a little more index —
//! "the application, the workload, and the hardware should dictate how we
//! access our data" (§1).
//!
//! ```sh
//! cargo run --release --example adaptive_exploration
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rum::adaptive::{AdaptiveMerger, CrackedColumn};
use rum::prelude::*;

fn main() -> Result<()> {
    let n: usize = 1 << 18;
    let records: Vec<Record> = (0..n as u64).map(|k| Record::new(k, k)).collect();

    let mut cracked = CrackedColumn::new();
    cracked.bulk_load(&records)?;
    let mut merger = AdaptiveMerger::new(16_384);
    merger.bulk_load(&records)?;

    println!(
        "{:>8} {:>18} {:>18} {:>10}",
        "query#", "cracking rd(KB)", "adaptive-merge rd(KB)", "pieces"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for q in 0..100 {
        let lo = rng.gen_range(0..(n as u64 - 2000));
        let hi = lo + 1000;
        let cost = |m: &mut dyn AccessMethod| -> Result<u64> {
            let before = m.tracker().snapshot();
            m.range(lo, hi)?;
            Ok(m.tracker().since(&before).total_read_bytes() / 1024)
        };
        let ck = cost(&mut cracked)?;
        let am = cost(&mut merger)?;
        if q % 10 == 0 {
            println!("{:>8} {:>18} {:>18} {:>10}", q, ck, am, cracked.pieces());
        }
    }
    println!(
        "\nafter 100 queries: cracker index {} pivots ({} bytes); merger consolidated {} of {} records",
        cracked.pieces() - 1,
        cracked.index_bytes(),
        merger.merged_records(),
        merger.merged_records() + merger.unmerged_records(),
    );
    println!("both converge toward index-like reads while cold data stays untouched.");
    Ok(())
}
