//! # rum-obs
//!
//! A zero-dependency exporter for the [`rum_core::metrics`] plane:
//! renders a [`MetricsSnapshot`] in Prometheus text exposition format
//! (version 0.0.4) plus a JSON snapshot, and serves both over a plain
//! `std::net::TcpListener` — no async runtime, no HTTP crate.
//!
//! * [`render_prometheus`] / [`parse_prometheus`] — text format out and
//!   (a validating subset) back in; the parser is what the CI smoke leg
//!   uses to prove the exposition is well-formed.
//! * [`render_json`] — the same snapshot as one JSON object, with
//!   histogram quantiles pre-computed.
//! * [`serve`] — a background thread accepting connections and
//!   answering `GET /metrics` and `GET /snapshot.json`; bind to port 0
//!   for an ephemeral port, and drop (or
//!   [`shutdown`](MetricsServer::shutdown)) to stop it.
//! * [`http_get`] — the matching one-shot client, used by `rum_top` and
//!   the smoke tests.
//!
//! Everything here *reads* the registry; nothing writes it, so an
//! exporter attached to a live run is as observer-free as the metrics
//! plane itself.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rum_core::metrics::{MetricKey, MetricsRegistry, MetricsSnapshot};

// ---- text exposition -------------------------------------------------------

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        *last = name.to_string();
    }
}

/// Render a snapshot in Prometheus text exposition format: counters,
/// gauges, then histograms (cumulative `_bucket{le=…}` series over the
/// non-empty log buckets, plus `+Inf`, `_sum`, and `_count`). `# TYPE`
/// lines are emitted once per metric name; series order is
/// deterministic (name, then sorted labels).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (key, v) in &snap.counters {
        type_line(&mut out, &mut last, &key.name, "counter");
        out.push_str(&key.name);
        render_labels(&mut out, &key.labels, None);
        out.push_str(&format!(" {v}\n"));
    }
    for (key, v) in &snap.gauges {
        type_line(&mut out, &mut last, &key.name, "gauge");
        out.push_str(&key.name);
        render_labels(&mut out, &key.labels, None);
        out.push(' ');
        out.push_str(&format_value(*v));
        out.push('\n');
    }
    for (key, h) in &snap.histograms {
        type_line(&mut out, &mut last, &key.name, "histogram");
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            out.push_str(&key.name);
            out.push_str("_bucket");
            render_labels(&mut out, &key.labels, Some(("le", &upper.to_string())));
            out.push_str(&format!(" {cumulative}\n"));
        }
        out.push_str(&key.name);
        out.push_str("_bucket");
        render_labels(&mut out, &key.labels, Some(("le", "+Inf")));
        out.push_str(&format!(" {}\n", h.count()));
        out.push_str(&key.name);
        out.push_str("_sum");
        render_labels(&mut out, &key.labels, None);
        out.push_str(&format!(" {}\n", h.sum()));
        out.push_str(&key.name);
        out.push_str("_count");
        render_labels(&mut out, &key.labels, None);
        out.push_str(&format!(" {}\n", h.count()));
    }
    out
}

/// One parsed sample line of a Prometheus text exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    /// The value of the named label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse (and thereby validate) a Prometheus text exposition: returns
/// every sample line, or a `"line N: why"` error on the first malformed
/// line. Comments (`#`) and blank lines are skipped; an optional
/// trailing timestamp is accepted and ignored. This is the validator
/// the CI smoke leg runs over a live scrape.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |why: &str| format!("line {}: {why}: {raw:?}", idx + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (ident, rest) = match line.find(['{', ' ', '\t']) {
            Some(pos) => (&line[..pos], &line[pos..]),
            None => return Err(err("no value")),
        };
        if !valid_name(ident) {
            return Err(err("invalid metric name"));
        }
        let mut labels = Vec::new();
        let rest = if let Some(body) = rest.strip_prefix('{') {
            let close = body.find('}').ok_or_else(|| err("unclosed label set"))?;
            let label_src = &body[..close];
            if !label_src.is_empty() {
                for pair in label_src.split(',') {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("label without ="))?;
                    if !valid_name(k.trim()) {
                        return Err(err("invalid label name"));
                    }
                    let v = v.trim();
                    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
                        return Err(err("label value not quoted"));
                    }
                    labels.push((
                        k.trim().to_string(),
                        v[1..v.len() - 1]
                            .replace("\\\"", "\"")
                            .replace("\\n", "\n")
                            .replace("\\\\", "\\"),
                    ));
                }
            }
            &body[close + 1..]
        } else {
            rest
        };
        let mut parts = rest.split_whitespace();
        let value_src = parts.next().ok_or_else(|| err("no value"))?;
        let value = match value_src {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|_| err("unparsable value"))?,
        };
        if parts.next().is_some() && parts.next().is_some() {
            return Err(err("trailing garbage after timestamp"));
        }
        samples.push(PromSample {
            name: ident.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

// ---- JSON snapshot ---------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no Inf/NaN literals; non-finite gauges become null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_key(key: &MetricKey) -> String {
    let labels: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!(
        "\"name\":\"{}\",\"labels\":{{{}}}",
        json_escape(&key.name),
        labels.join(",")
    )
}

/// Render a snapshot as one JSON object:
/// `{"counters":[…],"gauges":[…],"histograms":[…]}`, histograms with
/// count/sum/min/p50/p90/p99/max pre-computed. Hand-rolled (and
/// escape-correct) because the workspace builds offline with no JSON
/// dependency.
pub fn render_json(snap: &MetricsSnapshot) -> String {
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("{{{},\"value\":{v}}}", json_key(k)))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, v)| format!("{{{},\"value\":{}}}", json_key(k), json_f64(*v)))
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "{{{},\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                json_key(k),
                h.count(),
                h.sum(),
                h.min(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            )
        })
        .collect();
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

// ---- the server ------------------------------------------------------------

/// Handle to a running exporter. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop and joins the
/// thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address — with port 0 this is where the ephemeral port
    /// actually landed.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the blocking accept with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `GET /metrics` (Prometheus text) and `GET /snapshot.json` from
/// `registry` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
/// One background thread handles connections serially — scrape traffic,
/// not serving traffic. Every response snapshots the registry at
/// request time, so a scrape mid-run sees the live state.
pub fn serve(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rum-obs-exporter".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = answer(&mut stream, &registry);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn read_request_path(stream: &mut TcpStream) -> io::Result<String> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut first = text.lines().next().unwrap_or("").split_whitespace();
    match (first.next(), first.next()) {
        (Some("GET"), Some(path)) => Ok(path.to_string()),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "not a GET")),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn answer(stream: &mut TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    let path = match read_request_path(stream) {
        Ok(p) => p,
        // A malformed request (or the shutdown wake-up connection)
        // just closes.
        Err(_) => return Ok(()),
    };
    match path.as_str() {
        "/metrics" => {
            let body = render_prometheus(&registry.snapshot());
            write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/snapshot.json" => {
            let body = render_json(&registry.snapshot());
            write_response(stream, "200 OK", "application/json", &body)
        }
        "/" => write_response(
            stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "rum-obs exporter\n/metrics — Prometheus text\n/snapshot.json — JSON snapshot\n",
        ),
        _ => write_response(
            stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n",
        ),
    }
}

/// One-shot HTTP GET against `addr` (e.g. the server's
/// [`local_addr`](MetricsServer::local_addr)). Returns the status code
/// and body. The client side of [`serve`], for dashboards and smoke
/// tests.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::shared();
        r.counter_add("rum_events_total", &[("kind", "lsm_flush")], 3);
        r.counter_add("rum_events_total", &[("kind", "wal_sync")], 9);
        r.gauge_set("rum_space_amplification", &[], 1.25);
        r.gauge_set("rum_class_read_amplification", &[("class", "read")], 4.5);
        for v in [100, 200, 100_000] {
            r.observe("rum_op_latency_ns", &[("class", "read")], v);
        }
        r
    }

    #[test]
    fn render_parse_roundtrip_preserves_samples() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE rum_events_total counter"));
        assert!(text.contains("rum_events_total{kind=\"lsm_flush\"} 3"));
        assert!(text.contains("# TYPE rum_op_latency_ns histogram"));
        assert!(text.contains("rum_op_latency_ns_count{class=\"read\"} 3"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        let samples = parse_prometheus(&text).expect("rendered text must parse");
        let flush = samples
            .iter()
            .find(|s| s.name == "rum_events_total" && s.label("kind") == Some("lsm_flush"))
            .unwrap();
        assert_eq!(flush.value, 3.0);
        let inf_bucket = samples
            .iter()
            .find(|s| s.name == "rum_op_latency_ns_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf_bucket.value, 3.0);
        // Cumulative bucket counts are monotone.
        let mut last = 0.0;
        for s in samples
            .iter()
            .filter(|s| s.name == "rum_op_latency_ns_bucket")
        {
            assert!(s.value >= last, "bucket counts must be cumulative");
            last = s.value;
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("ok_metric 1\n").is_ok());
        assert!(parse_prometheus("metric with spaces 1 2 3 4\n").is_err());
        assert!(parse_prometheus("1leading_digit 5\n").is_err());
        assert!(parse_prometheus("m{unclosed=\"v\" 5\n").is_err());
        assert!(parse_prometheus("m{k=unquoted} 5\n").is_err());
        assert!(parse_prometheus("m notanumber\n").is_err());
        assert!(
            parse_prometheus("m{} +Inf\n").is_ok(),
            "+Inf is a valid value"
        );
        assert!(parse_prometheus("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn special_values_render_as_prometheus_spells_them() {
        let r = MetricsRegistry::shared();
        r.gauge_set("g_inf", &[], f64::INFINITY);
        r.gauge_set("g_nan", &[], f64::NAN);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("g_inf +Inf"));
        assert!(text.contains("g_nan NaN"));
        let parsed = parse_prometheus(&text).unwrap();
        assert!(parsed
            .iter()
            .any(|s| s.name == "g_inf" && s.value.is_infinite()));
    }

    #[test]
    fn json_snapshot_is_structured_and_escapes() {
        let r = MetricsRegistry::shared();
        r.counter_add("c", &[("k", "va\"lue")], 1);
        r.gauge_set("g", &[], f64::INFINITY);
        r.observe("h", &[], 50);
        let json = render_json(&r.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":["));
        assert!(json.contains("va\\\"lue"));
        assert!(
            json.contains("\"value\":null"),
            "non-finite gauge becomes null"
        );
        assert!(json.contains("\"p50\":50"));
    }

    #[test]
    fn server_serves_metrics_json_and_404() {
        let registry = sample_registry();
        let mut server = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let (status, body) = http_get(addr, "/metrics").expect("scrape");
        assert_eq!(status, 200);
        let samples = parse_prometheus(&body).expect("live scrape parses");
        assert!(samples.iter().any(|s| s.name == "rum_space_amplification"));
        // The scrape is live: mutate and scrape again.
        registry.counter_add("rum_events_total", &[("kind", "wal_sync")], 1);
        let (_, body2) = http_get(addr, "/metrics").unwrap();
        assert!(body2.contains("rum_events_total{kind=\"wal_sync\"} 10"));
        let (status, json) = http_get(addr, "/snapshot.json").unwrap();
        assert_eq!(status, 200);
        assert!(json.contains("\"gauges\":["));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
        server.shutdown(); // idempotent
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "server is down after shutdown"
        );
    }
}
