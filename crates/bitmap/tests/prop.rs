//! Property-based tests: WAH compression is lossless and its compressed
//! operators agree with plain boolean algebra; update-friendly bitmaps
//! agree with a plain bitset under any update stream.

use proptest::prelude::*;
use rum_bitmap::{UpdateFriendlyBitmap, WahVec};

proptest! {
    #[test]
    fn wah_roundtrip_is_lossless(bits in proptest::collection::vec(any::<bool>(), 0..4000)) {
        let w = WahVec::from_bools(&bits);
        prop_assert_eq!(w.to_bools(), bits);
    }

    #[test]
    fn wah_count_matches(bits in proptest::collection::vec(any::<bool>(), 0..4000)) {
        let w = WahVec::from_bools(&bits);
        prop_assert_eq!(w.count_ones() as usize, bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn wah_ops_match_boolean_algebra(
        pair in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..3000)
    ) {
        let a: Vec<bool> = pair.iter().map(|&(x, _)| x).collect();
        let b: Vec<bool> = pair.iter().map(|&(_, y)| y).collect();
        let wa = WahVec::from_bools(&a);
        let wb = WahVec::from_bools(&b);
        let and: Vec<bool> = pair.iter().map(|&(x, y)| x && y).collect();
        let or: Vec<bool> = pair.iter().map(|&(x, y)| x || y).collect();
        let andnot: Vec<bool> = pair.iter().map(|&(x, y)| x && !y).collect();
        prop_assert_eq!(wa.and(&wb).to_bools(), and);
        prop_assert_eq!(wa.or(&wb).to_bools(), or);
        prop_assert_eq!(wa.and_not(&wb).to_bools(), andnot);
    }

    #[test]
    fn wah_runs_compress_clustered_data(
        run_lens in proptest::collection::vec(1usize..200, 1..30),
    ) {
        // Alternating all-zero / all-one runs: WAH must not exceed the
        // plain size by more than the 32/31 literal overhead.
        let mut bits = Vec::new();
        for (i, len) in run_lens.iter().enumerate() {
            bits.extend(std::iter::repeat_n(i % 2 == 1, *len));
        }
        let w = WahVec::from_bools(&bits);
        let plain_bytes = bits.len().div_ceil(8) as u64;
        prop_assert!(w.size_bytes() <= plain_bytes * 2 + 16);
        prop_assert_eq!(w.to_bools(), bits);
    }

    #[test]
    fn updatable_bitmap_matches_bitset(
        ops in proptest::collection::vec((any::<bool>(), 0u64..512), 1..400),
        threshold in 1usize..64,
    ) {
        let mut b = UpdateFriendlyBitmap::new(512, threshold);
        let mut model = vec![false; 512];
        for (set, pos) in ops {
            if set {
                b.set(pos);
                model[pos as usize] = true;
            } else {
                b.clear(pos);
                model[pos as usize] = false;
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(b.get(i as u64), m, "bit {}", i);
        }
        let expect: Vec<u64> = model
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(b.ones(), expect.clone());
        prop_assert_eq!(b.materialize().ones(), expect);
    }
}
