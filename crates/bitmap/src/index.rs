//! A bitmap index as a full access method: an append-only paged row store
//! (base data) plus one update-friendly bitmap per key-range bin
//! (auxiliary data).
//!
//! Deleted rows leave holes — the row slots of live records must stay
//! stable because every bitmap addresses rows by position. That dead space
//! and the bitmaps themselves are the MO this method pays; in exchange,
//! range queries touch only the pages whose bins intersect the predicate.

use std::sync::Arc;

use rum_columns::packed::PackedFile;
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value,
};
use rum_storage::{MemDevice, Pager};

use crate::updatable::UpdateFriendlyBitmap;

/// Configuration of the binning and delta-merge behavior.
#[derive(Clone, Copy, Debug)]
pub struct BitmapConfig {
    /// Number of key-range bins (the "cardinality" of the index).
    pub bins: usize,
    /// Expected key-domain upper bound; keys beyond it land in the last
    /// bin (pruning degrades gracefully).
    pub key_domain: u64,
    /// Delta entries per bitmap before a merge.
    pub merge_threshold: usize,
}

impl Default for BitmapConfig {
    fn default() -> Self {
        BitmapConfig {
            bins: 64,
            key_domain: 1 << 20,
            merge_threshold: 1024,
        }
    }
}

/// The bitmap index.
pub struct BitmapIndex {
    rows: PackedFile,
    bitmaps: Vec<UpdateFriendlyBitmap>,
    config: BitmapConfig,
    live: usize,
    pager: Pager<MemDevice>,
    tracker: Arc<CostTracker>,
}

impl BitmapIndex {
    pub fn new() -> Self {
        Self::with_config(BitmapConfig::default())
    }

    pub fn with_config(config: BitmapConfig) -> Self {
        assert!(config.bins >= 1);
        let tracker = CostTracker::new();
        BitmapIndex {
            rows: PackedFile::new(),
            bitmaps: (0..config.bins)
                .map(|_| UpdateFriendlyBitmap::new(0, config.merge_threshold))
                .collect(),
            config,
            live: 0,
            pager: Pager::new(MemDevice::new(), Arc::clone(&tracker)),
            tracker,
        }
    }

    pub fn config(&self) -> &BitmapConfig {
        &self.config
    }

    fn bin_of(&self, key: Key) -> usize {
        let width = (self.config.key_domain / self.config.bins as u64).max(1);
        ((key / width) as usize).min(self.config.bins - 1)
    }

    /// Charge reading one bin's bitmap (auxiliary traffic).
    fn charge_bitmap_read(&self, bin: usize) {
        self.tracker
            .read(DataClass::Aux, self.bitmaps[bin].size_bytes());
    }

    /// Charge a delta update to one bin's bitmap.
    fn charge_bitmap_write(&self) {
        self.tracker.write(DataClass::Aux, 8);
    }

    fn grow_bitmaps(&mut self, rows: u64) {
        for b in &mut self.bitmaps {
            b.grow(rows);
        }
    }

    /// Row ids whose records *may* match `key` (exact: one bin's bits).
    fn candidates_for_key(&mut self, key: Key) -> Vec<u64> {
        let bin = self.bin_of(key);
        self.charge_bitmap_read(bin);
        self.bitmaps[bin].ones()
    }

    /// Find the live row holding `key`, if any.
    fn find_row(&mut self, key: Key) -> Result<Option<u64>> {
        for row in self.candidates_for_key(key) {
            let rec = self.rows.get(&mut self.pager, row as usize)?;
            if rec.key == key {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Dead (deleted) row slots currently wasting space.
    pub fn dead_rows(&self) -> usize {
        self.rows.len() - self.live
    }
}

impl Default for BitmapIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for BitmapIndex {
    fn name(&self) -> String {
        "bitmap-index".into()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let bitmap_bytes: u64 = self.bitmaps.iter().map(|b| b.size_bytes()).sum();
        let physical = self.pager.physical_bytes() + self.rows.directory_bytes() + bitmap_bytes;
        SpaceProfile::from_physical(self.live, physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        match self.find_row(key)? {
            Some(row) => Ok(Some(self.rows.get(&mut self.pager, row as usize)?.value)),
            None => Ok(None),
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        if self.rows.is_empty() {
            return Ok(Vec::new());
        }
        let (b_lo, b_hi) = (self.bin_of(lo), self.bin_of(hi.max(lo)));
        // OR the candidate bins' row sets, then fetch touched pages once.
        let mut rows: Vec<u64> = Vec::new();
        for bin in b_lo..=b_hi {
            self.charge_bitmap_read(bin);
            rows.extend(self.bitmaps[bin].ones());
        }
        rows.sort_unstable();
        rows.dedup();
        let mut out = Vec::new();
        for row in rows {
            let rec = self.rows.get(&mut self.pager, row as usize)?;
            if rec.key >= lo && rec.key <= hi {
                out.push(rec);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if let Some(row) = self.find_row(key)? {
            // Upsert: value change, bins untouched (bins are on the key).
            self.rows
                .set(&mut self.pager, row as usize, Record::new(key, value))?;
            return Ok(());
        }
        let row = self.rows.len() as u64;
        self.rows.push(&mut self.pager, Record::new(key, value))?;
        self.grow_bitmaps(row + 1);
        let bin = self.bin_of(key);
        self.bitmaps[bin].set(row);
        self.charge_bitmap_write();
        self.live += 1;
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.find_row(key)? {
            Some(row) => {
                self.rows
                    .set(&mut self.pager, row as usize, Record::new(key, value))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        match self.find_row(key)? {
            Some(row) => {
                let bin = self.bin_of(key);
                self.bitmaps[bin].clear(row);
                self.charge_bitmap_write();
                self.live -= 1;
                // The row slot stays behind as a hole: bitmaps address rows
                // by position.
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.rows.rebuild(&mut self.pager, records)?;
        // Re-derive the domain so bins are balanced for this dataset.
        if let Some(last) = records.last() {
            self.config.key_domain = (last.key + 1).max(self.config.bins as u64);
        }
        let n = records.len() as u64;
        self.bitmaps = (0..self.config.bins)
            .map(|_| UpdateFriendlyBitmap::new(n, self.config.merge_threshold))
            .collect();
        for (row, r) in records.iter().enumerate() {
            let bin = self.bin_of(r.key);
            self.bitmaps[bin].set(row as u64);
        }
        for b in &mut self.bitmaps {
            b.merge();
            self.tracker.write(DataClass::Aux, b.size_bytes());
        }
        self.live = records.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::RECORDS_PER_PAGE;

    fn loaded(n: u64) -> BitmapIndex {
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k + 1)).collect();
        let mut b = BitmapIndex::new();
        b.bulk_load(&recs).unwrap();
        b
    }

    #[test]
    fn crud_roundtrip() {
        let mut b = BitmapIndex::with_config(BitmapConfig {
            bins: 8,
            key_domain: 1000,
            merge_threshold: 16,
        });
        b.insert(10, 100).unwrap();
        b.insert(500, 200).unwrap();
        assert_eq!(b.get(10).unwrap(), Some(100));
        assert_eq!(b.get(11).unwrap(), None);
        assert!(b.update(500, 222).unwrap());
        assert!(!b.update(501, 0).unwrap());
        assert!(b.delete(10).unwrap());
        assert!(!b.delete(10).unwrap());
        assert_eq!(b.get(10).unwrap(), None);
        assert_eq!(b.len(), 1);
        assert_eq!(b.dead_rows(), 1);
    }

    #[test]
    fn insert_is_upsert_without_new_row() {
        let mut b = BitmapIndex::new();
        b.insert(5, 1).unwrap();
        b.insert(5, 2).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.dead_rows(), 0);
        assert_eq!(b.get(5).unwrap(), Some(2));
    }

    #[test]
    fn range_reads_only_matching_bins() {
        let n = 64 * RECORDS_PER_PAGE as u64;
        let mut b = loaded(n);
        let before = b.tracker().snapshot();
        let rs = b.range(100, 150).unwrap();
        assert_eq!(rs.len(), 51);
        let d = b.tracker().since(&before);
        // One bin covers n/64 = 256 keys here; candidates live on one page.
        assert!(
            d.page_reads <= 4,
            "narrow range should touch few pages, read {}",
            d.page_reads
        );
    }

    #[test]
    fn range_correctness_across_bins() {
        let mut b = loaded(5000);
        let rs = b.range(1000, 3000).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (1000..=3000).collect::<Vec<_>>());
    }

    #[test]
    fn deletes_leave_holes_that_cost_space() {
        let mut b = loaded(4096);
        let before_mo = b.space_profile().space_amplification();
        for k in 0..2048u64 {
            assert!(b.delete(k).unwrap());
        }
        let after_mo = b.space_profile().space_amplification();
        assert!(after_mo > before_mo * 1.5, "{before_mo} -> {after_mo}");
        // Deleted rows really are invisible.
        assert_eq!(b.get(100).unwrap(), None);
        assert_eq!(b.get(3000).unwrap(), Some(3001));
        assert_eq!(b.range(0, 4095).unwrap().len(), 2048);
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        let mut b = BitmapIndex::with_config(BitmapConfig {
            bins: 16,
            key_domain: 2000,
            merge_threshold: 32,
        });
        let mut model = std::collections::BTreeMap::new();
        for step in 0..3000u64 {
            let k = rng.gen_range(0..2000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    b.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(b.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(b.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(b.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
            }
            assert_eq!(b.len(), model.len());
        }
        let all = b.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn more_bins_prune_better_but_cost_more_space() {
        let build = |bins: usize| {
            let recs: Vec<Record> = (0..20_000u64).map(|k| Record::new(k, 0)).collect();
            let mut b = BitmapIndex::with_config(BitmapConfig {
                bins,
                key_domain: 20_000,
                merge_threshold: 1024,
            });
            b.bulk_load(&recs).unwrap();
            b
        };
        let mut fine = build(256);
        let mut coarse = build(8);
        let cost = |b: &mut BitmapIndex| {
            let before = b.tracker().snapshot();
            b.range(5000, 5050).unwrap();
            b.tracker().since(&before).page_reads
        };
        assert!(cost(&mut fine) <= cost(&mut coarse));
        let fine_aux = fine.space_profile().aux_bytes;
        let coarse_aux = coarse.space_profile().aux_bytes;
        assert!(
            fine_aux >= coarse_aux,
            "fine {fine_aux} vs coarse {coarse_aux}"
        );
    }
}
