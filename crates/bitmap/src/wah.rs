//! Word-Aligned Hybrid (WAH) bitmap compression (Wu et al., FastBit).
//!
//! The bit stream is chopped into 31-bit groups. Each 32-bit output word
//! is either a *literal* (MSB = 0, 31 payload bits) or a *fill*
//! (MSB = 1, bit 30 = fill value, low 30 bits = run length in groups).
//! Sparse and clustered bitmaps compress by orders of magnitude, and
//! logical operations run directly on the compressed form — computation
//! traded for space, the paper's recurring theme.

/// Bits per group.
const GROUP_BITS: u32 = 31;
const LITERAL_MASK: u32 = (1 << GROUP_BITS) - 1;
const FILL_FLAG: u32 = 1 << 31;
const FILL_VALUE: u32 = 1 << 30;
const MAX_RUN: u32 = (1 << 30) - 1;

/// A WAH-compressed bitmap.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WahVec {
    words: Vec<u32>,
    /// Logical length in bits.
    n_bits: u64,
}

/// One decoded run: `count` consecutive groups, each equal to `group`.
#[derive(Clone, Copy, Debug)]
struct Run {
    group: u32,
    count: u32,
}

struct RunCursor<'a> {
    words: &'a [u32],
    idx: usize,
    /// Remaining groups in the current fill word.
    pending: Option<Run>,
}

impl<'a> RunCursor<'a> {
    fn new(words: &'a [u32]) -> Self {
        RunCursor {
            words,
            idx: 0,
            pending: None,
        }
    }

    /// Next run (fills come out whole; literals as count = 1).
    fn next_run(&mut self) -> Option<Run> {
        if let Some(r) = self.pending.take() {
            return Some(r);
        }
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        if w & FILL_FLAG != 0 {
            let group = if w & FILL_VALUE != 0 { LITERAL_MASK } else { 0 };
            Some(Run {
                group,
                count: w & MAX_RUN,
            })
        } else {
            Some(Run { group: w, count: 1 })
        }
    }
}

impl WahVec {
    /// An empty bitmap of `n_bits` logical zero bits.
    pub fn zeros(n_bits: u64) -> Self {
        let mut v = WahVec {
            words: Vec::new(),
            n_bits,
        };
        let groups = n_bits.div_ceil(GROUP_BITS as u64);
        let mut remaining = groups;
        while remaining > 0 {
            let chunk = remaining.min(MAX_RUN as u64) as u32;
            v.push_run(0, chunk);
            remaining -= chunk as u64;
        }
        v
    }

    /// Compress a plain bit slice (`bits[i]` = bit `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = WahVec {
            words: Vec::new(),
            n_bits: bits.len() as u64,
        };
        for chunk in bits.chunks(GROUP_BITS as usize) {
            let mut g = 0u32;
            for (i, &b) in chunk.iter().enumerate() {
                if b {
                    g |= 1 << i;
                }
            }
            v.push_run(g, 1);
        }
        v
    }

    /// Compress from set-bit positions (must be sorted ascending, unique).
    pub fn from_positions(positions: &[u64], n_bits: u64) -> Self {
        let mut bools = vec![false; n_bits as usize];
        for &p in positions {
            bools[p as usize] = true;
        }
        Self::from_bools(&bools)
    }

    /// Logical bit length.
    pub fn len_bits(&self) -> u64 {
        self.n_bits
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.words.len() * 4 + 8) as u64
    }

    /// Append `count` groups equal to `group`, merging runs.
    fn push_run(&mut self, group: u32, mut count: u32) {
        if count == 0 {
            return;
        }
        let is_fill = group == 0 || group == LITERAL_MASK;
        if is_fill {
            // Merge with a preceding fill of the same value.
            if let Some(&last) = self.words.last() {
                if last & FILL_FLAG != 0 {
                    let last_val = last & FILL_VALUE != 0;
                    let this_val = group == LITERAL_MASK;
                    if last_val == this_val {
                        let have = last & MAX_RUN;
                        let add = count.min(MAX_RUN - have);
                        if add > 0 {
                            *self.words.last_mut().unwrap() = (last & !MAX_RUN) | (have + add);
                            count -= add;
                        }
                    }
                } else if last == group && count < MAX_RUN {
                    // Previous literal equals this fill value: coalesce.
                    self.words.pop();
                    count += 1;
                }
            }
            while count > 0 {
                let chunk = count.min(MAX_RUN);
                let mut w = FILL_FLAG | chunk;
                if group == LITERAL_MASK {
                    w |= FILL_VALUE;
                }
                self.words.push(w);
                count -= chunk;
            }
        } else {
            for _ in 0..count {
                self.words.push(group);
            }
        }
    }

    /// Pointwise combine with another bitmap of the same logical length.
    fn combine(&self, other: &WahVec, f: impl Fn(u32, u32) -> u32) -> WahVec {
        assert_eq!(
            self.n_bits, other.n_bits,
            "combining bitmaps of different lengths"
        );
        let mut out = WahVec {
            words: Vec::new(),
            n_bits: self.n_bits,
        };
        let mut a = RunCursor::new(&self.words);
        let mut b = RunCursor::new(&other.words);
        let mut ra = a.next_run();
        let mut rb = b.next_run();
        while let (Some(x), Some(y)) = (ra, rb) {
            let take = x.count.min(y.count);
            out.push_run(f(x.group, y.group) & LITERAL_MASK, take);
            ra = if x.count > take {
                Some(Run {
                    group: x.group,
                    count: x.count - take,
                })
            } else {
                a.next_run()
            };
            rb = if y.count > take {
                Some(Run {
                    group: y.group,
                    count: y.count - take,
                })
            } else {
                b.next_run()
            };
        }
        out
    }

    /// Bitwise OR on the compressed form.
    pub fn or(&self, other: &WahVec) -> WahVec {
        self.combine(other, |x, y| x | y)
    }

    /// Bitwise AND on the compressed form.
    pub fn and(&self, other: &WahVec) -> WahVec {
        self.combine(other, |x, y| x & y)
    }

    /// Bitwise AND-NOT (`self & !other`).
    pub fn and_not(&self, other: &WahVec) -> WahVec {
        self.combine(other, |x, y| x & !y)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut cursor = RunCursor::new(&self.words);
        let mut total = 0u64;
        while let Some(r) = cursor.next_run() {
            total += r.group.count_ones() as u64 * r.count as u64;
        }
        total
    }

    /// Positions of set bits, ascending.
    pub fn ones(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = RunCursor::new(&self.words);
        let mut base = 0u64;
        while let Some(r) = cursor.next_run() {
            if r.group == 0 {
                base += GROUP_BITS as u64 * r.count as u64;
                continue;
            }
            for _ in 0..r.count {
                let mut g = r.group;
                while g != 0 {
                    let tz = g.trailing_zeros();
                    let pos = base + tz as u64;
                    if pos < self.n_bits {
                        out.push(pos);
                    }
                    g &= g - 1;
                }
                base += GROUP_BITS as u64;
            }
        }
        out
    }

    /// Random access to one bit (O(words) scan — use [`ones`] for bulk).
    ///
    /// [`ones`]: WahVec::ones
    pub fn get(&self, pos: u64) -> bool {
        debug_assert!(pos < self.n_bits);
        let target_group = pos / GROUP_BITS as u64;
        let bit = (pos % GROUP_BITS as u64) as u32;
        let mut cursor = RunCursor::new(&self.words);
        let mut group_idx = 0u64;
        while let Some(r) = cursor.next_run() {
            if target_group < group_idx + r.count as u64 {
                return r.group & (1 << bit) != 0;
            }
            group_idx += r.count as u64;
        }
        false
    }

    /// Decompress to a bool vector (for tests and merging).
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = vec![false; self.n_bits as usize];
        for p in self.ones() {
            out[p as usize] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_bools(n: usize, density: f64, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() < density).collect()
    }

    #[test]
    fn roundtrip_exact() {
        for density in [0.0, 0.001, 0.1, 0.5, 0.999, 1.0] {
            for n in [0usize, 1, 30, 31, 32, 62, 63, 1000, 10_000] {
                let bits = random_bools(n, density, 42);
                let w = WahVec::from_bools(&bits);
                assert_eq!(w.to_bools(), bits, "n={n} density={density}");
            }
        }
    }

    #[test]
    fn zeros_is_empty() {
        let w = WahVec::zeros(100_000);
        assert_eq!(w.count_ones(), 0);
        assert!(w.ones().is_empty());
        assert!(!w.get(99_999));
        // A hundred thousand zero bits fit in a couple of words.
        assert!(w.size_bytes() < 32, "{} bytes", w.size_bytes());
    }

    #[test]
    fn sparse_bitmaps_compress_massively() {
        let n = 1_000_000usize;
        let mut bits = vec![false; n];
        for i in (0..n).step_by(50_000) {
            bits[i] = true;
        }
        let w = WahVec::from_bools(&bits);
        let plain_bytes = n / 8;
        assert!(
            w.size_bytes() < plain_bytes as u64 / 100,
            "wah {} vs plain {plain_bytes}",
            w.size_bytes()
        );
        assert_eq!(w.count_ones(), 20);
    }

    #[test]
    fn dense_uniform_random_does_not_compress() {
        let bits = random_bools(100_000, 0.5, 7);
        let w = WahVec::from_bools(&bits);
        // ~32/31 expansion over plain is the worst case.
        assert!(w.size_bytes() as f64 <= 100_000.0 / 8.0 * 1.1);
    }

    #[test]
    fn and_or_andnot_match_reference() {
        for seed in 0..5u64 {
            let a = random_bools(5000, 0.02, seed);
            let b = random_bools(5000, 0.3, seed + 100);
            let wa = WahVec::from_bools(&a);
            let wb = WahVec::from_bools(&b);
            let and: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x && y).collect();
            let or: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x || y).collect();
            let andnot: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x && !y).collect();
            assert_eq!(wa.and(&wb).to_bools(), and);
            assert_eq!(wa.or(&wb).to_bools(), or);
            assert_eq!(wa.and_not(&wb).to_bools(), andnot);
        }
    }

    #[test]
    fn ops_on_long_fills_are_compact() {
        let a = WahVec::zeros(10_000_000);
        let b = WahVec::zeros(10_000_000);
        let c = a.or(&b);
        assert!(c.size_bytes() < 32);
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn from_positions_matches() {
        let pos = vec![0u64, 31, 62, 63, 93, 999];
        let w = WahVec::from_positions(&pos, 1000);
        assert_eq!(w.ones(), pos);
        for &p in &pos {
            assert!(w.get(p));
        }
        assert!(!w.get(1));
        assert!(!w.get(998));
    }

    #[test]
    fn get_against_reference() {
        let bits = random_bools(3000, 0.1, 9);
        let w = WahVec::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(w.get(i as u64), b, "bit {i}");
        }
    }

    #[test]
    fn run_merging_in_push() {
        // All-ones bitmap: groups coalesce into a single fill word.
        let bits = vec![true; 31 * 1000];
        let w = WahVec::from_bools(&bits);
        assert!(w.size_bytes() <= 16, "{} bytes", w.size_bytes());
        assert_eq!(w.count_ones(), 31_000);
    }
}
