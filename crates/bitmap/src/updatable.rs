//! The §5 roadmap item, realized: "Update-friendly bitmap indexes, where
//! updates are absorbed using additional, highly compressible, bitvectors
//! which are gradually merged."
//!
//! A compressed, immutable base bitmap absorbs updates through two small
//! delta sets (bits turned on, bits turned off). Reads merge base and
//! deltas on the fly; once the deltas grow past a threshold they are
//! folded into a fresh compressed base. The RUM consequences are explicit:
//! updates become O(1) (UO ↓), reads pay a merge (RO ↑ slightly), and the
//! deltas cost extra space until merged (MO ↑ slightly).

use std::collections::BTreeSet;

use crate::wah::WahVec;

/// A WAH base bitmap plus set/clear deltas.
#[derive(Clone, Debug)]
pub struct UpdateFriendlyBitmap {
    base: WahVec,
    set_delta: BTreeSet<u64>,
    clear_delta: BTreeSet<u64>,
    n_bits: u64,
    merge_threshold: usize,
    merges: u64,
}

impl UpdateFriendlyBitmap {
    /// Empty bitmap of `n_bits`, merging deltas once they exceed
    /// `merge_threshold` entries.
    pub fn new(n_bits: u64, merge_threshold: usize) -> Self {
        UpdateFriendlyBitmap {
            base: WahVec::zeros(n_bits),
            set_delta: BTreeSet::new(),
            clear_delta: BTreeSet::new(),
            n_bits,
            merge_threshold: merge_threshold.max(1),
            merges: 0,
        }
    }

    /// Wrap an existing compressed bitmap.
    pub fn from_base(base: WahVec, merge_threshold: usize) -> Self {
        let n_bits = base.len_bits();
        UpdateFriendlyBitmap {
            base,
            set_delta: BTreeSet::new(),
            clear_delta: BTreeSet::new(),
            n_bits,
            merge_threshold: merge_threshold.max(1),
            merges: 0,
        }
    }

    pub fn len_bits(&self) -> u64 {
        self.n_bits
    }

    /// Times the deltas have been folded into the base.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Pending delta entries (diagnostic).
    pub fn delta_len(&self) -> usize {
        self.set_delta.len() + self.clear_delta.len()
    }

    /// Total footprint: compressed base + delta entries.
    pub fn size_bytes(&self) -> u64 {
        self.base.size_bytes() + (self.delta_len() * 8) as u64
    }

    /// Grow the logical domain to at least `n_bits` (zero-filled).
    pub fn grow(&mut self, n_bits: u64) {
        if n_bits <= self.n_bits {
            return;
        }
        // Rebuild the base at the new width (the old base is a prefix).
        let ones = self.base.ones();
        self.base = WahVec::from_positions(&ones, n_bits);
        self.n_bits = n_bits;
    }

    /// Set bit `pos` — O(log delta), no touch of the compressed base.
    pub fn set(&mut self, pos: u64) {
        debug_assert!(pos < self.n_bits);
        self.clear_delta.remove(&pos);
        self.set_delta.insert(pos);
        self.maybe_merge();
    }

    /// Clear bit `pos`.
    pub fn clear(&mut self, pos: u64) {
        debug_assert!(pos < self.n_bits);
        self.set_delta.remove(&pos);
        self.clear_delta.insert(pos);
        self.maybe_merge();
    }

    /// Read bit `pos` through the deltas.
    pub fn get(&self, pos: u64) -> bool {
        if self.set_delta.contains(&pos) {
            return true;
        }
        if self.clear_delta.contains(&pos) {
            return false;
        }
        self.base.get(pos)
    }

    /// All set bits, ascending, with deltas applied.
    pub fn ones(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .base
            .ones()
            .into_iter()
            .filter(|p| !self.clear_delta.contains(p))
            .collect();
        for &p in &self.set_delta {
            out.push(p);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn count_ones(&self) -> u64 {
        self.ones().len() as u64
    }

    /// Materialize the merged view as a compressed bitmap.
    pub fn materialize(&self) -> WahVec {
        let set: Vec<u64> = self.set_delta.iter().copied().collect();
        let clear: Vec<u64> = self.clear_delta.iter().copied().collect();
        let set_w = WahVec::from_positions(&set, self.n_bits);
        let clear_w = WahVec::from_positions(&clear, self.n_bits);
        self.base.or(&set_w).and_not(&clear_w)
    }

    /// Fold deltas into the base now.
    pub fn merge(&mut self) {
        if self.delta_len() == 0 {
            return;
        }
        self.base = self.materialize();
        self.set_delta.clear();
        self.clear_delta.clear();
        self.merges += 1;
    }

    fn maybe_merge(&mut self) {
        if self.delta_len() > self.merge_threshold {
            self.merge();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = UpdateFriendlyBitmap::new(1000, 64);
        b.set(5);
        b.set(999);
        assert!(b.get(5));
        assert!(b.get(999));
        assert!(!b.get(6));
        b.clear(5);
        assert!(!b.get(5));
        assert_eq!(b.ones(), vec![999]);
    }

    #[test]
    fn deltas_merge_at_threshold() {
        let mut b = UpdateFriendlyBitmap::new(10_000, 10);
        for i in 0..10 {
            b.set(i * 7);
        }
        assert_eq!(b.merges(), 0);
        b.set(77);
        assert_eq!(b.merges(), 1);
        assert_eq!(b.delta_len(), 0);
        assert_eq!(b.count_ones(), 11);
    }

    #[test]
    fn matches_plain_bitset_model() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 5000u64;
        let mut b = UpdateFriendlyBitmap::new(n, 50);
        let mut model = vec![false; n as usize];
        for _ in 0..20_000 {
            let pos = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                b.set(pos);
                model[pos as usize] = true;
            } else {
                b.clear(pos);
                model[pos as usize] = false;
            }
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(b.get(i as u64), m, "bit {i}");
        }
        let expect: Vec<u64> = model
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(b.ones(), expect);
        assert_eq!(b.materialize().ones(), expect);
    }

    #[test]
    fn updates_do_not_touch_base_until_merge() {
        let base = WahVec::from_positions(&(0..1000u64).step_by(3).collect::<Vec<_>>(), 10_000);
        let base_size = base.size_bytes();
        let mut b = UpdateFriendlyBitmap::from_base(base, 1_000_000);
        for i in 5000..5100u64 {
            b.set(i);
        }
        // Base untouched, deltas carry the updates.
        assert_eq!(b.delta_len(), 100);
        assert!(b.size_bytes() > base_size);
        b.merge();
        assert_eq!(b.delta_len(), 0);
        assert!(b.get(5050));
        assert!(b.get(3));
    }

    #[test]
    fn grow_preserves_contents() {
        let mut b = UpdateFriendlyBitmap::new(100, 8);
        b.set(50);
        b.merge();
        b.grow(1000);
        assert!(b.get(50));
        b.set(999);
        assert_eq!(b.ones(), vec![50, 999]);
    }

    #[test]
    fn set_then_clear_cancels_in_delta() {
        let mut b = UpdateFriendlyBitmap::new(100, 1000);
        b.set(7);
        b.clear(7);
        assert!(!b.get(7));
        // Both directions tracked without duplication.
        assert_eq!(b.delta_len(), 1);
        b.set(7);
        assert!(b.get(7));
        assert_eq!(b.delta_len(), 1);
    }
}
