//! # rum-bitmap
//!
//! Bitmap indexing with word-aligned-hybrid compression — the paper's
//! space-optimized corner ("bitmaps with lossy encoding", FastBit/WAH) and
//! its §5 roadmap item: "Update-friendly bitmap indexes, where updates are
//! absorbed using additional, highly compressible, bitvectors which are
//! gradually merged."
//!
//! * [`WahVec`] — WAH compression (31-bit groups in 32-bit words) with
//!   streaming AND/OR and a set-bit iterator.
//! * [`UpdateFriendlyBitmap`] — a compressed base bitmap plus small
//!   uncompressed deltas, merged lazily: cheap updates bought with a
//!   little extra space and read-side merging, exactly the RUM trade the
//!   paper sketches.
//! * [`BitmapIndex`] — an access method: an append-only row store plus one
//!   update-friendly bitmap per key-range bin.

pub mod index;
pub mod updatable;
pub mod wah;

pub use index::{BitmapConfig, BitmapIndex};
pub use updatable::UpdateFriendlyBitmap;
pub use wah::WahVec;
