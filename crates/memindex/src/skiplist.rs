//! A randomized skip list (Pugh): "a probabilistic alternative to balanced
//! trees". Expected O(log N) search/insert/delete; the tower pointers are
//! the auxiliary space it spends for that.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

const MAX_LEVEL: usize = 32;
const P: f64 = 0.5;
const NIL: usize = usize::MAX;
const PTR: u64 = 8;

struct SkipNode {
    rec: Record,
    /// forward[l] = next node at level l.
    forward: Vec<usize>,
}

/// A seeded skip list over an arena of nodes.
pub struct SkipList {
    nodes: Vec<SkipNode>,
    free: Vec<usize>,
    /// head forwards (level l entry points).
    head: Vec<usize>,
    level: usize,
    len: usize,
    rng: StdRng,
    tracker: Arc<CostTracker>,
}

impl SkipList {
    pub fn new() -> Self {
        Self::with_seed(0xC0FFEE)
    }

    /// Deterministic tower heights for reproducible experiments.
    pub fn with_seed(seed: u64) -> Self {
        SkipList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: vec![NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            rng: StdRng::seed_from_u64(seed),
            tracker: CostTracker::new(),
        }
    }

    /// Current tower height of the list.
    pub fn height(&self) -> usize {
        self.level
    }

    fn random_level(&mut self) -> usize {
        let mut l = 1;
        while l < MAX_LEVEL && self.rng.gen::<f64>() < P {
            l += 1;
        }
        l
    }

    /// Charge an inspection of node `idx`: its record (base) plus the one
    /// forward pointer followed to reach it (aux).
    fn charge_visit(&self, _idx: usize) {
        self.tracker.read(DataClass::Base, RECORD_SIZE as u64);
        self.tracker.read(DataClass::Aux, PTR);
    }

    /// Find predecessors of `key` at every level. Returns the update array
    /// and the candidate node (first node with node.key >= key at level 0).
    fn find_update(&self, key: Key) -> ([usize; MAX_LEVEL], usize) {
        let mut update = [NIL; MAX_LEVEL]; // NIL here means "head"
        let mut cur = NIL; // NIL = head sentinel
        for l in (0..self.level).rev() {
            loop {
                let next = if cur == NIL {
                    self.head[l]
                } else {
                    self.nodes[cur].forward[l]
                };
                if next != NIL {
                    self.charge_visit(next);
                    if self.nodes[next].rec.key < key {
                        cur = next;
                        continue;
                    }
                }
                break;
            }
            update[l] = cur;
        }
        let candidate = if cur == NIL {
            self.head[0]
        } else {
            self.nodes[cur].forward[0]
        };
        (update, candidate)
    }

    fn alloc(&mut self, rec: Record, height: usize) -> usize {
        let node = SkipNode {
            rec,
            forward: vec![NIL; height],
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for SkipList {
    fn name(&self) -> String {
        "skiplist".into()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        // Record + tower pointers per node, plus the head tower.
        let tower_bytes: u64 = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.free.contains(i))
            .map(|(_, n)| n.forward.len() as u64 * PTR)
            .sum();
        let physical =
            (self.len as u64) * RECORD_SIZE as u64 + tower_bytes + MAX_LEVEL as u64 * PTR;
        SpaceProfile::from_physical(self.len, physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let (_, cand) = self.find_update(key);
        if cand != NIL && self.nodes[cand].rec.key == key {
            Ok(Some(self.nodes[cand].rec.value))
        } else {
            Ok(None)
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let (_, mut cur) = self.find_update(lo);
        let mut out = Vec::new();
        while cur != NIL {
            self.charge_visit(cur);
            let rec = self.nodes[cur].rec;
            if rec.key > hi {
                break;
            }
            out.push(rec);
            cur = self.nodes[cur].forward[0];
        }
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        let (update, cand) = self.find_update(key);
        if cand != NIL && self.nodes[cand].rec.key == key {
            self.nodes[cand].rec.value = value;
            self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
            return Ok(());
        }
        let height = self.random_level();
        if height > self.level {
            self.level = height;
        }
        let idx = self.alloc(Record::new(key, value), height);
        // Writing the new record and its tower.
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        self.tracker.write(DataClass::Aux, height as u64 * PTR);
        for (l, &pred) in update.iter().enumerate().take(height) {
            if pred == NIL {
                self.nodes[idx].forward[l] = self.head[l];
                self.head[l] = idx;
            } else {
                self.nodes[idx].forward[l] = self.nodes[pred].forward[l];
                self.nodes[pred].forward[l] = idx;
            }
            // One predecessor pointer rewritten per level.
            self.tracker.write(DataClass::Aux, PTR);
        }
        self.len += 1;
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let (_, cand) = self.find_update(key);
        if cand != NIL && self.nodes[cand].rec.key == key {
            self.nodes[cand].rec.value = value;
            self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let (update, cand) = self.find_update(key);
        if cand == NIL || self.nodes[cand].rec.key != key {
            return Ok(false);
        }
        let height = self.nodes[cand].forward.len();
        for (l, &pred) in update.iter().enumerate().take(height) {
            let next = self.nodes[cand].forward[l];
            if pred == NIL {
                if self.head[l] == cand {
                    self.head[l] = next;
                }
            } else if self.nodes[pred].forward[l] == cand {
                self.nodes[pred].forward[l] = next;
            }
            self.tracker.write(DataClass::Aux, PTR);
        }
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.free.push(cand);
        self.len -= 1;
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.nodes.clear();
        self.free.clear();
        self.head = vec![NIL; MAX_LEVEL];
        self.level = 1;
        self.len = 0;
        // Build by appending in order: predecessors are always the current
        // tails, so this is O(N) with no searches.
        let mut tails: [usize; MAX_LEVEL] = [NIL; MAX_LEVEL];
        for r in records {
            let height = self.random_level();
            if height > self.level {
                self.level = height;
            }
            let idx = self.alloc(*r, height);
            self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
            self.tracker.write(DataClass::Aux, height as u64 * PTR);
            for (l, tail) in tails.iter_mut().enumerate().take(height) {
                if *tail == NIL {
                    self.head[l] = idx;
                } else {
                    self.nodes[*tail].forward[l] = idx;
                }
                *tail = idx;
            }
            self.len += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let mut s = SkipList::new();
        for k in [5u64, 1, 9, 3, 7] {
            s.insert(k, k * 10).unwrap();
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(7).unwrap(), Some(70));
        assert_eq!(s.get(4).unwrap(), None);
        assert!(s.update(9, 99).unwrap());
        assert!(!s.update(4, 0).unwrap());
        assert!(s.delete(1).unwrap());
        assert!(!s.delete(1).unwrap());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn range_is_ordered() {
        let mut s = SkipList::new();
        for k in [9u64, 2, 7, 4, 1, 8] {
            s.insert(k, k).unwrap();
        }
        let rs = s.range(2, 8).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 4, 7, 8]);
    }

    #[test]
    fn search_cost_is_logarithmic() {
        let visits = |n: u64| {
            let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k)).collect();
            let mut s = SkipList::with_seed(3);
            s.bulk_load(&recs).unwrap();
            s.tracker().reset();
            let probes = 200u64;
            for i in 0..probes {
                s.get((i * (n / probes)) % n).unwrap();
            }
            s.tracker().snapshot().total_read_bytes() as f64 / probes as f64
        };
        let small = visits(1 << 10);
        let large = visits(1 << 16);
        // 64× the data should cost ~(16/10)× the reads, nowhere near 64×.
        assert!(
            large / small < 4.0,
            "expected logarithmic growth: {small} -> {large}"
        );
        assert!(large > small);
    }

    #[test]
    fn bulk_load_builds_valid_list() {
        let recs: Vec<Record> = (0..5000u64).map(|k| Record::new(k * 3, k)).collect();
        let mut s = SkipList::new();
        s.bulk_load(&recs).unwrap();
        assert_eq!(s.len(), 5000);
        assert_eq!(s.get(3 * 1234).unwrap(), Some(1234));
        assert_eq!(s.get(1).unwrap(), None);
        let all = s.range(0, u64::MAX).unwrap();
        assert_eq!(all, recs);
    }

    #[test]
    fn towers_are_aux_space() {
        let mut s = SkipList::new();
        for k in 0..10_000u64 {
            s.insert(k, k).unwrap();
        }
        let p = s.space_profile();
        assert!(p.aux_bytes > 0);
        let mo = p.space_amplification();
        // Expected pointer overhead: ~2 pointers/record (p=0.5) = 16B on a
        // 16B record ⇒ MO ≈ 2.
        assert!(mo > 1.5 && mo < 3.0, "mo = {mo}");
    }

    #[test]
    fn height_shrinks_after_deletes() {
        let mut s = SkipList::new();
        for k in 0..1000u64 {
            s.insert(k, k).unwrap();
        }
        let h = s.height();
        for k in 0..1000u64 {
            assert!(s.delete(k).unwrap());
        }
        assert_eq!(s.len(), 0);
        assert!(s.height() <= h);
        assert_eq!(s.height(), 1);
        // Reusable after emptying.
        s.insert(5, 5).unwrap();
        assert_eq!(s.get(5).unwrap(), Some(5));
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut s = SkipList::with_seed(99);
            for k in 0..100u64 {
                s.insert(k, k).unwrap();
            }
            s.tracker().snapshot().total_read_bytes()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = SkipList::new();
        let mut model = std::collections::BTreeMap::new();
        for step in 0..5000u64 {
            let k = rng.gen_range(0..1500u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    s.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(s.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(s.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(s.get(k).unwrap(), model.get(&k).copied());
                }
            }
            assert_eq!(s.len(), model.len());
        }
        let all = s.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }
}
