//! A radix trie over big-endian key bytes (8-bit stride, depth 8) with
//! adaptive (sorted-vector) fan-out nodes — Fredkin's "trie memory" with
//! ART-style compact nodes.
//!
//! Fixed access cost: a lookup touches at most 8 nodes regardless of N
//! (the paper's "fixed access cost (tries, hash tables)" building block),
//! paid for with fan-out metadata on every path — classic read-optimized,
//! memory-hungry territory in the RUM triangle.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

#[allow(dead_code)]
const NIL: u32 = u32::MAX;
/// Key depth in bytes (u64 keys, 8-bit stride).
const DEPTH: usize = 8;
/// Bytes charged per node inspection: header + one child entry probed.
const NODE_TOUCH: u64 = 16;
/// Approximate in-memory cost of one child entry (byte + index + slack).
const CHILD_BYTES: u64 = 5;
/// Approximate per-node header cost.
const NODE_HEADER_BYTES: u64 = 24;

struct TrieNode {
    /// Sorted by byte; value is a node index.
    children: Vec<(u8, u32)>,
    /// Set on depth-8 terminal nodes.
    value: Option<Value>,
}

impl TrieNode {
    fn empty() -> Self {
        TrieNode {
            children: Vec::new(),
            value: None,
        }
    }

    fn child(&self, b: u8) -> Option<u32> {
        self.children
            .binary_search_by_key(&b, |&(x, _)| x)
            .ok()
            .map(|i| self.children[i].1)
    }

    fn set_child(&mut self, b: u8, idx: u32) {
        match self.children.binary_search_by_key(&b, |&(x, _)| x) {
            Ok(i) => self.children[i].1 = idx,
            Err(i) => self.children.insert(i, (b, idx)),
        }
    }

    fn remove_child(&mut self, b: u8) {
        if let Ok(i) = self.children.binary_search_by_key(&b, |&(x, _)| x) {
            self.children.remove(i);
        }
    }
}

/// The radix trie.
pub struct RadixTrie {
    nodes: Vec<TrieNode>,
    free: Vec<u32>,
    len: usize,
    tracker: Arc<CostTracker>,
}

impl RadixTrie {
    pub fn new() -> Self {
        RadixTrie {
            nodes: vec![TrieNode::empty()], // root
            free: Vec::new(),
            len: 0,
            tracker: CostTracker::new(),
        }
    }

    /// Live node count (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn alloc(&mut self) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = TrieNode::empty();
            i
        } else {
            self.nodes.push(TrieNode::empty());
            (self.nodes.len() - 1) as u32
        }
    }

    fn charge_step(&self) {
        self.tracker.read(DataClass::Aux, NODE_TOUCH);
    }

    /// Walk the path for `key`, returning node indices visited (root
    /// first). Stops early on a missing edge.
    fn walk(&self, key: Key) -> (Vec<u32>, bool) {
        let bytes = key.to_be_bytes();
        let mut path = vec![0u32];
        let mut cur = 0u32;
        for &b in bytes.iter() {
            self.charge_step();
            match self.nodes[cur as usize].child(b) {
                Some(next) => {
                    path.push(next);
                    cur = next;
                }
                None => return (path, false),
            }
        }
        (path, true)
    }

    fn collect_range(
        &self,
        node: u32,
        depth: usize,
        prefix: u64,
        lo: Key,
        hi: Key,
        out: &mut Vec<Record>,
    ) {
        self.charge_step();
        let n = &self.nodes[node as usize];
        if depth == DEPTH {
            if let Some(v) = n.value {
                if prefix >= lo && prefix <= hi {
                    self.tracker.read(DataClass::Base, RECORD_SIZE as u64);
                    out.push(Record::new(prefix, v));
                }
            }
            return;
        }
        let shift = 8 * (DEPTH - 1 - depth);
        for &(b, child) in &n.children {
            let p = prefix | ((b as u64) << shift);
            // Prune subtrees wholly outside [lo, hi].
            let mask = if shift == 0 { 0 } else { (1u64 << shift) - 1 };
            let subtree_lo = p;
            let subtree_hi = p | mask;
            if subtree_hi < lo || subtree_lo > hi {
                continue;
            }
            self.collect_range(child, depth + 1, p, lo, hi, out);
        }
    }
}

impl Default for RadixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for RadixTrie {
    fn name(&self) -> String {
        "trie".into()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let aux: u64 = self
            .nodes
            .iter()
            .map(|n| NODE_HEADER_BYTES + n.children.len() as u64 * CHILD_BYTES)
            .sum::<u64>()
            - self.free.len() as u64 * NODE_HEADER_BYTES;
        let physical = self.len as u64 * RECORD_SIZE as u64 + aux;
        SpaceProfile::from_physical(self.len, physical)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let (path, complete) = self.walk(key);
        if complete {
            Ok(self.nodes[*path.last().expect("root") as usize].value)
        } else {
            Ok(None)
        }
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        self.collect_range(0, 0, 0, lo, hi, &mut out);
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        let bytes = key.to_be_bytes();
        let mut cur = 0u32;
        for &b in bytes.iter() {
            self.charge_step();
            match self.nodes[cur as usize].child(b) {
                Some(next) => cur = next,
                None => {
                    let idx = self.alloc();
                    self.nodes[cur as usize].set_child(b, idx);
                    // A new edge: header + child entry written.
                    self.tracker
                        .write(DataClass::Aux, NODE_HEADER_BYTES + CHILD_BYTES);
                    cur = idx;
                }
            }
        }
        let node = &mut self.nodes[cur as usize];
        if node.value.is_none() {
            self.len += 1;
        }
        node.value = Some(value);
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let (path, complete) = self.walk(key);
        if !complete {
            return Ok(false);
        }
        let leaf = *path.last().expect("root") as usize;
        if self.nodes[leaf].value.is_none() {
            return Ok(false);
        }
        self.nodes[leaf].value = Some(value);
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        Ok(true)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let (path, complete) = self.walk(key);
        if !complete {
            return Ok(false);
        }
        let leaf = *path.last().expect("root") as usize;
        if self.nodes[leaf].value.is_none() {
            return Ok(false);
        }
        self.nodes[leaf].value = None;
        self.len -= 1;
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        // Prune now-empty nodes bottom-up (reclaiming auxiliary space).
        let bytes = key.to_be_bytes();
        for d in (1..=DEPTH).rev() {
            let node = path[d];
            let n = &self.nodes[node as usize];
            if n.children.is_empty() && n.value.is_none() {
                let parent = path[d - 1] as usize;
                self.nodes[parent].remove_child(bytes[d - 1]);
                self.free.push(node);
                self.tracker.write(DataClass::Aux, CHILD_BYTES);
            } else {
                break;
            }
        }
        Ok(true)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.nodes = vec![TrieNode::empty()];
        self.free.clear();
        self.len = 0;
        for r in records {
            self.insert_impl(r.key, r.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let mut t = RadixTrie::new();
        t.insert(1, 10).unwrap();
        t.insert(257, 20).unwrap(); // shares low byte with 1
        assert_eq!(t.get(1).unwrap(), Some(10));
        assert_eq!(t.get(257).unwrap(), Some(20));
        assert_eq!(t.get(2).unwrap(), None);
        assert!(t.update(1, 11).unwrap());
        assert!(!t.update(2, 0).unwrap());
        assert!(t.delete(1).unwrap());
        assert!(!t.delete(1).unwrap());
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.get(257).unwrap(), Some(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_cost_is_constant_in_n() {
        let cost = |n: u64| {
            let recs: Vec<Record> = (0..n).map(|k| Record::new(k, k)).collect();
            let mut t = RadixTrie::new();
            t.bulk_load(&recs).unwrap();
            t.tracker().reset();
            for k in (0..n).step_by((n / 32).max(1) as usize) {
                t.get(k).unwrap();
            }
            t.tracker().snapshot().total_read_bytes() / 32
        };
        let small = cost(1 << 10);
        let large = cost(1 << 16);
        // Both are exactly 8 node touches.
        assert_eq!(small, large, "trie lookup cost must not depend on N");
    }

    #[test]
    fn range_is_ordered_and_inclusive() {
        let mut t = RadixTrie::new();
        for k in [300u64, 5, 1000, 42, 999, 43] {
            t.insert(k, k).unwrap();
        }
        let rs = t.range(42, 999).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![42, 43, 300, 999]);
    }

    #[test]
    fn range_spanning_high_bytes() {
        let mut t = RadixTrie::new();
        let keys = [0u64, 1 << 32, (1 << 32) + 5, u64::MAX - 1];
        for &k in &keys {
            t.insert(k, k).unwrap();
        }
        let rs = t.range(0, u64::MAX).unwrap();
        let got: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(got, keys.to_vec());
        let rs = t.range(1, u64::MAX - 2).unwrap();
        let got: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(got, vec![1 << 32, (1 << 32) + 5]);
    }

    #[test]
    fn delete_prunes_empty_paths() {
        let mut t = RadixTrie::new();
        t.insert(0xDEAD_BEEF, 1).unwrap();
        let nodes_with = t.node_count();
        t.delete(0xDEAD_BEEF).unwrap();
        assert!(t.node_count() < nodes_with, "path should be pruned");
        assert_eq!(t.node_count(), 1, "only the root survives");
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut a = RadixTrie::new();
        for k in 0..256u64 {
            a.insert(k, k).unwrap(); // all share 7 prefix bytes
        }
        let dense_nodes = a.node_count();
        let mut b = RadixTrie::new();
        for k in 0..256u64 {
            b.insert(k << 56, k).unwrap(); // top byte differs: no sharing
        }
        let sparse_nodes = b.node_count();
        assert!(dense_nodes < sparse_nodes / 4);
    }

    #[test]
    fn aux_space_dominates_for_sparse_keys() {
        let mut t = RadixTrie::new();
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            t.insert(rng.gen(), 0).unwrap();
        }
        let p = t.space_profile();
        assert!(
            p.aux_bytes > p.base_bytes,
            "random 64-bit keys make the trie memory-hungry: aux {} vs base {}",
            p.aux_bytes,
            p.base_bytes
        );
    }

    #[test]
    fn model_check_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(59);
        let mut t = RadixTrie::new();
        let mut model = std::collections::BTreeMap::new();
        for step in 0..5000u64 {
            let k = rng.gen_range(0..3000u64);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    t.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
                _ => {
                    assert_eq!(t.get(k).unwrap(), model.get(&k).copied());
                }
            }
            assert_eq!(t.len(), model.len());
        }
        let all = t.range(0, u64::MAX).unwrap();
        let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn zero_key_works() {
        let mut t = RadixTrie::new();
        t.insert(0, 7).unwrap();
        assert_eq!(t.get(0).unwrap(), Some(7));
        assert_eq!(t.range(0, 0).unwrap(), vec![Record::new(0, 7)]);
    }
}
