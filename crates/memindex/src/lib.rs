//! # rum-memindex
//!
//! In-memory ordered indexes from the read-optimized corner of the paper's
//! Figure 1: the skip list (Pugh, CACM 1990) and the trie (Fredkin, CACM
//! 1960).
//!
//! Both trade memory for read performance — extra pointers (skip list
//! towers, trie fan-out nodes) buy logarithmic or constant-depth search.
//! Accounting is byte-granular: pointer traffic is auxiliary, record
//! payloads are base data, so their position in the RUM space emerges from
//! the same counters as the paged structures.

pub mod csb;
pub mod skiplist;
pub mod trie;

pub use csb::CsbTree;
pub use skiplist::SkipList;
pub use trie::RadixTrie;
