//! A Cache-Sensitive B+-tree (CSB+, Rao & Ross, SIGMOD 2000) — from the
//! paper's §4 memory-hierarchy discussion: "Cache-sensitive B+-Trees
//! physically cluster sibling nodes together to reduce the number of
//! cache misses, and decrease the node size using offsets rather than
//! pointers."
//!
//! All children of a node live contiguously in one *node group*, so an
//! internal node stores the keys plus a **single** group reference instead
//! of one pointer per child. The RUM consequences are textbook:
//!
//! * **MO ↓ / RO ↓** — pointer bytes per fanout shrink from 8·(k+1) to 8,
//!   so more separators fit per cache line and probes touch fewer bytes;
//! * **UO ↑** — a split can no longer link in one node: the whole sibling
//!   group is rebuilt (copied) to keep it contiguous.

use std::sync::Arc;

use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, SpaceProfile,
    Value, RECORD_SIZE,
};

/// Separator keys per internal node (two cache lines of keys).
const NODE_KEYS: usize = 14;
/// Records per leaf.
const LEAF_RECORDS: usize = 14;

#[derive(Clone, Debug)]
enum CsbNode {
    Internal {
        /// `keys[i]` separates `child(i)` (< key) from `child(i+1)` (>=).
        keys: Vec<Key>,
        /// All `keys.len() + 1` children live contiguously in this group.
        child_group: usize,
    },
    Leaf {
        records: Vec<Record>,
    },
}

impl CsbNode {
    /// In-memory footprint: keys/records plus ONE group reference — the
    /// CSB+ space trick.
    fn bytes(&self) -> u64 {
        match self {
            CsbNode::Internal { keys, .. } => keys.len() as u64 * 8 + 8 + 8,
            CsbNode::Leaf { records } => records.len() as u64 * RECORD_SIZE as u64 + 8,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct NodeGroup {
    nodes: Vec<CsbNode>,
}

/// The CSB+ tree.
pub struct CsbTree {
    groups: Vec<NodeGroup>,
    free_groups: Vec<usize>,
    /// The root is `groups[root_group].nodes[0]`.
    root_group: usize,
    len: usize,
    tracker: Arc<CostTracker>,
}

impl CsbTree {
    pub fn new() -> Self {
        CsbTree {
            groups: vec![NodeGroup {
                nodes: vec![CsbNode::Leaf {
                    records: Vec::new(),
                }],
            }],
            free_groups: Vec::new(),
            root_group: 0,
            len: 0,
            tracker: CostTracker::new(),
        }
    }

    /// Number of node groups (diagnostic).
    pub fn group_count(&self) -> usize {
        self.groups.len() - self.free_groups.len()
    }

    fn alloc_group(&mut self, nodes: Vec<CsbNode>) -> usize {
        if let Some(g) = self.free_groups.pop() {
            self.groups[g] = NodeGroup { nodes };
            g
        } else {
            self.groups.push(NodeGroup { nodes });
            self.groups.len() - 1
        }
    }

    /// Charge an inspection of a node: its key/record payload.
    fn charge_visit(&self, node: &CsbNode) {
        match node {
            CsbNode::Internal { keys, .. } => {
                self.tracker.read(DataClass::Aux, keys.len() as u64 * 8 + 8)
            }
            CsbNode::Leaf { records } => self
                .tracker
                .read(DataClass::Base, records.len() as u64 * RECORD_SIZE as u64),
        }
    }

    /// Charge a group rebuild (the CSB+ update tax): every node moved.
    fn charge_group_copy(&self, group: usize) {
        let bytes: u64 = self.groups[group].nodes.iter().map(|n| n.bytes()).sum();
        self.tracker.read(DataClass::Aux, bytes);
        self.tracker.write(DataClass::Aux, bytes);
    }

    /// Find the leaf (group, idx) covering `key`.
    fn find_leaf(&self, key: Key) -> (usize, usize) {
        let mut group = self.root_group;
        let mut idx = 0usize;
        loop {
            let node = &self.groups[group].nodes[idx];
            self.charge_visit(node);
            match node {
                CsbNode::Internal { keys, child_group } => {
                    let slot = keys.partition_point(|&k| k <= key);
                    group = *child_group;
                    idx = slot;
                }
                CsbNode::Leaf { .. } => return (group, idx),
            }
        }
    }

    /// Recursive insert below `groups[group].nodes[idx]`; on split returns
    /// the separator and the new right node (the CALLER rebuilds its child
    /// group to place it).
    fn insert_at(
        &mut self,
        group: usize,
        idx: usize,
        key: Key,
        value: Value,
    ) -> Option<(Key, CsbNode)> {
        let node = &self.groups[group].nodes[idx];
        self.charge_visit(node);
        match node {
            CsbNode::Leaf { .. } => {
                let CsbNode::Leaf { records } = &mut self.groups[group].nodes[idx] else {
                    unreachable!()
                };
                match records.binary_search_by_key(&key, |r| r.key) {
                    Ok(i) => {
                        records[i].value = value;
                        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                        None
                    }
                    Err(i) => {
                        records.insert(i, Record::new(key, value));
                        self.len += 1;
                        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                        if records.len() <= LEAF_RECORDS {
                            return None;
                        }
                        // Leaf split: right half becomes a new node that the
                        // parent must place next to this one.
                        let mid = records.len() / 2;
                        let right = records.split_off(mid);
                        let sep = right[0].key;
                        self.tracker
                            .write(DataClass::Base, right.len() as u64 * RECORD_SIZE as u64);
                        Some((sep, CsbNode::Leaf { records: right }))
                    }
                }
            }
            CsbNode::Internal { keys, child_group } => {
                let slot = keys.partition_point(|&k| k <= key);
                let child_group = *child_group;
                let split = self.insert_at(child_group, slot, key, value)?;
                // A child split: rebuild the child group with the new node
                // in place (the contiguity tax).
                let (sep, right_node) = split;
                self.groups[child_group].nodes.insert(slot + 1, right_node);
                self.charge_group_copy(child_group);
                let CsbNode::Internal { keys, .. } = &mut self.groups[group].nodes[idx] else {
                    unreachable!()
                };
                keys.insert(slot, sep);
                self.tracker.write(DataClass::Aux, 8);
                if keys.len() <= NODE_KEYS {
                    return None;
                }
                // Internal split: keys and the child group both split.
                let mid = keys.len() / 2;
                let promoted = keys[mid];
                let right_keys: Vec<Key> = keys[mid + 1..].to_vec();
                keys.truncate(mid);
                let right_children: Vec<CsbNode> =
                    self.groups[child_group].nodes.split_off(mid + 1);
                let right_group = self.alloc_group(right_children);
                self.charge_group_copy(right_group);
                Some((
                    promoted,
                    CsbNode::Internal {
                        keys: right_keys,
                        child_group: right_group,
                    },
                ))
            }
        }
    }

    /// In-order walk collecting `[lo, hi]` with subtree pruning.
    fn collect_range(&self, group: usize, idx: usize, lo: Key, hi: Key, out: &mut Vec<Record>) {
        let node = &self.groups[group].nodes[idx];
        self.charge_visit(node);
        match node {
            CsbNode::Leaf { records } => {
                for r in records {
                    if r.key > hi {
                        return;
                    }
                    if r.key >= lo {
                        out.push(*r);
                    }
                }
            }
            CsbNode::Internal { keys, child_group } => {
                let first = keys.partition_point(|&k| k <= lo);
                for slot in first..=keys.len() {
                    // Prune children entirely above hi.
                    if slot > 0 && keys[slot - 1] > hi {
                        return;
                    }
                    self.collect_range(*child_group, slot, lo, hi, out);
                }
            }
        }
    }
}

impl Default for CsbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessMethod for CsbTree {
    fn name(&self) -> String {
        "csb+tree".into()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    fn space_profile(&self) -> SpaceProfile {
        let total: u64 = self
            .groups
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.free_groups.contains(i))
            .flat_map(|(_, g)| g.nodes.iter())
            .map(|n| n.bytes())
            .sum();
        SpaceProfile::from_physical(self.len, total)
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let (group, idx) = self.find_leaf(key);
        let CsbNode::Leaf { records } = &self.groups[group].nodes[idx] else {
            unreachable!("find_leaf returns leaves")
        };
        Ok(records
            .binary_search_by_key(&key, |r| r.key)
            .ok()
            .map(|i| records[i].value))
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        self.collect_range(self.root_group, 0, lo, hi, &mut out);
        Ok(out)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        if let Some((sep, right)) = self.insert_at(self.root_group, 0, key, value) {
            // Root split: the old root and the new right node become the
            // two members of a fresh child group under a new root.
            let old_root = self.groups[self.root_group].nodes[0].clone();
            let child_group = self.alloc_group(vec![old_root, right]);
            self.charge_group_copy(child_group);
            self.groups[self.root_group].nodes[0] = CsbNode::Internal {
                keys: vec![sep],
                child_group,
            };
            self.tracker.write(DataClass::Aux, 16);
        }
        Ok(())
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let (group, idx) = self.find_leaf(key);
        let CsbNode::Leaf { records } = &mut self.groups[group].nodes[idx] else {
            unreachable!()
        };
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                records[i].value = value;
                self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        // Lazy deletion (like the paged B+-tree): no group rebalancing.
        let (group, idx) = self.find_leaf(key);
        let CsbNode::Leaf { records } = &mut self.groups[group].nodes[idx] else {
            unreachable!()
        };
        match records.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                records.remove(i);
                self.len -= 1;
                self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        // Rebuild in place but KEEP the tracker: callers hold clones of it
        // (replacing it would silently disconnect their accounting).
        let tracker = Arc::clone(&self.tracker);
        *self = CsbTree::new();
        self.tracker = tracker;
        // Build bottom-up: pack leaves, then stack internal levels so each
        // parent's children share one group.
        if records.is_empty() {
            return Ok(());
        }
        self.len = records.len();
        self.tracker
            .write(DataClass::Base, records.len() as u64 * RECORD_SIZE as u64);
        let mut level: Vec<(Key, CsbNode)> = records
            .chunks(LEAF_RECORDS)
            .map(|c| {
                (
                    c[0].key,
                    CsbNode::Leaf {
                        records: c.to_vec(),
                    },
                )
            })
            .collect();
        while level.len() > 1 {
            let mut next: Vec<(Key, CsbNode)> = Vec::new();
            for chunk in level.chunks(NODE_KEYS + 1) {
                let first_key = chunk[0].0;
                let keys: Vec<Key> = chunk[1..].iter().map(|(k, _)| *k).collect();
                let nodes: Vec<CsbNode> = chunk.iter().map(|(_, n)| n.clone()).collect();
                let group = self.alloc_group(nodes);
                next.push((
                    first_key,
                    CsbNode::Internal {
                        keys,
                        child_group: group,
                    },
                ));
            }
            level = next;
        }
        let root = level.pop().expect("non-empty").1;
        self.groups[self.root_group].nodes = vec![root];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_memindex_test_util::*;

    mod rum_memindex_test_util {
        pub use rand::{rngs::StdRng, Rng, SeedableRng};
    }

    #[test]
    fn crud_roundtrip() {
        let mut t = CsbTree::new();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10).unwrap();
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(7).unwrap(), Some(70));
        assert_eq!(t.get(6).unwrap(), None);
        assert!(t.update(9, 99).unwrap());
        assert!(!t.update(999, 0).unwrap());
        assert!(t.delete(5).unwrap());
        assert!(!t.delete(5).unwrap());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn grows_through_many_splits() {
        let mut t = CsbTree::new();
        for k in 0..5000u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.len(), 5000);
        for k in (0..5000u64).step_by(173) {
            assert_eq!(t.get(k).unwrap(), Some(k));
        }
        assert!(t.group_count() > 10);
    }

    #[test]
    fn range_is_ordered_and_complete() {
        let mut t = CsbTree::new();
        for k in (0..2000u64).rev() {
            t.insert(k * 2, k).unwrap();
        }
        let rs = t.range(100, 200).unwrap();
        let keys: Vec<u64> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, (100..=200).step_by(2).collect::<Vec<_>>());
        assert_eq!(t.range(0, u64::MAX).unwrap().len(), 2000);
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let recs: Vec<Record> = (0..3000u64).map(|k| Record::new(k * 3, k)).collect();
        let mut bulk = CsbTree::new();
        bulk.bulk_load(&recs).unwrap();
        let mut incr = CsbTree::new();
        for r in &recs {
            incr.insert(r.key, r.value).unwrap();
        }
        assert_eq!(
            bulk.range(0, u64::MAX).unwrap(),
            incr.range(0, u64::MAX).unwrap()
        );
        assert_eq!(bulk.len(), incr.len());
    }

    #[test]
    fn pointer_overhead_beats_the_skiplist() {
        // The CSB+ pitch: one group pointer per node instead of one
        // pointer per child/record.
        let recs: Vec<Record> = (0..10_000u64).map(|k| Record::new(k, k)).collect();
        let mut csb = CsbTree::new();
        csb.bulk_load(&recs).unwrap();
        let mut skip = crate::SkipList::new();
        skip.bulk_load(&recs).unwrap();
        let csb_mo = csb.space_profile().space_amplification();
        let skip_mo = skip.space_profile().space_amplification();
        assert!(
            csb_mo < skip_mo * 0.75,
            "CSB+ MO {csb_mo} should undercut skip list MO {skip_mo}"
        );
    }

    #[test]
    fn update_tax_group_copies_exceed_leaf_writes() {
        // Splitting copies whole groups: insert-heavy write traffic per
        // record must exceed the plain 16-byte record write.
        let mut t = CsbTree::new();
        t.tracker().reset();
        for k in 0..5000u64 {
            t.insert(k.wrapping_mul(7919) % 100_000, k).unwrap();
        }
        let s = t.tracker().snapshot();
        let per_record = s.total_write_bytes() as f64 / 5000.0;
        assert!(
            per_record > 32.0,
            "group-copy tax should exceed 2 records/insert, got {per_record}"
        );
    }

    #[test]
    fn model_check_random_ops() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = CsbTree::new();
        let mut model = std::collections::BTreeMap::new();
        for step in 0..6000u64 {
            let k = rng.gen_range(0..2000u64);
            match rng.gen_range(0..6) {
                0 | 1 => {
                    t.insert(k, step).unwrap();
                    model.insert(k, step);
                }
                2 => {
                    assert_eq!(t.update(k, step).unwrap(), model.contains_key(&k));
                    model.entry(k).and_modify(|v| *v = step);
                }
                3 => {
                    assert_eq!(t.delete(k).unwrap(), model.remove(&k).is_some());
                }
                4 => {
                    assert_eq!(t.get(k).unwrap(), model.get(&k).copied(), "step {step}");
                }
                _ => {
                    let hi = k + rng.gen_range(0..60u64);
                    let got = t.range(k, hi).unwrap();
                    let expect: Vec<Record> = model
                        .range(k..=hi)
                        .map(|(&k, &v)| Record::new(k, v))
                        .collect();
                    assert_eq!(got, expect, "range {k}..{hi} step {step}");
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn empty_tree_behaves() {
        let mut t = CsbTree::new();
        assert_eq!(t.get(1).unwrap(), None);
        assert!(t.range(0, 100).unwrap().is_empty());
        assert!(!t.delete(1).unwrap());
        t.bulk_load(&[]).unwrap();
        assert_eq!(t.len(), 0);
    }
}
