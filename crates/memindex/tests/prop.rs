//! Property-based differential tests for the in-memory indexes.

use proptest::prelude::*;
use rum_core::{AccessMethod, Record};
use rum_memindex::{CsbTree, RadixTrie, SkipList};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum MOp {
    Insert(u64, u32),
    Update(u64, u32),
    Delete(u64),
    Get(u64),
    Range(u64, u16),
}

fn op_strategy() -> impl Strategy<Value = MOp> {
    // Full 64-bit keys: tries must handle arbitrary byte paths.
    prop_oneof![
        (any::<u64>(), any::<u32>()).prop_map(|(k, v)| MOp::Insert(k, v)),
        (any::<u64>(), any::<u32>()).prop_map(|(k, v)| MOp::Update(k, v)),
        any::<u64>().prop_map(MOp::Delete),
        any::<u64>().prop_map(MOp::Get),
        (any::<u64>(), any::<u16>()).prop_map(|(lo, s)| MOp::Range(lo, s)),
    ]
}

fn run(method: &mut dyn AccessMethod, ops: &[MOp], keys: &[u64]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    // Seed with a base set so deletes/updates hit sometimes.
    for &k in keys {
        method.insert(k, 1).unwrap();
        model.insert(k, 1);
    }
    for op in ops {
        match *op {
            MOp::Insert(k, v) => {
                method.insert(k, v as u64).unwrap();
                model.insert(k, v as u64);
            }
            MOp::Update(k, v) => {
                assert_eq!(method.update(k, v as u64).unwrap(), model.contains_key(&k));
                model.entry(k).and_modify(|x| *x = v as u64);
            }
            MOp::Delete(k) => {
                assert_eq!(method.delete(k).unwrap(), model.remove(&k).is_some());
            }
            MOp::Get(k) => {
                assert_eq!(method.get(k).unwrap(), model.get(&k).copied());
            }
            MOp::Range(lo, span) => {
                let hi = lo.saturating_add(span as u64);
                let got = method.range(lo, hi).unwrap();
                let expect: Vec<Record> = model
                    .range(lo..=hi)
                    .map(|(&k, &v)| Record::new(k, v))
                    .collect();
                assert_eq!(got, expect);
            }
        }
        assert_eq!(method.len(), model.len());
    }
    let all = method.range(0, u64::MAX).unwrap();
    let expect: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
    assert_eq!(all, expect);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn skiplist_matches_model(
        keys in proptest::collection::vec(any::<u64>(), 0..100),
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        run(&mut SkipList::new(), &ops, &keys);
    }

    #[test]
    fn trie_matches_model(
        keys in proptest::collection::vec(any::<u64>(), 0..100),
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        run(&mut RadixTrie::new(), &ops, &keys);
    }

    #[test]
    fn csb_tree_matches_model(
        keys in proptest::collection::vec(any::<u64>(), 0..100),
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        run(&mut CsbTree::new(), &ops, &keys);
    }
}
