//! Time-resolved RUM tracing: structured events, latency histograms, and
//! windowed amplification trajectories.
//!
//! The paper's Figure 3 argues that tunable access methods *move through*
//! the RUM space; an end-of-run aggregate [`RumReport`] cannot show that
//! motion. This module turns the harness from a scoreboard into an
//! instrument:
//!
//! * [`TraceSink`] — a structured event channel. Components (LSM
//!   flush/compaction, WAL sync/checkpoint/recovery, buffer-pool eviction,
//!   shard batch dispatch) emit [`Event`]s into whatever sink the caller
//!   installed. The compiled-in default everywhere is [`NoopSink`], whose
//!   [`enabled`](TraceSink::enabled) gate lets every emit site skip even
//!   the field assembly — a disabled run does **zero** extra work and is
//!   bit-identical to an untraced one (`tests/trace_equivalence.rs` pins
//!   this for the whole standard suite).
//! * [`LatencyHistogram`] — an in-tree log-bucketed (HDR-style, ~2
//!   significant digits) histogram with p50/p90/p99/p999/max, mergeable
//!   across shard workers exactly like
//!   [`CostSnapshot::add`](crate::tracker::CostSnapshot::add): pointwise
//!   `u64` sums, so merging is associative and commutative.
//! * [`TraceCollector`] — snapshots the [`CostTracker`] every `W` ops
//!   (default [`DEFAULT_TRACE_WINDOW`], overridable via the
//!   `RUM_TRACE_WINDOW` environment variable) and records per-window
//!   RO/UO/MO plus cumulative curves. The per-window deltas sum **byte
//!   exactly** to the aggregate op-phase totals, because every byte the
//!   tracker accrues between `begin` and `finish` lands in exactly one
//!   window.
//!
//! Tracing never touches the [`CostTracker`]: events, histograms, and
//! window snapshots are pure observers, which is what makes the
//! zero-observer-effect guarantee structural rather than aspirational.
//!
//! [`RumReport`]: crate::runner::RumReport

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::access::AccessMethod;
use crate::tracker::{CostSnapshot, CostTracker};

/// Default trajectory window width, in operations.
pub const DEFAULT_TRACE_WINDOW: usize = 4096;

/// Window width from the `RUM_TRACE_WINDOW` environment variable, falling
/// back to [`DEFAULT_TRACE_WINDOW`] when unset, empty, zero, or
/// unparsable — same contract as `RUM_THREADS`.
pub fn env_trace_window() -> usize {
    if let Ok(v) = std::env::var("RUM_TRACE_WINDOW") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    DEFAULT_TRACE_WINDOW
}

// ---- structured events ---------------------------------------------------

/// What kind of component activity an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// LSM memtable flush (level, records/bytes in and out).
    LsmFlush,
    /// LSM compaction merging `level` into `level + 1`.
    LsmCompaction,
    /// WAL sync moving buffered bytes to durable storage.
    WalSync,
    /// Checkpoint persisting live contents and truncating the WAL.
    WalCheckpoint,
    /// Recovery replaying the committed WAL prefix.
    WalRecovery,
    /// Buffer pool evicting a page (dirty evictions write back).
    BufferEviction,
    /// A sharded facade dispatching one batch across its workers.
    ShardDispatch,
    /// LSM cross-run sorted view (re)built from the current runs.
    LsmViewBuild,
    /// LSM sorted view dropped because the run set changed.
    LsmViewInvalidate,
    /// A range query served through a valid LSM sorted view.
    LsmViewHit,
    /// A [`TraceCollector`] trajectory window closing.
    Window,
    /// A seeded fault fired on the I/O path (transient error, sticky page,
    /// injected bit-flip).
    FaultInjected,
    /// A retry of a page access after a transient fault.
    RetryAttempt,
    /// A sealed page failed checksum verification (scrub or foreground
    /// read): silent corruption became a detected error.
    CorruptionDetected,
    /// A quarantined structure or shard finished rebuilding and resumed
    /// service.
    RepairComplete,
    /// The autotuner's drifting-mix estimate crossed its hysteresis
    /// threshold (one event per drift episode, not per window).
    DriftDetected,
    /// The autotuner priced a reconfiguration and decided to migrate:
    /// predicted win exceeded the migration bill.
    TuneDecision,
    /// A priced migration (in-place retune or family swap) starting.
    MigrationStart,
    /// A priced migration finished; detail carries the I/O charged to UO
    /// and the transient double-residency charged to MO.
    MigrationComplete,
}

impl EventKind {
    /// Stable snake_case name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::LsmFlush => "lsm_flush",
            EventKind::LsmCompaction => "lsm_compaction",
            EventKind::WalSync => "wal_sync",
            EventKind::WalCheckpoint => "wal_checkpoint",
            EventKind::WalRecovery => "wal_recovery",
            EventKind::BufferEviction => "buffer_eviction",
            EventKind::ShardDispatch => "shard_dispatch",
            EventKind::LsmViewBuild => "lsm_view_build",
            EventKind::LsmViewInvalidate => "lsm_view_invalidate",
            EventKind::LsmViewHit => "lsm_view_hit",
            EventKind::Window => "window",
            EventKind::FaultInjected => "fault_injected",
            EventKind::RetryAttempt => "retry_attempt",
            EventKind::CorruptionDetected => "corruption_detected",
            EventKind::RepairComplete => "repair_complete",
            EventKind::DriftDetected => "drift_detected",
            EventKind::TuneDecision => "tune_decision",
            EventKind::MigrationStart => "migration_start",
            EventKind::MigrationComplete => "migration_complete",
        }
    }

    /// The component a folded-stack view groups this kind under.
    pub fn component(self) -> &'static str {
        match self {
            EventKind::LsmFlush
            | EventKind::LsmCompaction
            | EventKind::LsmViewBuild
            | EventKind::LsmViewInvalidate
            | EventKind::LsmViewHit => "lsm",
            EventKind::WalSync | EventKind::WalCheckpoint | EventKind::WalRecovery => "wal",
            EventKind::BufferEviction => "buffer",
            EventKind::ShardDispatch => "shard",
            EventKind::Window => "trace",
            EventKind::FaultInjected | EventKind::RetryAttempt => "fault",
            EventKind::CorruptionDetected | EventKind::RepairComplete => "repair",
            EventKind::DriftDetected
            | EventKind::TuneDecision
            | EventKind::MigrationStart
            | EventKind::MigrationComplete => "autotune",
        }
    }
}

/// One structured trace record: a monotone sequence number, a kind, and a
/// flat list of named numeric fields (span-like detail).
///
/// By convention a field named `bytes` carries the physical bytes the
/// event moved — [`fold_events`] sums it per component to build the
/// flamegraph-compatible view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonically increasing per-sink sequence number (emit order).
    pub seq: u64,
    pub kind: EventKind,
    /// Named numeric detail, in emit order.
    pub detail: Vec<(&'static str, u64)>,
}

/// The value of the named field in a flat detail list, if present.
pub fn detail_field(detail: &[(&'static str, u64)], name: &str) -> Option<u64> {
    detail.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
}

/// Physical bytes a detail list says its event moved: the `bytes` field
/// when present, otherwise `bytes_read + bytes_written` (migration
/// receipts split direction instead of reporting one total), else 0.
pub fn detail_byte_weight(detail: &[(&'static str, u64)]) -> u64 {
    detail_field(detail, "bytes").unwrap_or_else(|| {
        detail_field(detail, "bytes_read").unwrap_or(0)
            + detail_field(detail, "bytes_written").unwrap_or(0)
    })
}

impl Event {
    /// The value of the named detail field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        detail_field(&self.detail, name)
    }

    /// Physical bytes this event moved (the `bytes` field, 0 if absent).
    pub fn bytes(&self) -> u64 {
        self.field("bytes").unwrap_or(0)
    }

    /// Physical bytes this event moved under either detail convention
    /// ([`detail_byte_weight`]): `bytes`, or `bytes_read + bytes_written`.
    pub fn byte_weight(&self) -> u64 {
        detail_byte_weight(&self.detail)
    }

    /// One JSON object on one line:
    /// `{"seq":3,"kind":"lsm_flush","level":0,"bytes":4096}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"seq\":{},\"kind\":\"{}\"", self.seq, self.kind.as_str());
        for (k, v) in &self.detail {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

/// Render events as JSONL, one [`Event::to_jsonl`] object per line.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Flamegraph-compatible folded stacks of physical bytes by component:
/// one `rum;<component>;<kind>[;L<level>] <bytes>` line per distinct
/// stack, sorted for determinism. Feed to `flamegraph.pl` or `inferno`.
pub fn fold_events(events: &[Event]) -> String {
    fold_by(events, |e| e.byte_weight())
}

/// Folded stacks of event **counts** rather than bytes: one
/// `rum;<component>;<kind>[;L<level>] <count>` line per stack, covering
/// every event — including the byte-free kinds (retries, corruption
/// detections, repair completions, drift episodes, tune decisions) that
/// [`fold_events`] cannot weigh. Together the two exports make the
/// `rum;component;kind` stack set complete.
pub fn fold_event_counts(events: &[Event]) -> String {
    fold_by(events, |_| 1)
}

fn fold_by(events: &[Event], weight: impl Fn(&Event) -> u64) -> String {
    let mut stacks: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for e in events {
        let w = weight(e);
        if w == 0 {
            continue;
        }
        let mut stack = format!("rum;{};{}", e.kind.component(), e.kind.as_str());
        if let Some(level) = e.field("level") {
            stack.push_str(&format!(";L{level}"));
        }
        *stacks.entry(stack).or_insert(0) += w;
    }
    let mut out = String::new();
    for (stack, w) in stacks {
        out.push_str(&format!("{stack} {w}\n"));
    }
    out
}

/// A structured event channel. Implementations must be cheap when
/// disabled: emit sites check [`enabled`](Self::enabled) before assembling
/// detail fields, so a [`NoopSink`] run does no tracing work at all.
pub trait TraceSink: Send + Sync {
    /// Whether emit sites should bother assembling and sending events.
    fn enabled(&self) -> bool;

    /// Record one event. `detail` is a flat list of named numbers.
    fn emit(&self, kind: EventKind, detail: &[(&'static str, u64)]);
}

/// The compiled-in default: tracing off. [`enabled`](TraceSink::enabled)
/// is `false`, so instrumented components skip their emit sites entirely
/// and a run with this sink is bit-identical to an untraced one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _kind: EventKind, _detail: &[(&'static str, u64)]) {}
}

/// Shared handle to the default disabled sink.
pub fn noop_sink() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}

/// Default [`MemorySink`] capacity: ~1M events (tens of MB at typical
/// detail widths) — far above any smoke run, low enough that a
/// long-running traced process cannot grow without bound.
pub const DEFAULT_MEMORY_SINK_CAP: usize = 1 << 20;

/// An in-memory sink collecting every event with a process-order sequence
/// number. Shareable across shard worker threads (emission is serialized
/// on a mutex; `seq` reflects arrival order).
///
/// Storage is **bounded**: once `cap` events are held, further emits are
/// counted in [`dropped`](Self::dropped) instead of stored, so a
/// long-running traced process keeps its earliest `cap` events and an
/// honest tally of what it shed rather than growing without limit.
#[derive(Debug)]
pub struct MemorySink {
    seq: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    events: Mutex<Vec<Event>>,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::bounded(DEFAULT_MEMORY_SINK_CAP)
    }
}

impl MemorySink {
    /// A fresh sink behind an [`Arc`] ready to hand to components, with
    /// the [`DEFAULT_MEMORY_SINK_CAP`] bound.
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A sink storing at most `cap` events (min 1); later emits only
    /// bump the drop counter.
    pub fn bounded(cap: usize) -> MemorySink {
        MemorySink {
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cap: cap.max(1),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of all events recorded so far, in emit order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events shed after the sink filled to its capacity. They still
    /// consumed sequence numbers, so `seq` gaps never appear — the
    /// stored stream simply ends early.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum number of events this sink stores.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, kind: EventKind, detail: &[(&'static str, u64)]) {
        let mut events = self.events.lock().expect("sink poisoned");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if events.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            seq,
            kind,
            detail: detail.to_vec(),
        });
    }
}

// ---- latency histograms --------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave, ~3% worst-case
/// relative error — about two significant digits, HDR-style.
const SUB_BITS: usize = 5;
const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range.
const BUCKETS: usize = (64 - SUB_BITS) * SUBBUCKETS;

/// A log-bucketed latency histogram (nanoseconds), in-tree and
/// dependency-free. Values keep ~2 significant digits; quantiles return a
/// bucket-midpoint estimate clamped to the observed min/max.
///
/// [`merge`](Self::merge) adds counts pointwise — the same commuting `u64`
/// sums [`CostSnapshot::add`](crate::tracker::CostSnapshot::add) relies
/// on — so histograms recorded on different shard workers can be folded
/// together in any order and any grouping with an identical result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    fn index_of(v: u64) -> usize {
        if v < SUBBUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize;
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) as usize - SUBBUCKETS;
        ((shift + 1) * SUBBUCKETS + sub).min(BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_low(i: usize) -> u64 {
        let octave = i / SUBBUCKETS;
        let sub = i % SUBBUCKETS;
        if octave == 0 {
            sub as u64
        } else {
            ((SUBBUCKETS + sub) as u64) << (octave - 1)
        }
    }

    /// Midpoint representative of bucket `i`.
    fn bucket_mid(i: usize) -> u64 {
        let octave = i / SUBBUCKETS;
        if octave == 0 {
            // Width-1 buckets: the value is exact.
            Self::bucket_low(i)
        } else {
            let width = 1u64 << (octave - 1);
            Self::bucket_low(i) + width / 2
        }
    }

    /// Record one latency observation (nanoseconds).
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index_of(ns)] += 1;
        self.count += 1;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
        self.sum = self.sum.saturating_add(ns);
    }

    /// Fold another histogram into this one (pointwise count sums).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket-midpoint estimate
    /// clamped to the observed `[min, max]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of all recorded values (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending bound order — exactly what a Prometheus-style cumulative
    /// `_bucket{le=…}` exposition needs. The last representable bucket's
    /// bound is `u64::MAX`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = if i + 1 < BUCKETS {
                    Self::bucket_low(i + 1) - 1
                } else {
                    u64::MAX
                };
                (upper, c)
            })
            .collect()
    }

    /// One-line summary: `n=… p50=… p90=… p99=… p999=… max=…` (ns).
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={} p90={} p99={} p999={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

// ---- windowed trajectories -----------------------------------------------

/// One closed trajectory window: the cost delta accrued over `ops`
/// operations, the cumulative totals since the op phase began, and the
/// space amplification observed at the window boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryWindow {
    /// Zero-based window index.
    pub index: usize,
    /// Operations executed in this window (the last window may be short).
    pub ops: u64,
    /// Tracker delta over this window alone.
    pub delta: CostSnapshot,
    /// Tracker delta since the op phase began (cumulative curve).
    pub cumulative: CostSnapshot,
    /// MO at the window close.
    pub mo: f64,
}

impl TrajectoryWindow {
    /// Read amplification within this window (all traffic, whichever op
    /// class incurred it — the time-resolved view deliberately does not
    /// split classes, since a window is a slice of wall time, not of one
    /// class).
    pub fn ro(&self) -> f64 {
        self.delta.read_amplification()
    }

    /// Write amplification within this window.
    pub fn uo(&self) -> f64 {
        self.delta.write_amplification()
    }

    /// Cumulative read amplification up to this window's close.
    pub fn cumulative_ro(&self) -> f64 {
        self.cumulative.read_amplification()
    }

    /// Cumulative write amplification up to this window's close.
    pub fn cumulative_uo(&self) -> f64 {
        self.cumulative.write_amplification()
    }
}

/// Snapshots a [`CostTracker`] every `window` operations and records
/// per-window RO/UO/MO, cumulative curves, and per-op-class latency
/// histograms. Drive it through
/// [`run_workload_traced`](crate::runner::run_workload_traced) /
/// [`run_stream_traced`](crate::runner::run_stream_traced).
///
/// The collector is a pure observer: it reads the tracker and the
/// method's space profile but never charges either, so a traced run's
/// counted measurements are bit-identical to an untraced run's.
pub struct TraceCollector {
    window_ops: u64,
    sink: Arc<dyn TraceSink>,
    windows: Vec<TrajectoryWindow>,
    /// Tracker state at the open window's start.
    mark: CostSnapshot,
    /// Tracker state when the op phase began.
    origin: CostSnapshot,
    ops_in_window: u64,
    started: bool,
    /// Latencies of read-class ops (get / range).
    pub read_latency: LatencyHistogram,
    /// Latencies of write-class ops (insert / update / delete).
    pub write_latency: LatencyHistogram,
}

impl TraceCollector {
    /// A collector closing a window every `window` ops (min 1), emitting
    /// [`EventKind::Window`] events into `sink`.
    pub fn new(window: usize, sink: Arc<dyn TraceSink>) -> Self {
        TraceCollector {
            window_ops: window.max(1) as u64,
            sink,
            windows: Vec::new(),
            mark: CostSnapshot::default(),
            origin: CostSnapshot::default(),
            ops_in_window: 0,
            started: false,
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
        }
    }

    /// [`new`](Self::new) with the `RUM_TRACE_WINDOW` /
    /// [`DEFAULT_TRACE_WINDOW`] width.
    pub fn from_env(sink: Arc<dyn TraceSink>) -> Self {
        Self::new(env_trace_window(), sink)
    }

    /// Window width in operations.
    pub fn window_ops(&self) -> u64 {
        self.window_ops
    }

    /// Windows closed so far.
    pub fn windows(&self) -> &[TrajectoryWindow] {
        &self.windows
    }

    /// Consume the collector, returning its windows.
    pub fn into_windows(self) -> Vec<TrajectoryWindow> {
        self.windows
    }

    /// All-op latency distribution (read and write histograms merged).
    pub fn overall_latency(&self) -> LatencyHistogram {
        let mut merged = self.read_latency.clone();
        merged.merge(&self.write_latency);
        merged
    }

    /// Mark the start of the op phase. Must be called after the bulk load
    /// so the trajectory (like the aggregate report) excludes load traffic.
    pub fn begin(&mut self, tracker: &CostTracker) {
        let snap = tracker.snapshot();
        self.mark = snap;
        self.origin = snap;
        self.ops_in_window = 0;
        self.windows.clear();
        self.started = true;
    }

    /// Record one executed operation; closes a window when full.
    pub fn note_op(
        &mut self,
        is_read: bool,
        latency_ns: u64,
        tracker: &CostTracker,
        method: &dyn AccessMethod,
    ) {
        debug_assert!(self.started, "note_op before begin");
        if is_read {
            self.read_latency.record(latency_ns);
        } else {
            self.write_latency.record(latency_ns);
        }
        self.ops_in_window += 1;
        if self.ops_in_window >= self.window_ops {
            self.close_window(tracker, method);
        }
    }

    /// Record a whole executed batch of `ops` same-class operations whose
    /// per-op latencies arrive pre-aggregated in `latency` (merged from the
    /// shard workers that executed the batch); closes a window when the op
    /// count reaches the window width.
    ///
    /// This is [`note_op`](Self::note_op) at batch granularity, for the
    /// sharded runner: windows then close on batch boundaries, so a window
    /// may hold up to `batch - 1` ops more than `window_ops` — the windowed
    /// deltas still partition the op-phase traffic byte-exactly, only the
    /// window widths quantize. Note the histogram is merged as-is: on a
    /// sharded batch a range op contributes one observation per shard it
    /// fanned out to, so `latency.count()` may exceed `ops`.
    pub fn note_batch(
        &mut self,
        is_read: bool,
        ops: u64,
        latency: &LatencyHistogram,
        tracker: &CostTracker,
        method: &dyn AccessMethod,
    ) {
        debug_assert!(self.started, "note_batch before begin");
        if is_read {
            self.read_latency.merge(latency);
        } else {
            self.write_latency.merge(latency);
        }
        self.ops_in_window += ops;
        if self.ops_in_window >= self.window_ops {
            self.close_window(tracker, method);
        }
    }

    /// Close the trailing partial window (if any). Call once, after the
    /// last op; every byte the tracker accrued since
    /// [`begin`](Self::begin) is then covered by exactly one window, so
    /// the window deltas sum byte-exactly to the op-phase totals.
    pub fn finish(&mut self, tracker: &CostTracker, method: &dyn AccessMethod) {
        if self.ops_in_window > 0 {
            self.close_window(tracker, method);
        }
    }

    fn close_window(&mut self, tracker: &CostTracker, method: &dyn AccessMethod) {
        let snap = tracker.snapshot();
        let window = TrajectoryWindow {
            index: self.windows.len(),
            ops: self.ops_in_window,
            delta: snap.delta(&self.mark),
            cumulative: snap.delta(&self.origin),
            mo: method.space_profile().space_amplification(),
        };
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::Window,
                &[
                    ("window", window.index as u64),
                    ("ops", window.ops),
                    ("read_bytes", window.delta.total_read_bytes()),
                    ("write_bytes", window.delta.total_write_bytes()),
                    ("logical_read_bytes", window.delta.logical_read_bytes),
                    ("logical_write_bytes", window.delta.logical_write_bytes),
                    ("page_reads", window.delta.page_reads),
                    ("page_writes", window.delta.page_writes),
                ],
            );
        }
        self.windows.push(window);
        self.mark = snap;
        self.ops_in_window = 0;
    }

    /// Sum of every window's delta — byte-exact equal to the op-phase
    /// aggregate when the collector observed the whole phase.
    pub fn windowed_sum(&self) -> CostSnapshot {
        self.windows
            .iter()
            .fold(CostSnapshot::default(), |acc, w| acc.add(&w.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_monotone_and_continuous() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let i = LatencyHistogram::index_of(v);
            assert!(i >= last, "index must be monotone at {v}");
            assert!(i - last <= 1, "index must not skip buckets at {v}");
            last = i;
            // The bucket must actually contain the value.
            assert!(LatencyHistogram::bucket_low(i) <= v);
        }
        // Extremes stay in range.
        assert!(LatencyHistogram::index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_have_two_significant_digits() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(12_345);
        }
        for p in [h.p50(), h.p90(), h.p99(), h.p999()] {
            let rel = (p as f64 - 12_345.0).abs() / 12_345.0;
            assert!(rel < 0.04, "quantile {p} too far from 12345");
        }
        assert_eq!(h.max(), 12_345, "max is exact");
        assert_eq!(h.min(), 12_345, "min is exact");
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn quantile_order_and_empty_behavior() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        let rel = (h.p50() as f64 - 5000.0).abs() / 5000.0;
        assert!(rel < 0.04, "p50 of uniform 1..10000 was {}", h.p50());
    }

    #[test]
    fn merge_matches_recording_everything_in_one_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..500u64 {
            let v = v * v + 3;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Commutes.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other, whole);
    }

    #[test]
    fn events_render_as_jsonl_and_fold_by_component() {
        let sink = MemorySink::shared();
        sink.emit(EventKind::LsmFlush, &[("level", 0), ("bytes", 4096)]);
        sink.emit(EventKind::LsmCompaction, &[("level", 1), ("bytes", 100)]);
        sink.emit(EventKind::LsmCompaction, &[("level", 1), ("bytes", 28)]);
        sink.emit(EventKind::WalSync, &[("bytes", 25)]);
        sink.emit(EventKind::ShardDispatch, &[("ops", 7)]); // no bytes
        let events = sink.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[4].seq, 4);
        assert_eq!(
            events[0].to_jsonl(),
            "{\"seq\":0,\"kind\":\"lsm_flush\",\"level\":0,\"bytes\":4096}"
        );
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 5);
        let folded = fold_events(&events);
        assert_eq!(
            folded,
            "rum;lsm;lsm_compaction;L1 128\nrum;lsm;lsm_flush;L0 4096\nrum;wal;wal_sync 25\n"
        );
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        let sink = noop_sink();
        assert!(!sink.enabled());
        sink.emit(EventKind::Window, &[("window", 1)]); // must be inert
    }

    #[test]
    fn env_trace_window_parses_and_falls_back() {
        // Every RUM_TRACE_WINDOW assertion lives in this one test: env
        // vars are process-global, so splitting them across tests would
        // race under the parallel test runner.
        std::env::set_var("RUM_TRACE_WINDOW", "128");
        assert_eq!(env_trace_window(), 128);
        assert_eq!(
            TraceCollector::from_env(noop_sink()).window_ops(),
            128,
            "from_env honors the variable"
        );
        std::env::set_var("RUM_TRACE_WINDOW", " 64 ");
        assert_eq!(env_trace_window(), 64, "whitespace is trimmed");
        for junk in ["0", "", "-5", "many", "18446744073709551616"] {
            std::env::set_var("RUM_TRACE_WINDOW", junk);
            assert_eq!(env_trace_window(), DEFAULT_TRACE_WINDOW, "junk {junk:?}");
            assert_eq!(
                TraceCollector::from_env(noop_sink()).window_ops(),
                DEFAULT_TRACE_WINDOW as u64,
                "from_env falls back to the default on junk {junk:?}"
            );
        }
        std::env::remove_var("RUM_TRACE_WINDOW");
        assert_eq!(env_trace_window(), DEFAULT_TRACE_WINDOW);
        assert_eq!(
            TraceCollector::from_env(noop_sink()).window_ops(),
            DEFAULT_TRACE_WINDOW as u64
        );
    }

    #[test]
    fn memory_sink_bounds_storage_and_counts_drops() {
        let sink = MemorySink::bounded(3);
        for i in 0..5 {
            sink.emit(EventKind::WalSync, &[("bytes", i)]);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.capacity(), 3);
        let events = sink.events();
        assert_eq!(events[2].seq, 2, "stored prefix keeps its seq numbers");
        assert_eq!(MemorySink::default().capacity(), DEFAULT_MEMORY_SINK_CAP);
        // A zero capacity is clamped up so the sink stays usable.
        assert_eq!(MemorySink::bounded(0).capacity(), 1);
    }

    #[test]
    fn byte_weight_covers_split_direction_events_and_counts_fold_everything() {
        let sink = MemorySink::shared();
        sink.emit(EventKind::RetryAttempt, &[("page", 1), ("bytes", 4096)]);
        sink.emit(
            EventKind::MigrationComplete,
            &[("bytes_read", 100), ("bytes_written", 50)],
        );
        sink.emit(EventKind::DriftDetected, &[("window", 2)]); // byte-free
        sink.emit(EventKind::TuneDecision, &[("window", 2)]);
        let events = sink.events();
        assert_eq!(events[0].byte_weight(), 4096);
        assert_eq!(events[1].byte_weight(), 150, "bytes_read + bytes_written");
        assert_eq!(events[2].byte_weight(), 0);
        let folded = fold_events(&events);
        assert_eq!(
            folded,
            "rum;autotune;migration_complete 150\nrum;fault;retry_attempt 4096\n"
        );
        let counts = fold_event_counts(&events);
        assert_eq!(
            counts,
            "rum;autotune;drift_detected 1\nrum;autotune;migration_complete 1\n\
             rum;autotune;tune_decision 1\nrum;fault;retry_attempt 1\n"
        );
    }
}
