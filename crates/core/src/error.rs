//! Error type shared across the workspace.

use std::fmt;

use crate::types::Key;

/// Errors produced by access methods and the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RumError {
    /// An insert found the key already present (for methods that reject
    /// duplicates rather than upserting).
    DuplicateKey(Key),
    /// A structure hit a hard capacity limit (e.g. a static hash table
    /// built for a fixed number of keys, or a direct-address array asked to
    /// exceed its configured key universe).
    CapacityExceeded(String),
    /// The requested operation is not supported by this access method
    /// (e.g. range queries on a pure hash index).
    Unsupported(&'static str),
    /// The storage substrate rejected a request (bad page id, freed page...).
    Storage(String),
    /// An internal invariant was violated; indicates a bug.
    Corrupt(String),
    /// Invalid argument (e.g. an empty or inverted range, unsorted bulk-load
    /// input).
    InvalidArgument(String),
    /// A simulated crash fired (fault injection): the device "lost power"
    /// mid-operation. Volatile state is gone; durable state keeps whatever
    /// prefix the injector let through. Recovery is expected to follow.
    Crash(String),
    /// A sealed page failed checksum verification on read: the stored CRC-32
    /// disagrees with the one computed over the bytes the device returned.
    /// Silent bit-rot surfaces as this error instead of wrong data; repair
    /// (scrub + rebuild from checkpoint/WAL) is expected to follow.
    CorruptPage {
        /// Raw id of the failing page.
        id: u64,
        /// Checksum recorded when the page was sealed.
        stored: u32,
        /// Checksum computed over the bytes actually read back.
        computed: u32,
    },
    /// A transient device fault (fault injection): the operation failed but
    /// is expected to succeed if retried — the retryable error class, as
    /// opposed to [`Crash`](Self::Crash) (terminal power loss) and
    /// [`CorruptPage`](Self::CorruptPage) (detected bit-rot).
    Transient(String),
}

impl RumError {
    /// Whether a bounded retry is a sensible response to this error.
    /// Only [`Transient`](Self::Transient) qualifies; everything else is
    /// either a caller bug or requires recovery, not repetition.
    pub fn is_transient(&self) -> bool {
        matches!(self, RumError::Transient(_))
    }
}

impl fmt::Display for RumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RumError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            RumError::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
            RumError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            RumError::Storage(m) => write!(f, "storage error: {m}"),
            RumError::Corrupt(m) => write!(f, "corrupt structure: {m}"),
            RumError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            RumError::Crash(m) => write!(f, "simulated crash: {m}"),
            RumError::CorruptPage {
                id,
                stored,
                computed,
            } => write!(
                f,
                "corrupt page {id}: stored checksum {stored:#010x}, computed {computed:#010x}"
            ),
            RumError::Transient(m) => write!(f, "transient fault: {m}"),
        }
    }
}

impl std::error::Error for RumError {}

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, RumError>;

/// Best-effort extraction of the human-readable message from a panic
/// payload (the `Box<dyn Any>` returned by `std::thread::JoinHandle::join`
/// or `std::panic::catch_unwind`). Panics raised via `panic!("...")` carry
/// a `&str` or `String`; anything else degrades to a placeholder.
pub fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(RumError::DuplicateKey(5).to_string(), "duplicate key 5");
        assert!(RumError::Unsupported("range on hash")
            .to_string()
            .contains("range on hash"));
        assert!(RumError::Storage("bad page".into())
            .to_string()
            .starts_with("storage error"));
        assert!(RumError::Crash("after 512 bytes".into())
            .to_string()
            .starts_with("simulated crash"));
        let c = RumError::CorruptPage {
            id: 7,
            stored: 0xDEAD_BEEF,
            computed: 0x1234_5678,
        };
        assert_eq!(
            c.to_string(),
            "corrupt page 7: stored checksum 0xdeadbeef, computed 0x12345678"
        );
        assert!(RumError::Transient("read error".into())
            .to_string()
            .starts_with("transient fault"));
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(RumError::Transient("x".into()).is_transient());
        assert!(!RumError::Crash("x".into()).is_transient());
        assert!(!RumError::CorruptPage {
            id: 0,
            stored: 0,
            computed: 1
        }
        .is_transient());
        assert!(!RumError::Storage("x".into()).is_transient());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&RumError::Corrupt("x".into()));
    }
}
