//! Online self-tuning: the closed loop over trace trajectories.
//!
//! The RUM conjecture says no static design wins everywhere — so the
//! interesting online question is *when to move* along the RO/UO/MO
//! tradeoff surface as the workload shifts. This module closes that loop:
//!
//! * [`AutoTuner`] consumes the [`TrajectoryWindow`]s the
//!   [`TraceCollector`](crate::trace::TraceCollector) already produces,
//!   maintains a decaying estimate of the live operation mix, and detects
//!   drift when the estimate moves beyond hysteresis thresholds (mix L1
//!   distance plus windowed RO/UO slope).
//! * On drift it asks the calibrated advisor (through the memoized
//!   [`AdvisorMemo`]) and the structure itself ([`Morphable::retune_gain`])
//!   what a better shape would cost, and orders a migration only when the
//!   predicted per-op win, amortized over [`AutoTuneConfig::horizon_ops`],
//!   exceeds the migration bill (rewriting the resident data).
//! * Every migration is priced in the paper's own currency: its I/O is
//!   charged to UO through the structure's [`CostTracker`]
//!   (the runner settles migration traffic into the write class), and the
//!   transient double-residency is reported as
//!   [`MigrationReceipt::peak_extra_bytes`] (an MO spike while both copies
//!   exist).
//!
//! Decisions are observable through [`TraceSink`] events
//! (`DriftDetected` / `TuneDecision` / `MigrationStart` /
//! `MigrationComplete`) and summarized in [`AutoTuneSummary`].
//!
//! The tuner is strictly opt-in: nothing in the suite consults it unless a
//! runner is invoked through
//! [`run_stream_autotuned`](crate::runner::run_stream_autotuned), so
//! tuner-off runs are bit-identical to pre-tuner builds.
//!
//! [`CostTracker`]: crate::tracker::CostTracker

use std::sync::Arc;

use crate::access::AccessMethod;
use crate::advisor::{mix_distance, normalize_mix, AdvisorMemo, ProfileStore};
use crate::error::Result;
use crate::trace::{noop_sink, EventKind, TraceSink, TrajectoryWindow};
use crate::types::PAGE_SIZE;
use crate::wizard::{Constraints, Environment, Family};
use crate::workload::{Op, OpMix};

/// Per-window operation-kind counts — the raw material of the tuner's mix
/// estimate. The autotuned runner accumulates one per trajectory window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub get: u64,
    pub insert: u64,
    pub update: u64,
    pub delete: u64,
    pub range: u64,
}

impl OpCounts {
    /// Count one operation.
    pub fn observe(&mut self, op: &Op) {
        match op {
            Op::Get(_) => self.get += 1,
            Op::Insert(..) => self.insert += 1,
            Op::Update(..) => self.update += 1,
            Op::Delete(_) => self.delete += 1,
            Op::Range(..) => self.range += 1,
        }
    }

    /// Total ops counted.
    pub fn total(&self) -> u64 {
        self.get + self.insert + self.update + self.delete + self.range
    }

    /// The observed mix (normalized), or `None` for an empty window.
    pub fn to_mix(&self) -> Option<OpMix> {
        if self.total() == 0 {
            return None;
        }
        Some(normalize_mix(&OpMix {
            get: self.get as f64,
            insert: self.insert as f64,
            update: self.update as f64,
            delete: self.delete as f64,
            range: self.range as f64,
        }))
    }
}

/// What an in-place re-tune of the current structure is predicted to be
/// worth, in expected page-equivalents per operation under the query mix.
#[derive(Clone, Debug, PartialEq)]
pub struct RetuneEstimate {
    /// Expected cost/op of the current shape.
    pub current_cost: f64,
    /// Expected cost/op of the advised shape.
    pub advised_cost: f64,
    /// Human-readable description of the advised shape.
    pub advised_shape: String,
    /// Migration bill in pages when the structure knows a cheaper path
    /// than a full drain-and-rebuild (e.g. an LSM sorted-view toggle that
    /// only builds or drops the anchors). `None` means the default bill:
    /// rewriting the whole resident footprint.
    pub bill_pages: Option<f64>,
}

/// The priced outcome of one migration: the I/O it cost (charged to UO by
/// the structure's tracker) and the transient double-residency it imposed
/// (an MO spike while source and destination coexist).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationReceipt {
    /// Shape before the migration.
    pub from: String,
    /// Shape after the migration.
    pub to: String,
    /// Physical bytes read draining the old shape.
    pub bytes_read: u64,
    /// Physical bytes written building the new shape.
    pub bytes_written: u64,
    /// Peak bytes resident *beyond* the final footprint while both copies
    /// existed — the transient MO of the migration.
    pub peak_extra_bytes: u64,
}

/// A live structure the [`AutoTuner`] can reshape.
///
/// Two migration granularities, both priced: an in-place knob re-tune
/// (same family, new configuration — LSM `T`/memtable/filter/sorted-view,
/// B+-tree node shape) and a family swap (drain into a different access
/// method entirely, the `crates/adaptive` crack/merge/morph move).
pub trait Morphable: AccessMethod {
    /// The wizard family the current shape belongs to.
    fn family(&self) -> Family;

    /// Human-readable description of the current shape (knobs included).
    fn shape(&self) -> String;

    /// Price an in-place re-tune for `mix`: `Some` when the advised
    /// configuration differs from the current one, `None` when the
    /// structure is already shaped right (or has no knobs).
    fn retune_gain(&mut self, mix: &OpMix, env: &Environment) -> Option<RetuneEstimate>;

    /// Reshape in place: re-tune the knobs (when `family` matches the
    /// current one) or swap family. Returns `Ok(None)` when no work was
    /// needed (already in the advised shape, or the target family is
    /// unsupported); `Ok(Some(receipt))` prices the migration performed.
    ///
    /// Implementations must keep the logical contents and the
    /// [`CostTracker`](crate::tracker::CostTracker) identity stable across
    /// the migration, so answers and accumulated costs survive.
    fn morph_to(&mut self, family: Family, mix: &OpMix) -> Result<Option<MigrationReceipt>>;
}

/// Migration granularity of a [`TunePlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneKind {
    /// Same family, new knobs.
    Retune,
    /// Drain into a different family.
    FamilySwap,
}

/// A migration order: what to morph into and why it pays.
#[derive(Clone, Debug)]
pub struct TunePlan {
    pub kind: TuneKind,
    /// Target family (the current one for [`TuneKind::Retune`]).
    pub family: Family,
    /// The mix estimate the decision was made for.
    pub mix: OpMix,
    /// Predicted saving in page-equivalents per op.
    pub predicted_win: f64,
    /// Migration bill: pages to read + write rewriting the resident data.
    pub bill_pages: f64,
    /// Trajectory window the decision closed on.
    pub window: usize,
}

/// Hysteresis and pricing knobs of the [`AutoTuner`].
#[derive(Clone, Copy, Debug)]
pub struct AutoTuneConfig {
    /// Weight of history in the decaying mix estimate
    /// (`est ← decay·est + (1−decay)·window`).
    pub decay: f64,
    /// L1 mix distance between the estimate and the mix the current shape
    /// was chosen for, beyond which drift is declared.
    pub mix_threshold: f64,
    /// Relative jump in windowed RO or UO between consecutive windows,
    /// beyond which drift is declared (catches cost drift the mix alone
    /// does not show, e.g. a skew spike).
    pub slope_threshold: f64,
    /// The estimate must move less than this (L1) between consecutive
    /// windows to count as settled.
    pub settle_epsilon: f64,
    /// Consecutive settled windows required before migrating — the
    /// hysteresis that keeps a drifting estimate from triggering a
    /// migration per window mid-transition.
    pub settle_windows: usize,
    /// Windows to wait after a migration before considering another.
    pub cooldown_windows: usize,
    /// Windows to observe before the first decision.
    pub warmup_windows: usize,
    /// Operations the predicted per-op win is amortized over when weighed
    /// against the migration bill.
    pub horizon_ops: u64,
    /// The amortized win must exceed `margin ×` the bill.
    pub margin: f64,
    /// Whether family swaps (via the advisor ranking) are on the table, or
    /// only in-place re-tunes.
    pub allow_family_swap: bool,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        AutoTuneConfig {
            decay: 0.5,
            mix_threshold: 0.3,
            slope_threshold: 0.75,
            settle_epsilon: 0.06,
            settle_windows: 2,
            cooldown_windows: 4,
            warmup_windows: 3,
            horizon_ops: 100_000,
            margin: 1.0,
            allow_family_swap: false,
        }
    }
}

/// What the tuner did over a run.
#[derive(Clone, Debug, Default)]
pub struct AutoTuneSummary {
    /// Trajectory windows observed.
    pub windows: usize,
    /// Drift episodes announced (`DriftDetected` events).
    pub drift_events: u64,
    /// Migration decisions taken (`TuneDecision` events).
    pub decisions: u64,
    /// Migrations actually performed (structure changed shape).
    pub migrations: u64,
    /// Decisions the structure answered with "already in that shape".
    pub noop_decisions: u64,
    /// Total bytes read by migrations (charged to UO).
    pub migration_read_bytes: u64,
    /// Total bytes written by migrations (charged to UO).
    pub migration_write_bytes: u64,
    /// Largest transient double-residency of any single migration.
    pub peak_extra_bytes: u64,
    /// One receipt per performed migration, in order.
    pub receipts: Vec<MigrationReceipt>,
}

impl AutoTuneSummary {
    /// Total migration I/O in bytes (the UO charge).
    pub fn migration_bytes(&self) -> u64 {
        self.migration_read_bytes + self.migration_write_bytes
    }
}

/// The online controller. Feed it one ([`TrajectoryWindow`],
/// [`OpCounts`]) pair per closed window via [`plan`](Self::plan); execute
/// the returned [`TunePlan`] (if any) against the structure and report the
/// outcome via [`complete`](Self::complete).
///
/// [`run_stream_autotuned`](crate::runner::run_stream_autotuned) does this
/// wiring; the tuner itself never touches the structure's data path.
pub struct AutoTuner {
    cfg: AutoTuneConfig,
    memo: AdvisorMemo,
    env: Environment,
    cons: Constraints,
    sink: Arc<dyn TraceSink>,
    /// Decaying estimate of the live mix (normalized).
    est: OpMix,
    /// The mix the current shape was (last) chosen for.
    active_mix: OpMix,
    stable_streak: usize,
    windows_seen: usize,
    cooldown_until: usize,
    drift_open: bool,
    last_ro: Option<f64>,
    last_uo: Option<f64>,
    summary: AutoTuneSummary,
}

impl AutoTuner {
    /// Build a tuner. `initial_mix` is the mix the structure's starting
    /// shape was chosen for; `store` carries measured profiles for family
    /// ranking (an empty store falls back to the analytic wizard).
    pub fn new(
        cfg: AutoTuneConfig,
        initial_mix: &OpMix,
        store: ProfileStore,
        env: Environment,
        cons: Constraints,
    ) -> AutoTuner {
        let start = normalize_mix(initial_mix);
        AutoTuner {
            cfg,
            memo: AdvisorMemo::new(store),
            env,
            cons,
            sink: noop_sink(),
            est: start,
            active_mix: start,
            stable_streak: 0,
            windows_seen: 0,
            cooldown_until: 0,
            drift_open: false,
            last_ro: None,
            last_uo: None,
            summary: AutoTuneSummary::default(),
        }
    }

    /// Route decision events (`DriftDetected`/`TuneDecision`/...) to `sink`.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// The tuner's decision log so far.
    pub fn summary(&self) -> &AutoTuneSummary {
        &self.summary
    }

    /// Consume the tuner, returning its decision log.
    pub fn into_summary(self) -> AutoTuneSummary {
        self.summary
    }

    /// The current decayed mix estimate.
    pub fn estimate(&self) -> &OpMix {
        &self.est
    }

    fn emit(&self, kind: EventKind, detail: &[(&'static str, u64)]) {
        if self.sink.enabled() {
            self.sink.emit(kind, detail);
        }
    }

    /// Observe one closed window and decide whether to migrate.
    ///
    /// Hysteresis: drift must be declared (mix distance or RO/UO slope
    /// over threshold), the estimate must have settled
    /// ([`settle_windows`](AutoTuneConfig::settle_windows) consecutive
    /// quiet windows — so one regime change yields one migration, not one
    /// per window of the transition), warmup and cooldown must have
    /// passed, and the amortized predicted win must beat the bill.
    pub fn plan(
        &mut self,
        window: &TrajectoryWindow,
        counts: &OpCounts,
        method: &mut dyn Morphable,
    ) -> Option<TunePlan> {
        self.windows_seen += 1;
        self.summary.windows += 1;
        let observed = counts.to_mix()?;

        let prev = self.est;
        self.est = blend(&prev, &observed, self.cfg.decay);
        if mix_distance(&self.est, &prev) < self.cfg.settle_epsilon {
            self.stable_streak += 1;
        } else {
            self.stable_streak = 0;
        }

        let (ro, uo) = (window.ro(), window.uo());
        let slope = f64::max(
            relative_jump(self.last_ro, ro),
            relative_jump(self.last_uo, uo),
        );
        self.last_ro = Some(ro);
        self.last_uo = Some(uo);

        let dist = mix_distance(&self.est, &self.active_mix);
        let drifted = dist > self.cfg.mix_threshold || slope > self.cfg.slope_threshold;
        if !drifted {
            self.drift_open = false;
            return None;
        }
        if !self.drift_open {
            self.drift_open = true;
            self.summary.drift_events += 1;
            self.emit(
                EventKind::DriftDetected,
                &[
                    ("window", window.index as u64),
                    ("mix_distance_micros", micros(dist)),
                    ("slope_micros", micros(slope)),
                ],
            );
        }
        if self.windows_seen < self.cfg.warmup_windows
            || self.windows_seen < self.cooldown_until
            || self.stable_streak < self.cfg.settle_windows
        {
            return None;
        }

        // Candidate 1: in-place knob re-tune, priced by the structure.
        let mut best: Option<TunePlan> = None;
        let mut bill_hint = None;
        if let Some(gain) = method.retune_gain(&self.est, &self.env) {
            let win = gain.current_cost - gain.advised_cost;
            if win > 0.0 {
                bill_hint = gain.bill_pages;
                best = Some(TunePlan {
                    kind: TuneKind::Retune,
                    family: method.family(),
                    mix: self.est,
                    predicted_win: win,
                    bill_pages: 0.0,
                    window: window.index,
                });
            }
        }

        // Candidate 2: family swap, priced by the calibrated advisor.
        if self.cfg.allow_family_swap {
            let current = method.family();
            let swap = {
                let ranking = self.memo.recommend(&self.est, &self.env, &self.cons);
                ranking.top().and_then(|top| {
                    if top.family == current || !top.feasible {
                        return None;
                    }
                    let cur = ranking.recs.iter().find(|r| r.family == current)?;
                    Some((top.family, cur.expected_cost - top.expected_cost))
                })
            };
            if let Some((family, win)) = swap {
                if win > 0.0 && best.as_ref().is_none_or(|b| win > b.predicted_win) {
                    // A swap drains everything; the re-tune's cheap-path
                    // hint (if any) no longer applies.
                    bill_hint = None;
                    best = Some(TunePlan {
                        kind: TuneKind::FamilySwap,
                        family,
                        mix: self.est,
                        predicted_win: win,
                        bill_pages: 0.0,
                        window: window.index,
                    });
                }
            }
        }

        let mut plan = best?;
        // The bill: rewriting the resident data (read it all, write it
        // all) in pages — unless the structure quoted a cheaper path
        // (floored at one page so a "free" migration still needs a
        // nonzero predicted win to fire).
        let resident = method.space_profile().total_bytes();
        plan.bill_pages = bill_hint
            .map(|pages| pages.max(1.0))
            .unwrap_or((2 * resident) as f64 / PAGE_SIZE as f64);
        if plan.predicted_win * self.cfg.horizon_ops as f64 <= self.cfg.margin * plan.bill_pages {
            return None;
        }

        self.summary.decisions += 1;
        self.emit(
            EventKind::TuneDecision,
            &[
                ("window", plan.window as u64),
                ("family_swap", u64::from(plan.kind == TuneKind::FamilySwap)),
                ("win_micros_per_op", micros(plan.predicted_win)),
                ("bill_pages", plan.bill_pages as u64),
            ],
        );
        Some(plan)
    }

    /// Announce an imminent migration (the runner calls this right before
    /// [`Morphable::morph_to`], after settling op-phase attribution so the
    /// migration's I/O lands in the write class).
    pub fn begin_migration(&self, plan: &TunePlan) {
        self.emit(
            EventKind::MigrationStart,
            &[
                ("window", plan.window as u64),
                ("family_swap", u64::from(plan.kind == TuneKind::FamilySwap)),
            ],
        );
    }

    /// Record the outcome of an executed plan: adopt the estimate as the
    /// active mix, start the cooldown, and account the receipt (if the
    /// structure actually moved).
    pub fn complete(&mut self, plan: TunePlan, receipt: Option<MigrationReceipt>) {
        self.active_mix = plan.mix;
        self.cooldown_until = self.windows_seen + self.cfg.cooldown_windows;
        self.stable_streak = 0;
        self.drift_open = false;
        match receipt {
            Some(r) => {
                self.emit(
                    EventKind::MigrationComplete,
                    &[
                        ("window", plan.window as u64),
                        ("bytes_read", r.bytes_read),
                        ("bytes_written", r.bytes_written),
                        ("peak_extra_bytes", r.peak_extra_bytes),
                    ],
                );
                self.summary.migrations += 1;
                self.summary.migration_read_bytes += r.bytes_read;
                self.summary.migration_write_bytes += r.bytes_written;
                self.summary.peak_extra_bytes =
                    self.summary.peak_extra_bytes.max(r.peak_extra_bytes);
                self.summary.receipts.push(r);
            }
            None => self.summary.noop_decisions += 1,
        }
    }
}

/// `decay·a + (1−decay)·b`, renormalized.
fn blend(a: &OpMix, b: &OpMix, decay: f64) -> OpMix {
    let w = decay.clamp(0.0, 1.0);
    normalize_mix(&OpMix {
        get: w * a.get + (1.0 - w) * b.get,
        insert: w * a.insert + (1.0 - w) * b.insert,
        update: w * a.update + (1.0 - w) * b.update,
        delete: w * a.delete + (1.0 - w) * b.delete,
        range: w * a.range + (1.0 - w) * b.range,
    })
}

/// `|now − before| / max(before, 1)` — the windowed slope signal. The
/// first window has no predecessor and reports no jump.
fn relative_jump(before: Option<f64>, now: f64) -> f64 {
    match before {
        Some(b) => (now - b).abs() / b.max(1.0),
        None => 0.0,
    }
}

fn micros(x: f64) -> u64 {
    (x * 1e6).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;
    use crate::tracker::CostTracker;
    use crate::types::Record;
    use crate::SpaceProfile;

    /// A fake morphable structure with scripted costs: current shape costs
    /// `current`, the advised shape `advised`, per op.
    struct Scripted {
        tracker: Arc<CostTracker>,
        current: f64,
        advised: f64,
        morphs: usize,
        resident: u64,
    }

    impl Scripted {
        fn new(current: f64, advised: f64, resident: u64) -> Scripted {
            Scripted {
                tracker: CostTracker::new(),
                current,
                advised,
                morphs: 0,
                resident,
            }
        }
    }

    impl AccessMethod for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }
        fn len(&self) -> usize {
            1
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile {
                base_bytes: self.resident,
                aux_bytes: 0,
            }
        }
        fn get_impl(&mut self, _key: u64) -> Result<Option<u64>> {
            Ok(None)
        }
        fn range_impl(&mut self, _lo: u64, _hi: u64) -> Result<Vec<Record>> {
            Ok(Vec::new())
        }
        fn insert_impl(&mut self, _key: u64, _value: u64) -> Result<()> {
            Ok(())
        }
        fn update_impl(&mut self, _key: u64, _value: u64) -> Result<bool> {
            Ok(false)
        }
        fn delete_impl(&mut self, _key: u64) -> Result<bool> {
            Ok(false)
        }
        fn bulk_load_impl(&mut self, _records: &[Record]) -> Result<()> {
            Ok(())
        }
    }

    impl Morphable for Scripted {
        fn family(&self) -> Family {
            Family::LsmTree
        }
        fn shape(&self) -> String {
            "scripted".into()
        }
        fn retune_gain(&mut self, _mix: &OpMix, _env: &Environment) -> Option<RetuneEstimate> {
            if self.current > self.advised {
                Some(RetuneEstimate {
                    current_cost: self.current,
                    advised_cost: self.advised,
                    advised_shape: "advised".into(),
                    bill_pages: None,
                })
            } else {
                None
            }
        }
        fn morph_to(&mut self, _family: Family, _mix: &OpMix) -> Result<Option<MigrationReceipt>> {
            self.morphs += 1;
            self.current = self.advised;
            Ok(Some(MigrationReceipt {
                from: "scripted".into(),
                to: "advised".into(),
                bytes_read: self.resident,
                bytes_written: self.resident,
                peak_extra_bytes: self.resident,
            }))
        }
    }

    fn window(index: usize) -> TrajectoryWindow {
        TrajectoryWindow {
            index,
            ops: 256,
            delta: Default::default(),
            cumulative: Default::default(),
            mo: 1.0,
        }
    }

    fn counts_of(mix: &OpMix, total: u64) -> OpCounts {
        let q = normalize_mix(mix);
        OpCounts {
            get: (q.get * total as f64) as u64,
            insert: (q.insert * total as f64) as u64,
            update: (q.update * total as f64) as u64,
            delete: (q.delete * total as f64) as u64,
            range: (q.range * total as f64) as u64,
        }
    }

    fn drive(
        tuner: &mut AutoTuner,
        method: &mut Scripted,
        mixes: &[(usize, OpMix)],
    ) -> (usize, u64) {
        // Feed `count` windows per mix segment, executing any plans.
        let mut executed = 0usize;
        let mut idx = 0usize;
        for &(count, mix) in mixes {
            for _ in 0..count {
                let w = window(idx);
                idx += 1;
                if let Some(plan) = tuner.plan(&w, &counts_of(&mix, 256), method) {
                    tuner.begin_migration(&plan);
                    let receipt = method.morph_to(plan.family, &plan.mix).unwrap();
                    tuner.complete(plan, receipt);
                    executed += 1;
                }
            }
        }
        (executed, tuner.summary().migrations)
    }

    #[test]
    fn constant_mix_never_migrates() {
        let mut tuner = AutoTuner::new(
            AutoTuneConfig::default(),
            &OpMix::BALANCED,
            ProfileStore::new(),
            Environment::default(),
            Constraints::default(),
        );
        // Already in the advised shape: no gain to be had.
        let mut method = Scripted::new(1.0, 1.0, 1 << 20);
        let (executed, migrations) = drive(&mut tuner, &mut method, &[(40, OpMix::BALANCED)]);
        assert_eq!(executed, 0);
        assert_eq!(migrations, 0);
        assert_eq!(
            tuner.summary().drift_events,
            0,
            "no drift on a constant mix"
        );
    }

    #[test]
    fn hard_flip_triggers_exactly_one_migration() {
        let mut tuner = AutoTuner::new(
            AutoTuneConfig::default(),
            &OpMix::READ_HEAVY,
            ProfileStore::new(),
            Environment::default(),
            Constraints::default(),
        );
        let mut method = Scripted::new(4.0, 1.0, 1 << 20);
        let (_, migrations) = drive(
            &mut tuner,
            &mut method,
            &[(10, OpMix::READ_HEAVY), (30, OpMix::WRITE_HEAVY)],
        );
        assert_eq!(migrations, 1, "one regime change, one migration");
        assert_eq!(method.morphs, 1);
        assert_eq!(tuner.summary().drift_events, 1);
        let receipt = &tuner.summary().receipts[0];
        assert!(receipt.bytes_read > 0 && receipt.bytes_written > 0);
    }

    #[test]
    fn tiny_win_does_not_cover_the_bill() {
        // 0.001 pages/op win over a 100k-op horizon = 100 pages; the bill
        // for rewriting 16 MiB is ~8192 pages. Must not migrate.
        let mut tuner = AutoTuner::new(
            AutoTuneConfig::default(),
            &OpMix::READ_HEAVY,
            ProfileStore::new(),
            Environment::default(),
            Constraints::default(),
        );
        let mut method = Scripted::new(1.001, 1.0, 16 << 20);
        let (executed, _) = drive(
            &mut tuner,
            &mut method,
            &[(10, OpMix::READ_HEAVY), (30, OpMix::WRITE_HEAVY)],
        );
        assert_eq!(executed, 0, "win below the migration bill");
        assert!(tuner.summary().drift_events >= 1, "drift was still seen");
    }

    #[test]
    fn decisions_are_emitted_as_trace_events() {
        let sink = MemorySink::shared();
        let mut tuner = AutoTuner::new(
            AutoTuneConfig::default(),
            &OpMix::READ_HEAVY,
            ProfileStore::new(),
            Environment::default(),
            Constraints::default(),
        );
        tuner.set_trace_sink(sink.clone());
        let mut method = Scripted::new(4.0, 1.0, 1 << 20);
        drive(
            &mut tuner,
            &mut method,
            &[(10, OpMix::READ_HEAVY), (20, OpMix::SCAN_HEAVY)],
        );
        let events = sink.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::DriftDetected));
        assert!(kinds.contains(&EventKind::TuneDecision));
        assert!(kinds.contains(&EventKind::MigrationStart));
        assert!(kinds.contains(&EventKind::MigrationComplete));
        let complete = events
            .iter()
            .find(|e| e.kind == EventKind::MigrationComplete)
            .unwrap();
        assert!(complete.field("bytes_written").unwrap() > 0);
        assert_eq!(complete.kind.component(), "autotune");
    }

    #[test]
    fn estimate_decays_toward_the_observed_mix() {
        let mut tuner = AutoTuner::new(
            AutoTuneConfig::default(),
            &OpMix::READ_HEAVY,
            ProfileStore::new(),
            Environment::default(),
            Constraints::default(),
        );
        let mut method = Scripted::new(1.0, 1.0, 1 << 20);
        drive(&mut tuner, &mut method, &[(20, OpMix::WRITE_HEAVY)]);
        let est = tuner.estimate();
        let target = normalize_mix(&OpMix::WRITE_HEAVY);
        assert!(
            mix_distance(est, &target) < 0.05,
            "estimate did not converge: {est:?}"
        );
    }
}
