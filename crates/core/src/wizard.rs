//! The "access method wizard" of §5: "Using the above classification and
//! analysis we can make educated decisions about which access method should
//! be used based on the application requirements and the hardware
//! characteristics, effectively creating a powerful access method wizard."
//!
//! The wizard scores each access-method family using the I/O cost formulas
//! of Table 1 (in expected page accesses per operation) combined with the
//! workload's operation mix, and honors hard caps the user places on any of
//! the three RUM overheads.
//!
//! This module is the *analytic* half of the story: every number here comes
//! from a closed-form model. Its empirical counterpart is
//! [`crate::advisor`], which ranks the same [`Family`] list from measured
//! [`RumReport`](crate::runner::RumReport)s and quantifies where the
//! Table 1 model drifts from the measurements.

use crate::types::RECORDS_PER_PAGE;
use crate::workload::OpMix;

/// Hardware / dataset parameters of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Environment {
    /// Dataset size in records (`N`).
    pub n: usize,
    /// Range query result size in records (`m`).
    pub m: usize,
    /// ZoneMap partition size in records (`P`).
    pub partition: usize,
    /// LSM size ratio (`T`).
    pub size_ratio: usize,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            n: 1 << 22,
            m: 256,
            partition: 4096,
            size_ratio: 4,
        }
    }
}

/// Upper bounds the user is willing to tolerate. `None` = unconstrained.
#[derive(Clone, Copy, Debug, Default)]
pub struct Constraints {
    pub max_read_amp: Option<f64>,
    pub max_write_amp: Option<f64>,
    pub max_space_amp: Option<f64>,
    /// Whether range queries must be supported at all.
    pub needs_ranges: bool,
}

/// The access-method families the wizard knows (those of Table 1 plus the
/// adaptive middle ground).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    BTree,
    HashIndex,
    ZoneMap,
    LsmTree,
    SortedColumn,
    UnsortedColumn,
    CrackedColumn,
}

impl Family {
    pub const ALL: [Family; 7] = [
        Family::BTree,
        Family::HashIndex,
        Family::ZoneMap,
        Family::LsmTree,
        Family::SortedColumn,
        Family::UnsortedColumn,
        Family::CrackedColumn,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Family::BTree => "B+-Tree",
            Family::HashIndex => "Hash Index",
            Family::ZoneMap => "ZoneMaps",
            Family::LsmTree => "Levelled LSM",
            Family::SortedColumn => "Sorted column",
            Family::UnsortedColumn => "Unsorted column",
            Family::CrackedColumn => "Cracked column",
        }
    }

    /// The standard-suite method this family is calibrated from by
    /// [`crate::advisor`]: the measured `RumReport` carrying this name is
    /// the empirical ground truth for the family's Table 1 formulas.
    pub fn suite_method(&self) -> &'static str {
        match self {
            Family::BTree => "b+tree",
            Family::HashIndex => "hash-index",
            Family::ZoneMap => "zonemap",
            Family::LsmTree => "lsm-tree",
            Family::SortedColumn => "sorted-column",
            Family::UnsortedColumn => "unsorted-column",
            Family::CrackedColumn => "cracked-column",
        }
    }

    /// Human-readable Table 1 read-cost term for this family, used when the
    /// advisor reports which part of the analytic model disagrees with the
    /// measurements.
    pub fn read_term(&self) -> &'static str {
        match self {
            Family::BTree => "log_B(N) probe + m/B leaves",
            Family::HashIndex => "O(1) bucket probe (N/B scan for ranges)",
            Family::ZoneMap => "N/(P·B) zone headers + P/B partition scan",
            Family::LsmTree => "one probe per level + m/B·T/(T-1)",
            Family::SortedColumn => "log2(N/B) binary search",
            Family::UnsortedColumn => "N/(2B) expected scan",
            Family::CrackedColumn => "~4·log2(N/B) (converging toward sorted)",
        }
    }

    /// Human-readable Table 1 write-cost term for this family.
    pub fn write_term(&self) -> &'static str {
        match self {
            Family::BTree => "log_B(N) descent + leaf rewrite",
            Family::HashIndex => "1 bucket write (delete = probe + tombstone)",
            Family::ZoneMap => "in-place write + 1/P zone maintenance",
            Family::LsmTree => "(T/B)·levels amortized merge",
            Family::SortedColumn => "N/(2B) shift (in-place update: search + 1)",
            Family::UnsortedColumn => "1 append (update/delete: N/(2B) locate)",
            Family::CrackedColumn => "append + amortized reorganization",
        }
    }

    /// Human-readable Table 1 space term for this family.
    pub fn space_term(&self) -> &'static str {
        match self {
            Family::BTree => "1 + 1/(B-1) internal nodes + page slack",
            Family::HashIndex => "1/load-factor directory slack",
            Family::ZoneMap => "1 + zone headers / partition",
            Family::LsmTree => "1 + 1/(T-1) duplicate versions",
            Family::SortedColumn => "1 (dense pack)",
            Family::UnsortedColumn => "1 (dense pack)",
            Family::CrackedColumn => "1 + cracker index",
        }
    }
}

/// Analytic per-operation page-access costs (Table 1), plus nominal RUM
/// amplification estimates used against [`Constraints`].
///
/// Table 1 prices updates and deletes differently from inserts for several
/// families — a sorted column updates in place (search + one write) but
/// inserts by shifting half the column, and a hash index deletes with a
/// probe plus a tombstone — so the profile carries all five per-operation
/// costs rather than charging everything at `insert_cost`.
#[derive(Clone, Debug)]
pub struct FamilyProfile {
    pub family: Family,
    pub point_cost: f64,
    pub range_cost: f64,
    pub insert_cost: f64,
    pub update_cost: f64,
    pub delete_cost: f64,
    pub read_amp: f64,
    pub write_amp: f64,
    pub space_amp: f64,
    pub supports_ranges: bool,
}

impl FamilyProfile {
    /// Expected page accesses per operation under `mix`, blending all five
    /// per-operation costs by their (normalized) frequencies.
    pub fn expected_cost(&self, mix: &OpMix) -> f64 {
        let total = mix.get + mix.insert + mix.update + mix.delete + mix.range;
        let total = if total <= 0.0 { 1.0 } else { total };
        (mix.get * self.point_cost
            + mix.range * self.range_cost
            + mix.insert * self.insert_cost
            + mix.update * self.update_cost
            + mix.delete * self.delete_cost)
            / total
    }
}

fn log_b(n: f64, b: f64) -> f64 {
    (n.max(2.0)).ln() / b.max(2.0).ln()
}

/// Evaluate the Table 1 cost model for one family in one environment.
pub fn profile(family: Family, env: &Environment) -> FamilyProfile {
    let n = env.n as f64;
    let b = RECORDS_PER_PAGE as f64;
    let m = env.m as f64;
    let p = env.partition as f64;
    let t = env.size_ratio.max(2) as f64;
    let pages = (n / b).max(1.0);
    let zones = (n / p).max(1.0);
    let levels = log_b(pages, t).max(1.0);

    match family {
        Family::BTree => FamilyProfile {
            family,
            point_cost: log_b(n, b),
            range_cost: log_b(n, b) + m / b,
            insert_cost: log_b(n, b) + 1.0,
            // Update / delete descend like an insert but rewrite the leaf in
            // place — no split amortization, same page count.
            update_cost: log_b(n, b) + 1.0,
            delete_cost: log_b(n, b) + 1.0,
            read_amp: log_b(n, b).max(1.0) * b / 1.0, // page-granular probes
            write_amp: b,                             // rewrite a leaf page per record update
            space_amp: 1.0 + 1.0 / (b - 1.0) + 0.07,  // internal nodes + slack
            supports_ranges: true,
        },
        Family::HashIndex => FamilyProfile {
            family,
            point_cost: 1.0,
            range_cost: pages, // must scan everything
            insert_cost: 1.0,
            update_cost: 1.0, // probe + overwrite in the same bucket page
            delete_cost: 1.0, // probe + tombstone, one page access
            read_amp: b,
            write_amp: b,
            space_amp: 1.0 / 0.7, // load factor
            supports_ranges: false,
        },
        Family::ZoneMap => FamilyProfile {
            family,
            point_cost: (zones / b).max(1.0) + p / b,
            range_cost: (zones / b).max(1.0) + p / b + m / b,
            insert_cost: 1.0 + (1.0 / p), // in-place + zone maintenance
            // In-place update / delete still touch the partition's zone
            // header when they move its min/max.
            update_cost: 1.0 + (1.0 / p),
            delete_cost: 1.0 + (1.0 / p),
            read_amp: p.max(b),
            write_amp: b,
            space_amp: 1.0 + 32.0 / (p * 16.0),
            supports_ranges: true,
        },
        Family::LsmTree => FamilyProfile {
            family,
            point_cost: levels, // one probe per level (fences cached)
            range_cost: levels + (m / b) * t / (t - 1.0),
            insert_cost: (t / b) * levels, // amortized merge cost
            // Out-of-place structure: an update is a blind insert of a new
            // version, a delete a blind insert of a tombstone — both pay
            // exactly the insert's amortized merge cost.
            update_cost: (t / b) * levels,
            delete_cost: (t / b) * levels,
            read_amp: levels * b,
            write_amp: t * levels,
            space_amp: 1.0 + 1.0 / (t - 1.0) + 0.02,
            supports_ranges: true,
        },
        Family::SortedColumn => FamilyProfile {
            family,
            point_cost: (pages).log2().max(1.0),
            range_cost: (pages).log2().max(1.0) + m / b,
            insert_cost: pages / 2.0, // shift half the column
            // The asymmetry Table 1 prices and `insert_cost` alone cannot:
            // an update binary-searches and overwrites one slot in place
            // (≪ the insert shift), while a delete must close the gap it
            // leaves — the same half-column shift as an insert.
            update_cost: (pages).log2().max(1.0) + 1.0,
            delete_cost: pages / 2.0,
            read_amp: (pages).log2().max(1.0) * b,
            write_amp: n / 2.0,
            space_amp: 1.0,
            supports_ranges: true,
        },
        Family::UnsortedColumn => FamilyProfile {
            family,
            point_cost: pages / 2.0,
            range_cost: pages,
            insert_cost: 1.0, // append
            // Update / delete must *find* the record first (expected
            // half-scan), then write one slot (delete swap-removes).
            update_cost: pages / 2.0 + 1.0,
            delete_cost: pages / 2.0 + 1.0,
            read_amp: n / 2.0,
            write_amp: 1.0,
            space_amp: 1.0,
            supports_ranges: true,
        },
        Family::CrackedColumn => {
            // Converges from scan cost toward sorted-column cost; model the
            // steady state after the cracker index has partially formed.
            let converged = (pages).log2().max(1.0) * 4.0;
            FamilyProfile {
                family,
                point_cost: converged,
                range_cost: converged + m / b,
                insert_cost: 2.0, // append to pending + lazy merge
                // Updates / deletes locate through the (partial) cracker
                // index, then write in place / tombstone.
                update_cost: converged + 1.0,
                delete_cost: converged + 1.0,
                read_amp: converged * b,
                write_amp: 8.0, // amortized reorganization
                space_amp: 1.10,
                supports_ranges: true,
            }
        }
    }
}

/// One ranked recommendation.
#[derive(Clone, Debug)]
pub struct Recommendation {
    pub family: Family,
    /// Expected page accesses per operation under the mix (lower = better).
    pub expected_cost: f64,
    /// Whether every hard constraint is satisfied.
    pub feasible: bool,
    /// Human-readable reasons for infeasibility.
    pub violations: Vec<String>,
}

/// Rank all families for a workload mix under constraints.
/// Infeasible families sort after feasible ones.
pub fn recommend(mix: &OpMix, env: &Environment, cons: &Constraints) -> Vec<Recommendation> {
    let mut recs: Vec<Recommendation> = Family::ALL
        .iter()
        .map(|&f| {
            let p = profile(f, env);
            let expected_cost = p.expected_cost(mix);
            let mut violations = Vec::new();
            if cons.needs_ranges && !p.supports_ranges {
                violations.push("range queries unsupported".to_string());
            }
            if let Some(cap) = cons.max_read_amp {
                if p.read_amp > cap {
                    violations.push(format!("read amp {:.1} > cap {:.1}", p.read_amp, cap));
                }
            }
            if let Some(cap) = cons.max_write_amp {
                if p.write_amp > cap {
                    violations.push(format!("write amp {:.1} > cap {:.1}", p.write_amp, cap));
                }
            }
            if let Some(cap) = cons.max_space_amp {
                if p.space_amp > cap {
                    violations.push(format!("space amp {:.2} > cap {:.2}", p.space_amp, cap));
                }
            }
            Recommendation {
                family: f,
                expected_cost,
                feasible: violations.is_empty(),
                violations,
            }
        })
        .collect();
    recs.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then(a.expected_cost.total_cmp(&b.expected_cost))
    });
    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_point_workload_prefers_hash() {
        let recs = recommend(
            &OpMix::READ_ONLY,
            &Environment::default(),
            &Constraints::default(),
        );
        assert_eq!(recs[0].family, Family::HashIndex);
    }

    #[test]
    fn ranges_required_excludes_hash() {
        let cons = Constraints {
            needs_ranges: true,
            ..Default::default()
        };
        let recs = recommend(&OpMix::SCAN_HEAVY, &Environment::default(), &cons);
        let hash = recs.iter().find(|r| r.family == Family::HashIndex).unwrap();
        assert!(!hash.feasible);
        assert!(recs[0].feasible);
        assert_ne!(recs[0].family, Family::HashIndex);
    }

    #[test]
    fn insert_only_prefers_append_or_lsm() {
        let recs = recommend(
            &OpMix::INSERT_ONLY,
            &Environment::default(),
            &Constraints::default(),
        );
        assert!(
            matches!(
                recs[0].family,
                Family::UnsortedColumn | Family::LsmTree | Family::HashIndex
            ),
            "got {:?}",
            recs[0].family
        );
        // The sorted column (shift half the data per insert) must rank last
        // among feasible options.
        let sorted_pos = recs
            .iter()
            .position(|r| r.family == Family::SortedColumn)
            .unwrap();
        assert!(sorted_pos >= Family::ALL.len() - 2);
    }

    #[test]
    fn write_amp_cap_disqualifies_btree_for_write_heavy() {
        let cons = Constraints {
            max_write_amp: Some(16.0),
            ..Default::default()
        };
        let recs = recommend(&OpMix::WRITE_HEAVY, &Environment::default(), &cons);
        let btree = recs.iter().find(|r| r.family == Family::BTree).unwrap();
        assert!(!btree.feasible, "B-tree write amp should exceed 16");
    }

    #[test]
    fn space_cap_favors_bare_columns() {
        let cons = Constraints {
            max_space_amp: Some(1.05),
            needs_ranges: true,
            ..Default::default()
        };
        let recs = recommend(&OpMix::SCAN_HEAVY, &Environment::default(), &cons);
        assert!(recs[0].feasible);
        assert!(
            matches!(
                recs[0].family,
                Family::SortedColumn | Family::UnsortedColumn | Family::ZoneMap
            ),
            "got {:?}",
            recs[0].family
        );
    }

    #[test]
    fn costs_scale_with_n() {
        let small = profile(
            Family::BTree,
            &Environment {
                n: 1 << 12,
                ..Default::default()
            },
        );
        let large = profile(
            Family::BTree,
            &Environment {
                n: 1 << 24,
                ..Default::default()
            },
        );
        assert!(large.point_cost > small.point_cost);
        // Hash stays O(1).
        let hs = profile(
            Family::HashIndex,
            &Environment {
                n: 1 << 12,
                ..Default::default()
            },
        );
        let hl = profile(
            Family::HashIndex,
            &Environment {
                n: 1 << 24,
                ..Default::default()
            },
        );
        assert_eq!(hs.point_cost, hl.point_cost);
    }

    #[test]
    fn every_family_profiled() {
        for f in Family::ALL {
            let p = profile(f, &Environment::default());
            assert!(p.point_cost > 0.0);
            assert!(p.update_cost > 0.0);
            assert!(p.delete_cost > 0.0);
            assert!(p.space_amp >= 1.0);
        }
    }

    #[test]
    fn sorted_column_update_is_far_cheaper_than_insert() {
        // Table 1: in-place update = search + one write; insert = shift
        // half the column. Charging updates at `insert_cost` (the old bug)
        // made an update-heavy sorted column look as bad as an ingest one.
        let p = profile(Family::SortedColumn, &Environment::default());
        assert!(
            p.update_cost * 100.0 < p.insert_cost,
            "update {} vs insert {}",
            p.update_cost,
            p.insert_cost
        );
        // Deleting from a sorted column still shifts.
        assert_eq!(p.delete_cost, p.insert_cost);
    }

    #[test]
    fn update_heavy_mix_ranks_sorted_column_above_insert_heavy_mix() {
        let update_heavy = OpMix {
            get: 0.2,
            insert: 0.0,
            update: 0.8,
            delete: 0.0,
            range: 0.0,
        };
        let env = Environment::default();
        let cons = Constraints::default();
        let pos = |mix: &OpMix| {
            recommend(mix, &env, &cons)
                .iter()
                .position(|r| r.family == Family::SortedColumn)
                .unwrap()
        };
        assert!(
            pos(&update_heavy) < pos(&OpMix::WRITE_HEAVY),
            "in-place updates should rescue the sorted column's rank"
        );
    }

    #[test]
    fn hash_delete_is_single_page() {
        // Probe + tombstone: one bucket access, not an insert-shaped cost
        // blowup on any family that prices deletes separately.
        let p = profile(Family::HashIndex, &Environment::default());
        assert_eq!(p.delete_cost, 1.0);
        let unsorted = profile(Family::UnsortedColumn, &Environment::default());
        assert!(
            unsorted.delete_cost > unsorted.insert_cost,
            "unsorted delete must pay the locate scan an append never does"
        );
    }

    #[test]
    fn expected_cost_blends_all_five_op_kinds() {
        let p = profile(Family::BTree, &Environment::default());
        let pure = |get, insert, update, delete, range| {
            p.expected_cost(&OpMix {
                get,
                insert,
                update,
                delete,
                range,
            })
        };
        assert_eq!(pure(1.0, 0.0, 0.0, 0.0, 0.0), p.point_cost);
        assert_eq!(pure(0.0, 1.0, 0.0, 0.0, 0.0), p.insert_cost);
        assert_eq!(pure(0.0, 0.0, 1.0, 0.0, 0.0), p.update_cost);
        assert_eq!(pure(0.0, 0.0, 0.0, 1.0, 0.0), p.delete_cost);
        assert_eq!(pure(0.0, 0.0, 0.0, 0.0, 1.0), p.range_cost);
        // Degenerate all-zero mix does not divide by zero.
        assert!(pure(0.0, 0.0, 0.0, 0.0, 0.0).is_finite());
    }
}
