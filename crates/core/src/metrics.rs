//! The live metrics plane: a zero-dependency registry of counters,
//! gauges, and log-bucketed histograms, plus **causal debt attribution**
//! of background bytes to the foreground op class that incurred them.
//!
//! The trace layer ([`crate::trace`]) answers "what happened, in order";
//! an end-of-run [`RumReport`](crate::runner::RumReport) answers "what
//! did the whole run cost". Neither answers the production question
//! *"which op class is paying for this compaction burst right now?"*
//! This module does, with three pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and
//!   [`LatencyHistogram`]s behind one mutex. Snapshots merge pointwise
//!   ([`MetricsSnapshot::add`]) exactly like
//!   [`CostSnapshot::add`]: commutative, associative `u64`/count sums,
//!   so per-worker registries shard and fold back together
//!   ([`MetricsRegistry::absorb`]) with a result identical to recording
//!   everything in one registry.
//! * [`DebtLedger`] — the RUM conjecture prices access methods in
//!   *amortized* overheads, but the tracker charges background work
//!   (compaction, flush, WAL sync, view rebuild, recovery, migration)
//!   to whichever op class happened to be running when it fired. The
//!   ledger re-attributes those bytes to the class that *causally*
//!   incurred them, and tracks deferred-write debt: logical write bytes
//!   accrue debt at insert/update time, and flush + compaction traffic
//!   settles it. Attribution is **conservative by construction**: every
//!   re-attribution moves bytes between classes in a zero-sum way, so
//!   the per-class attributed bytes always sum bit-equal to the tracker
//!   totals ([`DebtSnapshot::conserves`]).
//! * [`MetricsSink`] — a [`TraceSink`] that mirrors every emitted event
//!   into the registry (`rum_events_total{kind}`,
//!   `rum_event_bytes_total{component,kind}`), feeds the ledger, and
//!   forwards to an optional inner sink, so a [`MemorySink`] trace and
//!   the live mirror coexist.
//!
//! Everything is opt-in: the compiled-in default sink everywhere remains
//! [`NoopSink`](crate::trace::NoopSink), and
//! [`run_stream_metered`](crate::runner::run_stream_metered) is a pure
//! observer of the tracker, so metrics-enabled runs are bit-identical in
//! RO/UO/MO to metrics-disabled runs (`tests/metrics_conservation.rs`
//! pins this for the whole standard suite).
//!
//! [`MemorySink`]: crate::trace::MemorySink

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::trace::{detail_byte_weight, detail_field, EventKind, LatencyHistogram, TraceSink};
use crate::tracker::CostSnapshot;

// ---- op classes ----------------------------------------------------------

/// The foreground operation class a cost is attributed to. `Load` is the
/// bulk-load phase; `Read` covers get/range; `Write` covers
/// insert/update/delete — the same split
/// [`RumReport`](crate::runner::RumReport) uses for its per-class
/// [`CostSnapshot`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    Load,
    Read,
    Write,
}

impl OpClass {
    /// All classes, in ledger index order.
    pub const ALL: [OpClass; 3] = [OpClass::Load, OpClass::Read, OpClass::Write];

    /// Stable lowercase name used as the `class` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            OpClass::Load => "load",
            OpClass::Read => "read",
            OpClass::Write => "write",
        }
    }

    /// The op class of a stream operation given its read/write split.
    pub fn of_read(is_read: bool) -> OpClass {
        if is_read {
            OpClass::Read
        } else {
            OpClass::Write
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Load => 0,
            OpClass::Read => 1,
            OpClass::Write => 2,
        }
    }
}

// ---- the registry --------------------------------------------------------

/// A fully-qualified metric identity: name plus sorted label pairs.
/// Sorting at construction makes label order irrelevant to identity,
/// mirroring Prometheus semantics.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    /// Label pairs sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with the given name and labels (labels are sorted).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A point-in-time copy of a registry's contents. Merging is pointwise
/// and therefore commutative and associative, exactly like
/// [`CostSnapshot::add`]: counters add, gauges add (shard a gauge only
/// when a sum is the right fold — ratio gauges should be computed after
/// merging, not merged), histograms merge bucketwise.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, f64>,
    pub histograms: BTreeMap<MetricKey, LatencyHistogram>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self` pointwise.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Pointwise sum of two snapshots (commutative, associative).
    pub fn add(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        out.absorb(other);
        out
    }

    /// The counter's value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// The gauge's value, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// The histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LatencyHistogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }
}

/// A thread-safe registry of named counters, gauges, and histograms.
/// All mutation goes through one mutex; readers take a full
/// [`MetricsSnapshot`]. For sharded execution give each worker its own
/// registry and [`absorb`](Self::absorb) the workers' snapshots on read
/// — the merge laws guarantee the result equals a single shared
/// registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A fresh registry behind an [`Arc`].
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsSnapshot> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Add `v` to the named counter (created at 0 on first touch).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .lock()
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += v;
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lock().gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.lock()
            .histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(value);
    }

    /// Fold another registry's snapshot into this one (shard merge).
    pub fn absorb(&self, other: &MetricsSnapshot) {
        self.lock().absorb(other);
    }

    /// Copy out the full registry contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().clone()
    }

    /// The counter's current value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.lock().counter(name, labels)
    }

    /// The gauge's current value, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.lock().gauge(name, labels)
    }

    /// The `q`-quantile of the named histogram, if it has observations.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<u64> {
        self.lock().histogram(name, labels).map(|h| h.quantile(q))
    }
}

// ---- the debt ledger ------------------------------------------------------

/// Attribution state for one op class: the raw tracker deltas charged to
/// it plus the signed byte moves from causal re-attribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassAttribution {
    /// Tracker deltas settled while this class was running — exactly the
    /// per-class split [`RumReport`](crate::runner::RumReport) reports.
    pub charged: CostSnapshot,
    /// Net physical read bytes moved into (positive) or out of
    /// (negative) this class by causal re-attribution. Signed so a move
    /// can never silently clamp: conservation stays exact even if a
    /// class is debited more than it was charged.
    pub moved_read_bytes: i128,
    /// Net physical write bytes moved by causal re-attribution.
    pub moved_write_bytes: i128,
}

impl ClassAttribution {
    /// Physical read bytes causally attributed to this class.
    pub fn attributed_read_bytes(&self) -> i128 {
        self.charged.total_read_bytes() as i128 + self.moved_read_bytes
    }

    /// Physical write bytes causally attributed to this class.
    pub fn attributed_write_bytes(&self) -> i128 {
        self.charged.total_write_bytes() as i128 + self.moved_write_bytes
    }

    /// Amortized per-class read overhead: attributed physical read bytes
    /// over the class's logical read bytes (paper Table 1 RO, but
    /// causally attributed). Degenerate cases follow
    /// [`CostSnapshot::read_amplification`]: 0/0 is 1, x/0 is +inf.
    pub fn ro(&self) -> f64 {
        amortized(
            self.attributed_read_bytes(),
            self.charged.logical_read_bytes,
        )
    }

    /// Amortized per-class update overhead: attributed physical write
    /// bytes over the class's logical write bytes.
    pub fn uo(&self) -> f64 {
        amortized(
            self.attributed_write_bytes(),
            self.charged.logical_write_bytes,
        )
    }
}

fn amortized(attributed: i128, logical: u64) -> f64 {
    match (attributed, logical) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (n, d) => n as f64 / d as f64,
    }
}

/// A point-in-time copy of the [`DebtLedger`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DebtSnapshot {
    /// Attribution per class, indexed like [`OpClass::ALL`].
    pub classes: [ClassAttribution; 3],
    /// Logical write bytes that have accrued deferred-write debt
    /// (charged at insert/update/delete time).
    pub debt_accrued_bytes: u64,
    /// Background write bytes that settled deferred-write debt (flush and
    /// compaction traffic).
    pub debt_settled_bytes: u64,
    /// Physical read bytes moved between classes by re-attribution.
    pub reattributed_read_bytes: u64,
    /// Physical write bytes moved between classes by re-attribution.
    pub reattributed_write_bytes: u64,
}

impl DebtSnapshot {
    /// Attribution state for one class.
    pub fn class(&self, class: OpClass) -> &ClassAttribution {
        &self.classes[class.index()]
    }

    /// Deferred-write debt not yet settled by flush/compaction: logical
    /// bytes buffered somewhere (memtable, WAL tail) whose amortized
    /// write cost has not been paid yet.
    pub fn debt_outstanding_bytes(&self) -> u64 {
        self.debt_accrued_bytes
            .saturating_sub(self.debt_settled_bytes)
    }

    /// Sum of per-class attributed read bytes. Re-attribution is
    /// zero-sum, so this equals the sum of charged tracker deltas.
    pub fn attributed_read_total(&self) -> i128 {
        self.classes.iter().map(|c| c.attributed_read_bytes()).sum()
    }

    /// Sum of per-class attributed write bytes.
    pub fn attributed_write_total(&self) -> i128 {
        self.classes
            .iter()
            .map(|c| c.attributed_write_bytes())
            .sum()
    }

    /// The conservation invariant: per-class attributed physical and
    /// logical bytes sum **bit-equal** to the tracker totals. Holds
    /// whenever every tracker delta was charged to exactly one class,
    /// because re-attribution only ever moves bytes zero-sum.
    pub fn conserves(&self, totals: &CostSnapshot) -> bool {
        let charged_logical_read: u64 = self
            .classes
            .iter()
            .map(|c| c.charged.logical_read_bytes)
            .sum();
        let charged_logical_write: u64 = self
            .classes
            .iter()
            .map(|c| c.charged.logical_write_bytes)
            .sum();
        self.attributed_read_total() == totals.total_read_bytes() as i128
            && self.attributed_write_total() == totals.total_write_bytes() as i128
            && charged_logical_read == totals.logical_read_bytes
            && charged_logical_write == totals.logical_write_bytes
    }
}

#[derive(Debug, Default)]
struct LedgerState {
    classes: [ClassAttribution; 3],
    current: usize,
    debt_accrued_bytes: u64,
    debt_settled_bytes: u64,
    reattributed_read_bytes: u64,
    reattributed_write_bytes: u64,
}

/// Charges every background byte back to the foreground op class that
/// causally incurred it.
///
/// The runner tells the ledger which class is executing
/// ([`begin_class`](Self::begin_class)) and hands it every settled
/// tracker delta ([`charge`](Self::charge)); the [`MetricsSink`] feeds
/// it every trace event ([`on_event`](Self::on_event)). Background
/// events whose detail carries physical bytes are re-attributed from the
/// class that was running when they fired to the class that owes them:
///
/// | event | debtor | bytes moved |
/// |---|---|---|
/// | `lsm_flush`, `lsm_compaction` | Write | `bytes` written, `read_bytes` read (settles deferred-write debt) |
/// | `wal_sync`, `wal_checkpoint` | Write | `bytes` written |
/// | `lsm_view_build` | Write | `bytes + read_bytes` (the rebuild the writes made necessary) |
/// | `buffer_eviction` | Write | `bytes` written back |
/// | `wal_recovery` | Write | `bytes` written, `read_bytes` read (replaying writes) |
/// | `migration_complete` | Write | `bytes_written`, `bytes_read` |
///
/// During the load phase the debtor is `Load` — background work a bulk
/// load triggers is the load's own bill. Retry and fault events stay
/// with the running class (a fault on a read path really is read cost),
/// and `repair_complete` carries no bytes (the recovery I/O inside it is
/// already billed by its `wal_recovery` event).
///
/// All moves are zero-sum between classes, so conservation
/// ([`DebtSnapshot::conserves`]) is exact by construction.
#[derive(Debug, Default)]
pub struct DebtLedger {
    inner: Mutex<LedgerState>,
}

impl DebtLedger {
    pub fn new() -> DebtLedger {
        DebtLedger::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LedgerState> {
        self.inner.lock().expect("debt ledger poisoned")
    }

    /// Declare the op class now executing; events that fire until the
    /// next `begin_class` are re-attributed relative to it.
    pub fn begin_class(&self, class: OpClass) {
        self.lock().current = class.index();
    }

    /// Fold a settled tracker delta into `class`. Write-class logical
    /// bytes accrue deferred-write debt.
    pub fn charge(&self, class: OpClass, delta: &CostSnapshot) {
        let mut s = self.lock();
        let slot = &mut s.classes[class.index()];
        slot.charged = slot.charged.add(delta);
        if class == OpClass::Write {
            s.debt_accrued_bytes += delta.logical_write_bytes;
        }
    }

    /// Observe one trace event; background byte-moving kinds are
    /// re-attributed to their debtor class.
    pub fn on_event(&self, kind: EventKind, detail: &[(&'static str, u64)]) {
        let (write_bytes, read_bytes, settles_debt) = match kind {
            EventKind::LsmFlush | EventKind::LsmCompaction => (
                detail_field(detail, "bytes").unwrap_or(0),
                detail_field(detail, "read_bytes").unwrap_or(0),
                true,
            ),
            EventKind::WalSync | EventKind::WalCheckpoint | EventKind::BufferEviction => {
                (detail_field(detail, "bytes").unwrap_or(0), 0, false)
            }
            EventKind::LsmViewBuild => (
                // The tracker charges the scan and the materialized view
                // together as auxiliary writes; move the same amount.
                detail_field(detail, "bytes").unwrap_or(0)
                    + detail_field(detail, "read_bytes").unwrap_or(0),
                0,
                false,
            ),
            EventKind::WalRecovery => (
                detail_field(detail, "bytes").unwrap_or(0),
                detail_field(detail, "read_bytes").unwrap_or(0),
                false,
            ),
            EventKind::MigrationComplete => (
                detail_field(detail, "bytes_written").unwrap_or(0),
                detail_field(detail, "bytes_read").unwrap_or(0),
                false,
            ),
            _ => return,
        };
        let mut s = self.lock();
        if settles_debt {
            s.debt_settled_bytes += write_bytes;
        }
        let from = s.current;
        let to = if from == OpClass::Load.index() {
            OpClass::Load.index()
        } else {
            OpClass::Write.index()
        };
        if from == to || (write_bytes == 0 && read_bytes == 0) {
            return;
        }
        s.classes[from].moved_write_bytes -= write_bytes as i128;
        s.classes[to].moved_write_bytes += write_bytes as i128;
        s.classes[from].moved_read_bytes -= read_bytes as i128;
        s.classes[to].moved_read_bytes += read_bytes as i128;
        s.reattributed_write_bytes += write_bytes;
        s.reattributed_read_bytes += read_bytes;
    }

    /// Copy out the ledger.
    pub fn snapshot(&self) -> DebtSnapshot {
        let s = self.lock();
        DebtSnapshot {
            classes: s.classes.clone(),
            debt_accrued_bytes: s.debt_accrued_bytes,
            debt_settled_bytes: s.debt_settled_bytes,
            reattributed_read_bytes: s.reattributed_read_bytes,
            reattributed_write_bytes: s.reattributed_write_bytes,
        }
    }

    /// Reset all attribution state (the current class reverts to Load).
    pub fn reset(&self) {
        *self.lock() = LedgerState::default();
    }
}

// ---- the sink -------------------------------------------------------------

/// A [`TraceSink`] mirroring every event into a [`MetricsRegistry`] and a
/// [`DebtLedger`], then forwarding to an optional inner sink. Install it
/// via [`MetricsPlane::sink`] (or
/// [`sink_with_forward`](MetricsPlane::sink_with_forward) to keep an
/// existing [`MemorySink`](crate::trace::MemorySink) trace flowing).
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    ledger: Arc<DebtLedger>,
    forward: Option<Arc<dyn TraceSink>>,
}

impl TraceSink for MetricsSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, kind: EventKind, detail: &[(&'static str, u64)]) {
        self.registry
            .counter_add("rum_events_total", &[("kind", kind.as_str())], 1);
        let weight = detail_byte_weight(detail);
        if weight > 0 {
            self.registry.counter_add(
                "rum_event_bytes_total",
                &[("component", kind.component()), ("kind", kind.as_str())],
                weight,
            );
        }
        self.ledger.on_event(kind, detail);
        if let Some(forward) = &self.forward {
            if forward.enabled() {
                forward.emit(kind, detail);
            }
        }
    }
}

// ---- the plane ------------------------------------------------------------

/// One registry + one ledger, bundled with the gauge-publication logic:
/// the object a metered run and an exporter share.
///
/// Gauge families published by [`refresh_live`](Self::refresh_live) /
/// [`publish_final`](Self::publish_final):
///
/// * `rum_class_read_amplification{class}` / `rum_class_write_amplification{class}`
///   — live per-op-class amortized RO/UO (causally attributed; non-finite
///   values are clamped to 0 so the text exposition stays parseable).
/// * `rum_class_attributed_read_bytes{class}` / `..._write_bytes{class}`
///   and `rum_class_logical_read_bytes{class}` / `..._write_bytes{class}`.
/// * `rum_debt_accrued_bytes` / `rum_debt_settled_bytes` /
///   `rum_debt_outstanding_bytes` — the deferred-write debt balance.
/// * `rum_reattributed_read_bytes` / `rum_reattributed_write_bytes`.
/// * `rum_space_amplification` (MO) and `rum_live_records`.
/// * `rum_op_latency_p50_ns{class}` / `rum_op_latency_p99_ns{class}` from
///   the `rum_op_latency_ns{class}` histograms.
/// * `publish_final` additionally sets `rum_tracker_*_bytes` totals and
///   `rum_conservation_ok` (1 when [`DebtSnapshot::conserves`] holds).
pub struct MetricsPlane {
    registry: Arc<MetricsRegistry>,
    ledger: Arc<DebtLedger>,
}

impl Default for MetricsPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsPlane {
    pub fn new() -> MetricsPlane {
        MetricsPlane {
            registry: MetricsRegistry::shared(),
            ledger: Arc::new(DebtLedger::new()),
        }
    }

    /// A fresh plane behind an [`Arc`], ready to share with an exporter.
    pub fn shared() -> Arc<MetricsPlane> {
        Arc::new(MetricsPlane::new())
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub fn ledger(&self) -> &Arc<DebtLedger> {
        &self.ledger
    }

    /// A sink mirroring events into this plane (no forwarding).
    pub fn sink(&self) -> Arc<MetricsSink> {
        Arc::new(MetricsSink {
            registry: Arc::clone(&self.registry),
            ledger: Arc::clone(&self.ledger),
            forward: None,
        })
    }

    /// A sink mirroring events into this plane and forwarding each event
    /// to `forward` (e.g. a [`MemorySink`](crate::trace::MemorySink)).
    pub fn sink_with_forward(&self, forward: Arc<dyn TraceSink>) -> Arc<MetricsSink> {
        Arc::new(MetricsSink {
            registry: Arc::clone(&self.registry),
            ledger: Arc::clone(&self.ledger),
            forward: Some(forward),
        })
    }

    /// Record one foreground op's latency into the per-class histogram.
    pub fn observe_op(&self, is_read: bool, latency_ns: u64) {
        self.registry.observe(
            "rum_op_latency_ns",
            &[("class", OpClass::of_read(is_read).as_str())],
            latency_ns,
        );
    }

    /// Publish the live gauge set from the current ledger state. Called
    /// by the metered runner at every trajectory-window close.
    pub fn refresh_live(&self, mo: f64, live_records: u64) {
        let debt = self.ledger.snapshot();
        for class in OpClass::ALL {
            let a = debt.class(class);
            let labels = [("class", class.as_str())];
            self.registry.gauge_set(
                "rum_class_read_amplification",
                &labels,
                finite_or_zero(a.ro()),
            );
            self.registry.gauge_set(
                "rum_class_write_amplification",
                &labels,
                finite_or_zero(a.uo()),
            );
            self.registry.gauge_set(
                "rum_class_attributed_read_bytes",
                &labels,
                a.attributed_read_bytes() as f64,
            );
            self.registry.gauge_set(
                "rum_class_attributed_write_bytes",
                &labels,
                a.attributed_write_bytes() as f64,
            );
            self.registry.gauge_set(
                "rum_class_logical_read_bytes",
                &labels,
                a.charged.logical_read_bytes as f64,
            );
            self.registry.gauge_set(
                "rum_class_logical_write_bytes",
                &labels,
                a.charged.logical_write_bytes as f64,
            );
        }
        self.registry.gauge_set(
            "rum_debt_accrued_bytes",
            &[],
            debt.debt_accrued_bytes as f64,
        );
        self.registry.gauge_set(
            "rum_debt_settled_bytes",
            &[],
            debt.debt_settled_bytes as f64,
        );
        self.registry.gauge_set(
            "rum_debt_outstanding_bytes",
            &[],
            debt.debt_outstanding_bytes() as f64,
        );
        self.registry.gauge_set(
            "rum_reattributed_read_bytes",
            &[],
            debt.reattributed_read_bytes as f64,
        );
        self.registry.gauge_set(
            "rum_reattributed_write_bytes",
            &[],
            debt.reattributed_write_bytes as f64,
        );
        self.registry
            .gauge_set("rum_space_amplification", &[], finite_or_zero(mo));
        self.registry
            .gauge_set("rum_live_records", &[], live_records as f64);
        for class in ["read", "write"] {
            let labels = [("class", class)];
            for (name, q) in [
                ("rum_op_latency_p50_ns", 0.50),
                ("rum_op_latency_p99_ns", 0.99),
            ] {
                if let Some(v) = self
                    .registry
                    .histogram_quantile("rum_op_latency_ns", &labels, q)
                {
                    self.registry.gauge_set(name, &labels, v as f64);
                }
            }
        }
    }

    /// [`refresh_live`](Self::refresh_live) plus the end-of-run truth:
    /// tracker byte totals and the conservation verdict against them.
    pub fn publish_final(&self, totals: &CostSnapshot, mo: f64, live_records: u64) {
        self.refresh_live(mo, live_records);
        self.registry.gauge_set(
            "rum_tracker_read_bytes",
            &[],
            totals.total_read_bytes() as f64,
        );
        self.registry.gauge_set(
            "rum_tracker_write_bytes",
            &[],
            totals.total_write_bytes() as f64,
        );
        self.registry.gauge_set(
            "rum_tracker_logical_read_bytes",
            &[],
            totals.logical_read_bytes as f64,
        );
        self.registry.gauge_set(
            "rum_tracker_logical_write_bytes",
            &[],
            totals.logical_write_bytes as f64,
        );
        let ok = self.ledger.snapshot().conserves(totals);
        self.registry
            .gauge_set("rum_conservation_ok", &[], if ok { 1.0 } else { 0.0 });
    }
}

fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counters_gauges_histograms_roundtrip() {
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("k", "a")], 2);
        r.counter_add("c", &[("k", "a")], 3);
        r.counter_add("c", &[("k", "b")], 7);
        r.gauge_set("g", &[], 1.5);
        r.gauge_set("g", &[], 2.5); // last write wins
        r.observe("h", &[], 100);
        r.observe("h", &[], 300);
        assert_eq!(r.counter("c", &[("k", "a")]), 5);
        assert_eq!(r.counter("c", &[("k", "b")]), 7);
        assert_eq!(r.counter("c", &[("k", "missing")]), 0);
        assert_eq!(r.gauge("g", &[]), Some(2.5));
        let snap = r.snapshot();
        assert_eq!(snap.histogram("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn label_order_does_not_change_identity() {
        let r = MetricsRegistry::new();
        r.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter("c", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn snapshot_add_is_commutative_and_identity_on_default() {
        let a = {
            let r = MetricsRegistry::new();
            r.counter_add("c", &[], 4);
            r.observe("h", &[], 50);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.counter_add("c", &[], 6);
            r.gauge_set("g", &[], 3.0);
            r.snapshot()
        };
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&MetricsSnapshot::default()), a);
        assert_eq!(a.add(&b).counter("c", &[]), 10);
    }

    #[test]
    fn ledger_moves_are_zero_sum_and_conserve() {
        let ledger = DebtLedger::new();
        let read_delta = CostSnapshot {
            base_read_bytes: 10_000,
            logical_read_bytes: 1_000,
            ..Default::default()
        };
        ledger.begin_class(OpClass::Read);
        ledger.charge(OpClass::Read, &read_delta);
        // A view rebuild fires during the read span: its bytes move to
        // the write class, which made the rebuild necessary.
        ledger.on_event(
            EventKind::LsmViewBuild,
            &[("entries", 10), ("bytes", 4_000), ("read_bytes", 2_000)],
        );
        let write_delta = CostSnapshot {
            base_write_bytes: 8_000,
            logical_write_bytes: 500,
            ..Default::default()
        };
        ledger.charge(OpClass::Write, &write_delta);

        let snap = ledger.snapshot();
        let mut totals = read_delta.add(&write_delta);
        assert!(snap.conserves(&totals));
        assert_eq!(snap.reattributed_write_bytes, 6_000);
        assert_eq!(snap.class(OpClass::Read).attributed_write_bytes(), -6_000);
        assert_eq!(
            snap.class(OpClass::Write).attributed_write_bytes(),
            8_000 + 6_000
        );
        // Conservation is a real check: a byte the ledger never saw breaks it.
        totals.base_read_bytes += 1;
        assert!(!snap.conserves(&totals));
    }

    #[test]
    fn deferred_write_debt_accrues_and_settles() {
        let ledger = DebtLedger::new();
        ledger.begin_class(OpClass::Write);
        let d = CostSnapshot {
            logical_write_bytes: 4_096,
            ..Default::default()
        };
        ledger.charge(OpClass::Write, &d);
        assert_eq!(ledger.snapshot().debt_outstanding_bytes(), 4_096);
        ledger.on_event(EventKind::LsmFlush, &[("level", 0), ("bytes", 3_000)]);
        let snap = ledger.snapshot();
        assert_eq!(snap.debt_settled_bytes, 3_000);
        assert_eq!(snap.debt_outstanding_bytes(), 1_096);
        // Flush during its own write span moves nothing between classes.
        assert_eq!(snap.reattributed_write_bytes, 0);
    }

    #[test]
    fn load_phase_background_work_stays_with_load() {
        let ledger = DebtLedger::new();
        ledger.begin_class(OpClass::Load);
        ledger.on_event(EventKind::LsmFlush, &[("bytes", 9_000)]);
        let snap = ledger.snapshot();
        assert_eq!(snap.reattributed_write_bytes, 0);
        assert_eq!(snap.class(OpClass::Load).moved_write_bytes, 0);
    }

    #[test]
    fn metrics_sink_mirrors_events_and_forwards() {
        let plane = MetricsPlane::new();
        let mem = crate::trace::MemorySink::shared();
        let sink = plane.sink_with_forward(mem.clone());
        sink.emit(EventKind::LsmFlush, &[("level", 0), ("bytes", 4_096)]);
        sink.emit(EventKind::RetryAttempt, &[("page", 3), ("attempt", 1)]);
        assert_eq!(
            plane
                .registry()
                .counter("rum_events_total", &[("kind", "lsm_flush")]),
            1
        );
        assert_eq!(
            plane
                .registry()
                .counter("rum_events_total", &[("kind", "retry_attempt")]),
            1
        );
        assert_eq!(
            plane.registry().counter(
                "rum_event_bytes_total",
                &[("component", "lsm"), ("kind", "lsm_flush")]
            ),
            4_096
        );
        assert_eq!(mem.len(), 2, "events still reach the forwarded sink");
    }

    #[test]
    fn plane_publishes_gauges_and_conservation() {
        let plane = MetricsPlane::new();
        plane.ledger().begin_class(OpClass::Read);
        let d = CostSnapshot {
            base_read_bytes: 2_048,
            logical_read_bytes: 1_024,
            ..Default::default()
        };
        plane.ledger().charge(OpClass::Read, &d);
        plane.observe_op(true, 500);
        plane.publish_final(&d, 1.25, 42);
        let r = plane.registry();
        assert_eq!(
            r.gauge("rum_class_read_amplification", &[("class", "read")]),
            Some(2.0)
        );
        assert_eq!(r.gauge("rum_conservation_ok", &[]), Some(1.0));
        assert_eq!(r.gauge("rum_space_amplification", &[]), Some(1.25));
        assert_eq!(r.gauge("rum_live_records", &[]), Some(42.0));
        assert!(r
            .gauge("rum_op_latency_p50_ns", &[("class", "read")])
            .is_some());
    }
}
