//! Drives an [`AccessMethod`] through a [`Workload`] and measures the RUM
//! overheads, separating read-path and write-path traffic so RO and UO are
//! attributed to the operations that incur them.
//!
//! Suites of methods are measured with [`run_suite`] (serial) or
//! [`run_suite_parallel`] (one worker thread per core, one method at a time
//! per worker). Both return reports sorted by method name, so their output
//! is identical apart from wall-clock timings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use crate::access::AccessMethod;
use crate::autotune::{AutoTuneSummary, AutoTuner, Morphable, OpCounts};
use crate::error::{panic_payload_message, Result, RumError};
use crate::metrics::{MetricsPlane, OpClass};
use crate::shard::ShardedMethod;
use crate::trace::TraceCollector;
use crate::tracker::CostSnapshot;
use crate::workload::{Op, OpStream, Workload, WorkloadSpec};

/// The measured RUM profile of one method over one workload.
#[derive(Clone, Debug)]
pub struct RumReport {
    pub method: String,
    /// Live records at the end of the run.
    pub n_final: usize,
    pub read_ops: u64,
    pub write_ops: u64,
    /// Traffic accumulated during read operations (get / range).
    pub read_costs: CostSnapshot,
    /// Traffic accumulated during write operations (insert / update /
    /// delete), including any reads those operations perform internally.
    pub write_costs: CostSnapshot,
    /// Traffic of the initial bulk load (excluded from RO / UO).
    pub load_costs: CostSnapshot,
    /// Read amplification over the read operations.
    pub ro: f64,
    /// Write amplification over the write operations.
    pub uo: f64,
    /// Space amplification of the final structure.
    pub mo: f64,
    /// Mean page accesses (reads + writes) per read operation.
    pub pages_per_read_op: f64,
    /// Mean page accesses per write operation.
    pub pages_per_write_op: f64,
    /// Wall-clock time of the operation phase, nanoseconds.
    pub wall_ns: u128,
    /// Wall-clock time of the initial bulk load, nanoseconds.
    pub load_wall_ns: u128,
    /// Simulated device time of the operation phase, nanoseconds.
    pub sim_ns: u64,
    /// Measured operation throughput: `(read_ops + write_ops) / wall_ns`,
    /// in operations per second. Infinite when the op phase was too fast
    /// for the clock (`wall_ns == 0`); rendered finite-clamped like the
    /// amplification columns.
    pub ops_per_sec: f64,
    /// Median op latency in nanoseconds, from the traced latency
    /// histogram ([`run_workload_traced`] / [`run_stream_traced`]).
    /// `0` when tracing is off — untraced runners never time single ops.
    pub p50_ns: u64,
    /// 99th-percentile op latency in nanoseconds; `0` when tracing is off.
    pub p99_ns: u64,
}

impl RumReport {
    /// One line suitable for a fixed-width table.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>10.2} {:>10.2} {:>9} {:>9} {:>11.0}",
            self.method,
            self.n_final,
            finite(self.ro),
            finite(self.uo),
            finite(self.mo),
            self.pages_per_read_op,
            self.pages_per_write_op,
            self.p50_ns,
            self.p99_ns,
            finite(self.ops_per_sec),
        )
    }

    /// Header matching [`table_row`](Self::table_row), column for column
    /// (`tests::header_and_row_field_counts_agree` pins the agreement).
    pub fn table_header() -> String {
        format!(
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>11}",
            "method", "N", "RO", "UO", "MO", "pg/read", "pg/write", "p50ns", "p99ns", "ops/s"
        )
    }

    /// Header matching [`csv_row`](Self::csv_row), field for field.
    pub fn csv_header() -> &'static str {
        "method,n_final,ro,uo,mo,pages_per_read_op,pages_per_write_op,sim_ns,p50_ns,p99_ns,\
         ops_per_sec"
    }

    /// CSV row (method, n, ro, uo, mo, pages/read, pages/write, sim_ns,
    /// p50_ns, p99_ns, ops_per_sec).
    ///
    /// Amplifications are clamped to finite values like
    /// [`table_row`](Self::table_row): a method that serves a workload with
    /// zero logical bytes in one class (e.g. a read-only run measured for
    /// UO) reports infinite amplification, and `inf`/`NaN` literals break
    /// most CSV consumers. The latency quantiles are `u64`, hence finite by
    /// construction (and `0` when tracing is off). `ops_per_sec` is
    /// wall-clock-derived, so it is the one column that varies between
    /// otherwise identical runs — it stays last so consumers can strip it.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            self.method,
            self.n_final,
            finite(self.ro),
            finite(self.uo),
            finite(self.mo),
            finite(self.pages_per_read_op),
            finite(self.pages_per_write_op),
            self.sim_ns,
            self.p50_ns,
            self.p99_ns,
            finite(self.ops_per_sec),
        )
    }
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

/// Per-class cost totals of an operation phase, accumulated by
/// [`OpPhase`]: traffic and op counts split by read vs write class.
struct PhaseTotals {
    read_costs: CostSnapshot,
    write_costs: CostSnapshot,
    read_ops: u64,
    write_ops: u64,
    wall_ns: u128,
}

/// Class-transition cost attribution shared by every runner entry point.
///
/// Costs are attributed per operation *class*, not per operation: the
/// tracker is snapshotted (9 atomic loads) only when the stream switches
/// between the read class (get/range) and the write class
/// (insert/update/delete), plus once at the end. Between switches every
/// byte the tracker accrues comes from operations of the running class,
/// so the batched sums equal the per-op sums exactly while the hot loop
/// sheds the per-op snapshot.
struct OpPhase {
    totals: PhaseTotals,
    mark: CostSnapshot,
    batch_is_read: Option<bool>,
    started: Instant,
}

impl OpPhase {
    fn start(tracker: &crate::tracker::CostTracker) -> Self {
        OpPhase {
            totals: PhaseTotals {
                read_costs: CostSnapshot::default(),
                write_costs: CostSnapshot::default(),
                read_ops: 0,
                write_ops: 0,
                wall_ns: 0,
            },
            mark: tracker.snapshot(),
            batch_is_read: None,
            started: Instant::now(),
        }
    }

    /// Fold the traffic since the previous settle point into the running
    /// class, then switch the running class to `next`. Returns the class
    /// the delta was folded into (`None` right after the phase started)
    /// and the delta itself, so metered runners can mirror the exact same
    /// attribution into a [`DebtLedger`](crate::metrics::DebtLedger).
    fn settle(
        &mut self,
        tracker: &crate::tracker::CostTracker,
        next: Option<bool>,
    ) -> (Option<bool>, CostSnapshot) {
        let now = tracker.snapshot();
        let d = now.delta(&self.mark);
        self.mark = now;
        let prev = self.batch_is_read;
        match prev {
            Some(true) => self.totals.read_costs = self.totals.read_costs.add(&d),
            Some(false) => self.totals.write_costs = self.totals.write_costs.add(&d),
            None => {} // nothing ran since the phase started
        }
        self.batch_is_read = next;
        (prev, d)
    }

    /// Note `count` ops of the running class having executed. Only counts;
    /// traffic is folded at the next [`settle`](Self::settle).
    fn count(&mut self, is_read: bool, count: u64) {
        if is_read {
            self.totals.read_ops += count;
        } else {
            self.totals.write_ops += count;
        }
    }

    fn finish(mut self, tracker: &crate::tracker::CostTracker) -> PhaseTotals {
        self.settle(tracker, None);
        self.totals.wall_ns = self.started.elapsed().as_nanos();
        self.totals
    }
}

/// Execute one op against `method` through the instrumented wrappers,
/// discarding the result (runners measure costs, not answers).
#[inline]
fn execute_op(method: &mut dyn AccessMethod, op: Op) -> Result<()> {
    match op {
        Op::Get(k) => {
            method.get(k)?;
        }
        Op::Range(lo, hi) => {
            method.range(lo, hi)?;
        }
        Op::Insert(k, v) => {
            method.insert(k, v)?;
        }
        Op::Update(k, v) => {
            method.update(k, v)?;
        }
        Op::Delete(k) => {
            method.delete(k)?;
        }
    }
    Ok(())
}

/// Assemble the final report from the load and op-phase measurements.
fn assemble_report(
    method: &dyn AccessMethod,
    load_costs: CostSnapshot,
    load_wall_ns: u128,
    totals: PhaseTotals,
) -> RumReport {
    let PhaseTotals {
        read_costs,
        write_costs,
        read_ops,
        write_ops,
        wall_ns,
    } = totals;
    let profile = method.space_profile();
    let sim_ns = read_costs.sim_time_ns + write_costs.sim_time_ns;
    let total_ops = read_ops + write_ops;
    let ops_per_sec = if wall_ns == 0 {
        if total_ops == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        total_ops as f64 * 1e9 / wall_ns as f64
    };

    RumReport {
        method: method.name(),
        n_final: method.len(),
        read_ops,
        write_ops,
        ro: read_costs.read_amplification(),
        uo: write_costs.write_amplification(),
        mo: profile.space_amplification(),
        pages_per_read_op: per_op(read_costs.page_accesses(), read_ops),
        pages_per_write_op: per_op(write_costs.page_accesses(), write_ops),
        read_costs,
        write_costs,
        load_costs,
        wall_ns,
        load_wall_ns,
        sim_ns,
        ops_per_sec,
        // Latency quantiles come from the traced entry points; untraced
        // runners never time single ops, so the columns stay 0.
        p50_ns: 0,
        p99_ns: 0,
    }
}

/// Bulk-load `initial` with the tracker freshly reset, returning the load
/// costs and wall time.
fn load_phase(
    method: &mut dyn AccessMethod,
    initial: &[crate::types::Record],
) -> Result<(CostSnapshot, u128)> {
    method.tracker().reset();
    let load_started = Instant::now();
    method.bulk_load(initial)?;
    let load_wall_ns = load_started.elapsed().as_nanos();
    let load_costs = method.tracker().snapshot();
    Ok((load_costs, load_wall_ns))
}

/// Run `workload` against `method`: bulk-load the initial records, then play
/// the operation stream, attributing costs per operation class.
pub fn run_workload(method: &mut dyn AccessMethod, workload: &Workload) -> Result<RumReport> {
    let (load_costs, load_wall_ns) = load_phase(method, &workload.initial)?;
    let tracker = std::sync::Arc::clone(method.tracker());

    let mut phase = OpPhase::start(&tracker);
    for &op in &workload.ops {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        execute_op(method, op)?;
        phase.count(is_read, 1);
    }
    let totals = phase.finish(&tracker);
    Ok(assemble_report(method, load_costs, load_wall_ns, totals))
}

/// Run a streaming workload against `method` without ever materializing a
/// `Vec<Op>`: ops are drawn from the [`OpStream`] one at a time, so peak
/// memory is O(live-set) no matter how many operations the spec asks for.
///
/// Produces a report bit-identical (apart from wall-clock fields) to
/// [`run_workload`] on `Workload::generate(stream.spec())` — the stream
/// yields the same op sequence by construction, and cost attribution uses
/// the same class-transition batching.
pub fn run_stream(method: &mut dyn AccessMethod, mut stream: OpStream) -> Result<RumReport> {
    let initial = stream.take_initial();
    let (load_costs, load_wall_ns) = load_phase(method, &initial)?;
    drop(initial);
    let tracker = std::sync::Arc::clone(method.tracker());

    let mut phase = OpPhase::start(&tracker);
    for op in stream {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        execute_op(method, op)?;
        phase.count(is_read, 1);
    }
    let totals = phase.finish(&tracker);
    Ok(assemble_report(method, load_costs, load_wall_ns, totals))
}

/// [`run_workload`] with a [`TraceCollector`] observing the op phase:
/// each op is individually timed into the collector's per-class latency
/// histograms and the collector closes a trajectory window every
/// [`window_ops`](TraceCollector::window_ops) operations.
///
/// The collector is a pure observer — it reads the tracker but never
/// charges it — so every counted measurement in the returned report
/// (`n_final`, op counts, all three [`CostSnapshot`]s, RO/UO/MO bits) is
/// identical to an untraced [`run_workload`] run. The only additions are
/// the latency columns: `p50_ns`/`p99_ns` are filled from the merged
/// read+write histogram instead of staying 0.
///
/// `trace.begin` is called after the bulk load and `trace.finish` after
/// the last op, so the windowed deltas partition exactly the op-phase
/// traffic: their sum equals `read_costs + write_costs` byte-exactly
/// ([`TraceCollector::windowed_sum`]).
pub fn run_workload_traced(
    method: &mut dyn AccessMethod,
    workload: &Workload,
    trace: &mut TraceCollector,
) -> Result<RumReport> {
    let (load_costs, load_wall_ns) = load_phase(method, &workload.initial)?;
    let tracker = std::sync::Arc::clone(method.tracker());
    trace.begin(&tracker);

    let mut phase = OpPhase::start(&tracker);
    for &op in &workload.ops {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        let op_started = Instant::now();
        execute_op(method, op)?;
        let latency_ns = op_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        phase.count(is_read, 1);
        trace.note_op(is_read, latency_ns, &tracker, method);
    }
    let totals = phase.finish(&tracker);
    trace.finish(&tracker, method);
    let mut report = assemble_report(method, load_costs, load_wall_ns, totals);
    let overall = trace.overall_latency();
    report.p50_ns = overall.p50();
    report.p99_ns = overall.p99();
    Ok(report)
}

/// [`run_stream`] with a [`TraceCollector`] observing the op phase — the
/// streaming counterpart of [`run_workload_traced`], with the same
/// zero-observer-effect and windowed-sum guarantees.
pub fn run_stream_traced(
    method: &mut dyn AccessMethod,
    mut stream: OpStream,
    trace: &mut TraceCollector,
) -> Result<RumReport> {
    let initial = stream.take_initial();
    let (load_costs, load_wall_ns) = load_phase(method, &initial)?;
    drop(initial);
    let tracker = std::sync::Arc::clone(method.tracker());
    trace.begin(&tracker);

    let mut phase = OpPhase::start(&tracker);
    for op in stream {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        let op_started = Instant::now();
        execute_op(method, op)?;
        let latency_ns = op_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        phase.count(is_read, 1);
        trace.note_op(is_read, latency_ns, &tracker, method);
    }
    let totals = phase.finish(&tracker);
    trace.finish(&tracker, method);
    let mut report = assemble_report(method, load_costs, load_wall_ns, totals);
    let overall = trace.overall_latency();
    report.p50_ns = overall.p50();
    report.p99_ns = overall.p99();
    Ok(report)
}

/// [`run_stream_traced`] with a live [`MetricsPlane`] attached: the
/// plane's [`DebtLedger`](crate::metrics::DebtLedger) receives exactly
/// the per-class tracker deltas the report is assembled from (the same
/// settle points, the same snapshots), per-op latencies are mirrored
/// into `rum_op_latency_ns{class}` histograms, and the live gauge set is
/// republished at every trajectory-window close — so an exporter
/// scraping the plane's registry sees per-op-class amortized RO/UO/MO
/// evolve while the run is still going.
///
/// To feed the ledger's causal re-attribution, install a sink from the
/// same plane on the method first
/// (`method.set_trace_sink(plane.sink())`, or
/// [`sink_with_forward`](MetricsPlane::sink_with_forward) to also keep a
/// [`MemorySink`](crate::trace::MemorySink) trace). Without a sink the
/// ledger still conserves — it just has no background events to move.
///
/// The plane, like the collector, is a pure observer of the tracker:
/// every counted measurement in the returned report (op counts, all
/// three [`CostSnapshot`]s, RO/UO/MO bits) is identical to an untraced
/// [`run_stream`] of the same stream. At the end of the run
/// [`MetricsPlane::publish_final`] records the tracker totals and the
/// conservation verdict (`rum_conservation_ok`), which holds byte-exactly
/// because the ledger was charged every delta the tracker accrued.
pub fn run_stream_metered(
    method: &mut dyn AccessMethod,
    mut stream: OpStream,
    trace: &mut TraceCollector,
    plane: &MetricsPlane,
) -> Result<RumReport> {
    let initial = stream.take_initial();
    plane.ledger().begin_class(OpClass::Load);
    let (load_costs, load_wall_ns) = load_phase(method, &initial)?;
    drop(initial);
    plane.ledger().charge(OpClass::Load, &load_costs);
    let tracker = std::sync::Arc::clone(method.tracker());
    trace.begin(&tracker);

    let mut phase = OpPhase::start(&tracker);
    let mut windows_seen = 0usize;
    for op in stream {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            let (prev, delta) = phase.settle(&tracker, Some(is_read));
            if let Some(prev_is_read) = prev {
                plane
                    .ledger()
                    .charge(OpClass::of_read(prev_is_read), &delta);
            }
            plane.ledger().begin_class(OpClass::of_read(is_read));
        }
        let op_started = Instant::now();
        execute_op(method, op)?;
        let latency_ns = op_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        phase.count(is_read, 1);
        trace.note_op(is_read, latency_ns, &tracker, method);
        plane.observe_op(is_read, latency_ns);
        if trace.windows().len() > windows_seen {
            windows_seen = trace.windows().len();
            plane.refresh_live(
                method.space_profile().space_amplification(),
                method.len() as u64,
            );
        }
    }
    let (prev, delta) = phase.settle(&tracker, None);
    if let Some(prev_is_read) = prev {
        plane
            .ledger()
            .charge(OpClass::of_read(prev_is_read), &delta);
    }
    let totals = phase.finish(&tracker);
    trace.finish(&tracker, method);
    plane.publish_final(
        &tracker.snapshot(),
        method.space_profile().space_amplification(),
        method.len() as u64,
    );
    let mut report = assemble_report(method, load_costs, load_wall_ns, totals);
    let overall = trace.overall_latency();
    report.p50_ns = overall.p50();
    report.p99_ns = overall.p99();
    Ok(report)
}

/// [`run_stream_traced`] with the [`AutoTuner`] closing the loop: every
/// time the collector closes a trajectory window, the tuner observes it
/// (plus the window's op-kind counts) and may order a migration, which is
/// executed in place via [`Morphable::morph_to`] before the next op runs.
///
/// Migration pricing in the paper's currency:
///
/// * **UO** — the op phase settles into the *write* class right before the
///   migration runs, so every byte the migration reads and writes lands in
///   `write_costs` and inflates UO exactly like compaction traffic.
/// * **MO** — the transient double-residency (source and destination
///   coexisting) is returned in each [`MigrationReceipt`]'s
///   `peak_extra_bytes` and surfaced through the [`AutoTuneSummary`].
///
/// Answers are unaffected: migrations preserve logical contents, so a
/// tuner-on run returns bit-identical results to a tuner-off run of the
/// same stream (the `drift_sweep` bench replays this differentially).
///
/// [`MigrationReceipt`]: crate::autotune::MigrationReceipt
pub fn run_stream_autotuned(
    method: &mut dyn Morphable,
    mut stream: OpStream,
    tuner: &mut AutoTuner,
    trace: &mut TraceCollector,
) -> Result<(RumReport, AutoTuneSummary)> {
    let initial = stream.take_initial();
    let (load_costs, load_wall_ns) = load_phase(&mut *method, &initial)?;
    drop(initial);
    let tracker = std::sync::Arc::clone(method.tracker());
    trace.begin(&tracker);

    let mut phase = OpPhase::start(&tracker);
    let mut counts = OpCounts::default();
    let mut closed = 0usize;
    for op in stream {
        let is_read = op.is_read();
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        let op_started = Instant::now();
        execute_op(&mut *method, op)?;
        let latency_ns = op_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        phase.count(is_read, 1);
        counts.observe(&op);
        trace.note_op(is_read, latency_ns, &tracker, &*method);

        if trace.windows().len() > closed {
            closed = trace.windows().len();
            let window = trace.windows()[closed - 1].clone();
            let window_counts = std::mem::take(&mut counts);
            if let Some(plan) = tuner.plan(&window, &window_counts, method) {
                // Settle into the write class first, so the migration's
                // I/O is attributed to UO (not smeared into whatever class
                // happened to be running).
                phase.settle(&tracker, Some(false));
                tuner.begin_migration(&plan);
                let receipt = method.morph_to(plan.family, &plan.mix)?;
                tuner.complete(plan, receipt);
            }
        }
    }
    let totals = phase.finish(&tracker);
    trace.finish(&tracker, &*method);
    let mut report = assemble_report(&*method, load_costs, load_wall_ns, totals);
    let overall = trace.overall_latency();
    report.p50_ns = overall.p50();
    report.p99_ns = overall.p99();
    Ok((report, tuner.summary().clone()))
}

/// Ops pulled from the stream per [`ShardedMethod::submit_batch`] call in
/// [`run_stream_sharded`]: large enough to amortize the per-batch queue
/// handoff to the persistent shard workers, small enough that per-shard
/// sub-batches stay cache-resident.
pub const DEFAULT_STREAM_BATCH: usize = 8192;

/// Run a streaming workload against a [`ShardedMethod`], executing
/// class-contiguous batches of up to `batch` ops concurrently on the
/// wrapper's persistent worker pool, with **double-buffered batch
/// assembly**: while the workers execute batch `i`, the runner is already
/// drawing batch `i + 1` from the stream into the other buffer, so op
/// generation overlaps shard execution and at most one batch is in flight.
///
/// Batches never mix read-class and write-class ops (a lookahead op that
/// switches class is held back for the next batch), and the in-flight
/// batch is always collected — its cost deltas folded into the wrapper
/// tracker — *before* the phase settles at a class transition, so the
/// tracker's delta per settle span is attributable to exactly one class:
/// the same attribution [`run_workload`] performs per op. All counted
/// traffic is deterministic, so RO / UO / MO and every cost field are
/// **bit-identical** to driving the same `ShardedMethod` serially with
/// [`run_workload`]; only the wall-clock fields differ.
pub fn run_stream_sharded(
    method: &mut ShardedMethod,
    stream: OpStream,
    batch: usize,
) -> Result<RumReport> {
    run_stream_sharded_impl(method, stream, batch, None)
}

/// [`run_stream_sharded`] with a [`TraceCollector`] observing the op
/// phase: batches run timed, each shard worker records a per-op
/// [`LatencyHistogram`](crate::trace::LatencyHistogram), and the merged
/// per-batch histograms (associative + commutative pointwise sums, so the
/// merge order across workers cannot matter) land in the collector via
/// [`TraceCollector::note_batch`]. `p50_ns` / `p99_ns` in the returned
/// report are filled from the merged distribution instead of staying 0.
///
/// Granularity caveats versus the per-op traced runners: trajectory
/// windows close on batch boundaries (so a window may run up to
/// `batch - 1` ops long), and a range op contributes one latency
/// observation per shard it fanned out to rather than one end-to-end
/// fan-out latency. Counted measurements are still bit-identical to the
/// untraced [`run_stream_sharded`] — timing is a pure observer.
pub fn run_stream_sharded_traced(
    method: &mut ShardedMethod,
    stream: OpStream,
    batch: usize,
    trace: &mut TraceCollector,
) -> Result<RumReport> {
    let mut report = run_stream_sharded_impl(method, stream, batch, Some(trace))?;
    let overall = trace.overall_latency();
    report.p50_ns = overall.p50();
    report.p99_ns = overall.p99();
    Ok(report)
}

/// Shared body of [`run_stream_sharded`] / [`run_stream_sharded_traced`]:
/// the double-buffered submit/assemble/collect loop, with per-batch timing
/// switched on only when a collector is observing.
fn run_stream_sharded_impl(
    method: &mut ShardedMethod,
    mut stream: OpStream,
    batch: usize,
    mut trace: Option<&mut TraceCollector>,
) -> Result<RumReport> {
    let batch = batch.max(1);
    let initial = stream.take_initial();
    let (load_costs, load_wall_ns) = load_phase(method, &initial)?;
    drop(initial);
    let tracker = std::sync::Arc::clone(method.tracker());
    let timed = trace.is_some();
    if let Some(t) = trace.as_deref_mut() {
        t.begin(&tracker);
    }

    let mut phase = OpPhase::start(&tracker);
    let mut pending: Option<Op> = None;
    // Two assembly buffers: the workers read from one (it backs the
    // in-flight batch's per-shard partitions) while the stream fills the
    // other.
    let mut buffers = [Vec::with_capacity(batch), Vec::with_capacity(batch)];
    let mut which = 0usize;
    // The dispatched-but-uncollected batch: handle, class, op count.
    let mut in_flight: Option<(crate::shard::PendingBatch, bool, u64)> = None;
    loop {
        // Assemble the next class-contiguous batch; these stream pulls
        // overlap the workers executing the in-flight batch.
        let buf = &mut buffers[which];
        buf.clear();
        let mut next_class: Option<bool> = None;
        if let Some(first) = pending.take().or_else(|| stream.next()) {
            let is_read = first.is_read();
            next_class = Some(is_read);
            buf.push(first);
            while buf.len() < batch {
                match stream.next() {
                    Some(op) if op.is_read() == is_read => buf.push(op),
                    Some(op) => {
                        pending = Some(op);
                        break;
                    }
                    None => break,
                }
            }
        }

        // Collect the in-flight batch before any settle: its cost deltas
        // must be in the tracker while its class is still the running one.
        if let Some((handle, class, count)) = in_flight.take() {
            let latency = method.finish_batch(handle)?;
            phase.count(class, count);
            if let Some(t) = trace.as_deref_mut() {
                let hist = latency.unwrap_or_default();
                t.note_batch(class, count, &hist, &tracker, method);
            }
        }

        let Some(is_read) = next_class else { break };
        if phase.batch_is_read != Some(is_read) {
            phase.settle(&tracker, Some(is_read));
        }
        let count = buffers[which].len() as u64;
        let handle = method.submit_batch(&buffers[which], timed)?;
        in_flight = Some((handle, is_read, count));
        which ^= 1;
    }
    let totals = phase.finish(&tracker);
    if let Some(t) = trace {
        t.finish(&tracker, method);
    }
    Ok(assemble_report(method, load_costs, load_wall_ns, totals))
}

/// Run one suite member's measurement, converting a panic or an error into
/// a labelled [`RumError::Corrupt`] so a single broken method cannot take
/// down a whole suite run (or, worse, the process).
fn run_guarded<F>(name: &str, f: F) -> Result<RumReport>
where
    F: FnOnce() -> Result<RumReport>,
{
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(RumError::Corrupt(format!("method '{name}' failed: {e}"))),
        Err(payload) => Err(RumError::Corrupt(format!(
            "method '{name}' panicked during measurement ({})",
            panic_payload_message(&payload)
        ))),
    }
}

/// Keep the successful reports (sorted by name); failed or panicking
/// methods are reported on stderr and dropped from the suite's output.
fn settle_suite(results: Vec<Result<RumReport>>) -> Vec<RumReport> {
    let mut reports = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(report) => reports.push(report),
            Err(e) => eprintln!("[suite] skipping method: {e}"),
        }
    }
    sort_reports(&mut reports);
    reports
}

/// Run every method in `methods` over the same workload, serially, and
/// return the reports **sorted by method name**. [`run_suite_parallel`]
/// produces identical output (apart from wall-clock fields), so the two are
/// interchangeable wherever determinism matters.
///
/// A method that fails or panics mid-measurement is reported on stderr and
/// omitted from the returned reports; the rest of the suite still runs.
pub fn run_suite(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
) -> Result<Vec<RumReport>> {
    let results = methods
        .iter_mut()
        .map(|method| {
            let name = method.name();
            run_guarded(&name, || run_workload(method.as_mut(), workload))
        })
        .collect();
    Ok(settle_suite(results))
}

/// [`run_suite`] fanned across one worker thread per available core.
///
/// Each worker owns one method at a time (methods are `Send` and carry
/// their own private [`CostTracker`](crate::tracker::CostTracker), so no
/// cost traffic crosses methods) and the merged reports are sorted by
/// method name, making the output deterministic and byte-identical to the
/// serial run apart from wall-clock timings.
pub fn run_suite_parallel(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
) -> Result<Vec<RumReport>> {
    run_suite_with_threads(methods, workload, default_threads())
}

/// [`run_suite_parallel`] with an explicit worker count. `threads <= 1`
/// degenerates to the serial path.
pub fn run_suite_with_threads(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
    threads: usize,
) -> Result<Vec<RumReport>> {
    let results = parallel_map(methods.iter_mut().collect(), threads, |method| {
        let name = method.name();
        run_guarded(&name, || run_workload(method.as_mut(), workload))
    });
    Ok(settle_suite(results))
}

/// [`run_suite_with_threads`] for streaming workloads: every worker
/// regenerates its own [`OpStream`] from `spec` (generation is seeded and
/// cheap relative to execution), so no materialized `Vec<Op>` is shared —
/// peak memory stays O(live-set) per worker. Reports are sorted by method
/// name and match [`run_suite`] on `Workload::generate(spec)` bit-for-bit
/// apart from wall-clock fields.
pub fn run_suite_stream(
    methods: &mut [Box<dyn AccessMethod>],
    spec: &WorkloadSpec,
    threads: usize,
) -> Result<Vec<RumReport>> {
    let results = parallel_map(methods.iter_mut().collect(), threads, |method| {
        let name = method.name();
        run_guarded(&name, || run_stream(method.as_mut(), OpStream::new(spec)))
    });
    Ok(settle_suite(results))
}

/// Number of workers [`run_suite_parallel`] uses: one per available core,
/// unless the `RUM_THREADS` environment variable overrides it.
///
/// `RUM_THREADS` must parse as a positive integer; unset, empty, zero, or
/// unparsable values fall back to the core count. CI and single-core
/// containers use it to pin parallelism explicitly (e.g. `RUM_THREADS=1`
/// for perfectly serial runs, or `RUM_THREADS=4` to exercise the threaded
/// paths on a 1-core host).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stable name order; insertion order breaks ties, so duplicate names keep
/// a deterministic relative order too.
fn sort_reports(reports: &mut [RumReport]) {
    reports.sort_by(|a, b| a.method.cmp(&b.method));
}

/// Apply `f` to every item on a pool of `threads` scoped workers and return
/// the results **in input order**. Items are pulled from a shared queue, so
/// uneven per-item costs balance across workers; `threads <= 1` (or a
/// single item) runs inline without spawning. A panicking `f` propagates to
/// the caller when the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // Short-circuit: one worker (single-core hosts, RUM_THREADS=1) or at
    // most one item means threading can't help — run inline and skip the
    // queue, the slot mutexes, and the scoped spawns entirely.
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(n);

    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            // Named workers so panics and profiler output say which
            // worker fired instead of `<unnamed>`.
            std::thread::Builder::new()
                .name(format!("rum-worker-{w}"))
                .spawn_scoped(scope, || loop {
                    let next = queue.lock().unwrap().pop();
                    let Some((index, item)) = next else { break };
                    *slots[index].lock().unwrap() = Some(f(item));
                })
                .expect("spawn rum-worker thread");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every queue slot is filled before the scope joins")
        })
        .collect()
}

fn per_op(total: u64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        total as f64 / ops as f64
    }
}

/// Measure the average cost of a single operation kind, for Table 1 style
/// experiments: runs `ops` against an already-loaded method and returns the
/// per-operation page accesses and cost delta.
pub fn measure_ops(method: &mut dyn AccessMethod, ops: &[Op]) -> Result<(f64, CostSnapshot)> {
    let tracker = std::sync::Arc::clone(method.tracker());
    let before = tracker.snapshot();
    for op in ops {
        match *op {
            Op::Get(k) => {
                method.get(k)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(k, v) => {
                method.insert(k, v)?;
            }
            Op::Update(k, v) => {
                method.update(k, v)?;
            }
            Op::Delete(k) => {
                method.delete(k)?;
            }
        }
    }
    let d = tracker.since(&before);
    Ok((per_op(d.page_accesses(), ops.len() as u64), d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SpaceProfile;
    use crate::tracker::{CostTracker, DataClass};
    use crate::types::{Key, Record, Value, RECORD_SIZE};
    use crate::workload::{OpMix, Workload, WorkloadSpec};
    use std::sync::Arc;

    /// Minimal sorted-vec method that charges 2 bytes of physical traffic
    /// per byte of logical traffic, so amplification is exactly 2.
    struct Amp2 {
        name: String,
        data: std::collections::BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Amp2 {
        fn new() -> Self {
            Amp2::named("amp2")
        }

        fn named(name: &str) -> Self {
            Amp2 {
                name: name.to_string(),
                data: Default::default(),
                tracker: CostTracker::new(),
            }
        }
    }

    impl AccessMethod for Amp2 {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * 3 * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> crate::Result<Option<Value>> {
            let r = self.data.get(&key).copied();
            if r.is_some() {
                self.tracker.read(DataClass::Base, 2 * RECORD_SIZE as u64);
            }
            Ok(r)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> crate::Result<Vec<Record>> {
            let out: Vec<Record> = self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            self.tracker
                .read(DataClass::Base, (2 * out.len() * RECORD_SIZE) as u64);
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> crate::Result<()> {
            self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> crate::Result<bool> {
            if self.data.contains_key(&key) {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                self.data.insert(key, value);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> crate::Result<bool> {
            if self.data.remove(&key).is_some() {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> crate::Result<()> {
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            Ok(())
        }
    }

    #[test]
    fn amplifications_attributed_per_class() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 500,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 9,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!((report.ro - 2.0).abs() < 1e-9, "ro = {}", report.ro);
        assert!((report.uo - 2.0).abs() < 1e-9, "uo = {}", report.uo);
        assert!((report.mo - 3.0).abs() < 1e-9, "mo = {}", report.mo);
        assert_eq!(report.read_ops + report.write_ops, w.ops.len() as u64);
    }

    #[test]
    fn load_costs_are_excluded_from_amplification() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 1000,
            operations: 10,
            mix: OpMix::READ_ONLY,
            seed: 3,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        // Bulk load wrote 1000 records; none of that traffic shows in UO.
        assert!(report.load_costs.total_write_bytes() > 0);
        assert_eq!(report.write_ops, 0);
        assert_eq!(report.write_costs.total_write_bytes(), 0);
        assert!((report.ro - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_rows_render() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 100,
            seed: 1,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!(report.table_row().contains("amp2"));
        assert!(RumReport::table_header().contains("MO"));
        assert!(RumReport::table_header().contains("ops/s"));
        assert!(RumReport::table_header().contains("p50ns"));
        assert_eq!(report.csv_row().split(',').count(), 11);
    }

    #[test]
    fn header_and_row_field_counts_agree() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 100,
            seed: 1,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        // The test method's name has no spaces, so whitespace-splitting
        // counts table columns faithfully.
        assert_eq!(
            RumReport::table_header().split_whitespace().count(),
            report.table_row().split_whitespace().count(),
            "table header and row column counts diverged"
        );
        assert_eq!(
            RumReport::csv_header().split(',').count(),
            report.csv_row().split(',').count(),
            "csv header and row field counts diverged"
        );
    }

    #[test]
    fn csv_row_clamps_non_finite_values() {
        let report = RumReport {
            method: "degenerate".into(),
            n_final: 0,
            read_ops: 0,
            write_ops: 0,
            read_costs: CostSnapshot::default(),
            write_costs: CostSnapshot::default(),
            load_costs: CostSnapshot::default(),
            ro: f64::INFINITY,
            uo: f64::NAN,
            mo: f64::NEG_INFINITY,
            pages_per_read_op: f64::INFINITY,
            pages_per_write_op: 0.0,
            wall_ns: 0,
            load_wall_ns: 0,
            sim_ns: 0,
            ops_per_sec: f64::INFINITY,
            p50_ns: 0,
            p99_ns: 0,
        };
        let row = report.csv_row();
        assert_eq!(row.split(',').count(), 11);
        assert!(
            !row.contains("inf") && !row.contains("NaN"),
            "csv_row leaked a non-finite literal: {row}"
        );
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        assert_eq!(parallel_map(items.clone(), 1, |x| x * x), expected);
        assert_eq!(parallel_map(items, 8, |x| x * x), expected);
        assert_eq!(parallel_map(Vec::<usize>::new(), 4, |x: usize| x), vec![]);
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 400,
            operations: 800,
            mix: OpMix::BALANCED,
            seed: 11,
            ..Default::default()
        });
        let make_suite = || -> Vec<Box<dyn AccessMethod>> {
            vec![
                Box::new(Amp2::named("zeta")),
                Box::new(Amp2::named("alpha")),
                Box::new(Amp2::named("mid")),
            ]
        };
        let serial = run_suite(&mut make_suite(), &w).unwrap();
        let parallel = run_suite_with_threads(&mut make_suite(), &w, 3).unwrap();
        let names: Vec<&str> = serial.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"], "reports sorted by name");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.method, p.method);
            assert_eq!(s.n_final, p.n_final);
            assert_eq!((s.read_ops, s.write_ops), (p.read_ops, p.write_ops));
            assert_eq!(s.read_costs, p.read_costs);
            assert_eq!(s.write_costs, p.write_costs);
            assert_eq!(s.load_costs, p.load_costs);
            assert_eq!((s.ro, s.uo, s.mo), (p.ro, p.uo, p.mo));
        }
    }

    fn assert_same_measurements(a: &RumReport, b: &RumReport) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.n_final, b.n_final);
        assert_eq!((a.read_ops, a.write_ops), (b.read_ops, b.write_ops));
        assert_eq!(a.read_costs, b.read_costs);
        assert_eq!(a.write_costs, b.write_costs);
        assert_eq!(a.load_costs, b.load_costs);
        assert_eq!(a.ro.to_bits(), b.ro.to_bits(), "RO must be bit-identical");
        assert_eq!(a.uo.to_bits(), b.uo.to_bits(), "UO must be bit-identical");
        assert_eq!(a.mo.to_bits(), b.mo.to_bits(), "MO must be bit-identical");
    }

    #[test]
    fn run_stream_matches_run_workload() {
        let spec = WorkloadSpec {
            initial_records: 300,
            operations: 1500,
            mix: OpMix::BALANCED,
            seed: 21,
            ..Default::default()
        };
        let w = Workload::generate(&spec);
        let mut serial = Amp2::new();
        let mut streamed = Amp2::new();
        let a = run_workload(&mut serial, &w).unwrap();
        let b = run_stream(&mut streamed, crate::workload::OpStream::new(&spec)).unwrap();
        assert_same_measurements(&a, &b);
    }

    #[test]
    fn traced_run_matches_untraced_and_windows_sum_exactly() {
        let spec = WorkloadSpec {
            initial_records: 300,
            operations: 1200,
            mix: OpMix::BALANCED,
            seed: 77,
            ..Default::default()
        };
        let w = Workload::generate(&spec);
        let mut plain = Amp2::new();
        let a = run_workload(&mut plain, &w).unwrap();

        let mut traced = Amp2::new();
        let mut trace = crate::trace::TraceCollector::new(256, crate::trace::noop_sink());
        let b = run_workload_traced(&mut traced, &w, &mut trace).unwrap();
        assert_same_measurements(&a, &b);
        assert!(b.p99_ns >= b.p50_ns);
        assert_eq!(
            trace.windowed_sum(),
            b.read_costs.add(&b.write_costs),
            "window deltas must sum byte-exactly to the op-phase totals"
        );
        assert_eq!(trace.windows().len(), 1200usize.div_ceil(256));
        let total_ops: u64 = trace.windows().iter().map(|w| w.ops).sum();
        assert_eq!(total_ops, 1200);

        let mut streamed = Amp2::new();
        let mut trace2 = crate::trace::TraceCollector::new(256, crate::trace::noop_sink());
        let c = run_stream_traced(
            &mut streamed,
            crate::workload::OpStream::new(&spec),
            &mut trace2,
        )
        .unwrap();
        assert_same_measurements(&a, &c);
        assert_eq!(trace2.windowed_sum(), c.read_costs.add(&c.write_costs));
    }

    #[test]
    fn run_stream_sharded_matches_serial_sharded() {
        let spec = WorkloadSpec {
            initial_records: 400,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 33,
            ..Default::default()
        };
        let factory = |_: usize| -> Box<dyn AccessMethod> { Box::new(Amp2::new()) };
        let w = Workload::generate(&spec);
        let mut serial = crate::shard::ShardedMethod::new(4, factory);
        let a = run_workload(&mut serial, &w).unwrap();
        let mut concurrent = crate::shard::ShardedMethod::new(4, factory);
        let b = run_stream_sharded(
            &mut concurrent,
            crate::workload::OpStream::new(&spec),
            257, // deliberately odd batch size so batches straddle transitions
        )
        .unwrap();
        assert_same_measurements(&a, &b);
    }

    #[test]
    fn run_stream_sharded_pooled_matches_serial_sharded() {
        // Force the persistent pool (the container may have 1 core, which
        // would make `new()` run inline) and fewer workers than shards.
        let spec = WorkloadSpec {
            initial_records: 400,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 43,
            ..Default::default()
        };
        let factory = |_: usize| -> Box<dyn AccessMethod> { Box::new(Amp2::new()) };
        let w = Workload::generate(&spec);
        let mut serial = crate::shard::ShardedMethod::with_threads(4, 1, factory);
        let a = run_workload(&mut serial, &w).unwrap();
        for threads in [2, 4] {
            let mut pooled = crate::shard::ShardedMethod::with_threads(4, threads, factory);
            let b = run_stream_sharded(&mut pooled, crate::workload::OpStream::new(&spec), 257)
                .unwrap();
            assert!(pooled.pool_running(), "threads={threads}");
            assert_same_measurements(&a, &b);
        }
    }

    #[test]
    fn traced_sharded_run_matches_untraced_and_fills_latency_quantiles() {
        let spec = WorkloadSpec {
            initial_records: 400,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 51,
            ..Default::default()
        };
        let factory = |_: usize| -> Box<dyn AccessMethod> { Box::new(Amp2::new()) };
        let mut plain = crate::shard::ShardedMethod::with_threads(4, 2, factory);
        let a = run_stream_sharded(&mut plain, crate::workload::OpStream::new(&spec), 257).unwrap();
        assert_eq!((a.p50_ns, a.p99_ns), (0, 0), "untraced quantiles stay 0");

        for threads in [1, 2] {
            let mut traced = crate::shard::ShardedMethod::with_threads(4, threads, factory);
            let mut trace = crate::trace::TraceCollector::new(500, crate::trace::noop_sink());
            let b = run_stream_sharded_traced(
                &mut traced,
                crate::workload::OpStream::new(&spec),
                257,
                &mut trace,
            )
            .unwrap();
            assert_same_measurements(&a, &b);
            assert!(b.p50_ns > 0, "threads={threads}: p50 must be measured");
            assert!(b.p99_ns >= b.p50_ns, "threads={threads}");
            assert_eq!(
                trace.windowed_sum(),
                b.read_costs.add(&b.write_costs),
                "threads={threads}: window deltas must sum to the op-phase totals"
            );
            let total_ops: u64 = trace.windows().iter().map(|w| w.ops).sum();
            assert_eq!(total_ops, 2000, "threads={threads}");
        }
    }

    #[test]
    fn run_suite_stream_matches_run_suite() {
        let spec = WorkloadSpec {
            initial_records: 200,
            operations: 600,
            mix: OpMix::BALANCED,
            seed: 17,
            ..Default::default()
        };
        let w = Workload::generate(&spec);
        let make_suite = || -> Vec<Box<dyn AccessMethod>> {
            vec![Box::new(Amp2::named("b")), Box::new(Amp2::named("a"))]
        };
        let serial = run_suite(&mut make_suite(), &w).unwrap();
        let streamed = run_suite_stream(&mut make_suite(), &spec, 2).unwrap();
        assert_eq!(serial.len(), streamed.len());
        for (s, p) in serial.iter().zip(&streamed) {
            assert_same_measurements(s, p);
        }
    }

    #[test]
    fn ops_per_sec_is_positive_for_real_runs() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 500,
            seed: 5,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!(report.ops_per_sec > 0.0);
        // The rendered column is always finite, even if the clock was too
        // coarse to observe the run.
        let rendered: f64 = report
            .csv_row()
            .rsplit(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(rendered.is_finite());
    }

    /// A method that panics (or errors) after `fuse` write ops — a stand-in
    /// for a poisoned structure mid-suite.
    struct Fused {
        inner: Amp2,
        fuse: usize,
        writes: usize,
        panics: bool,
    }

    impl Fused {
        fn new(name: &str, fuse: usize, panics: bool) -> Self {
            Fused {
                inner: Amp2::named(name),
                fuse,
                writes: 0,
                panics,
            }
        }

        fn trip(&mut self) -> crate::Result<()> {
            self.writes += 1;
            if self.writes > self.fuse {
                if self.panics {
                    panic!("fuse blown");
                }
                return Err(crate::RumError::Corrupt("fuse blown".into()));
            }
            Ok(())
        }
    }

    impl AccessMethod for Fused {
        fn name(&self) -> String {
            self.inner.name()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            self.inner.tracker()
        }
        fn space_profile(&self) -> SpaceProfile {
            self.inner.space_profile()
        }
        fn get_impl(&mut self, key: Key) -> crate::Result<Option<Value>> {
            self.inner.get_impl(key)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> crate::Result<Vec<Record>> {
            self.inner.range_impl(lo, hi)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> crate::Result<()> {
            self.trip()?;
            self.inner.insert_impl(key, value)
        }
        fn update_impl(&mut self, key: Key, value: Value) -> crate::Result<bool> {
            self.trip()?;
            self.inner.update_impl(key, value)
        }
        fn delete_impl(&mut self, key: Key) -> crate::Result<bool> {
            self.trip()?;
            self.inner.delete_impl(key)
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> crate::Result<()> {
            self.inner.bulk_load_impl(records)
        }
    }

    #[test]
    fn suite_survives_a_panicking_member() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 400,
            mix: OpMix::BALANCED,
            seed: 13,
            ..Default::default()
        });
        let make_suite = || -> Vec<Box<dyn AccessMethod>> {
            vec![
                Box::new(Fused::new("panicker", 10, true)),
                Box::new(Amp2::named("survivor")),
                Box::new(Fused::new("errorer", 10, false)),
            ]
        };
        for threads in [1, 3] {
            let reports = run_suite_with_threads(&mut make_suite(), &w, threads).unwrap();
            let names: Vec<&str> = reports.iter().map(|r| r.method.as_str()).collect();
            assert_eq!(names, ["survivor"], "threads={threads}");
        }
        let reports = run_suite(&mut make_suite(), &w).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].method, "survivor");
    }

    #[test]
    fn sharded_worker_panic_is_an_error_not_an_abort() {
        // Two shards, threaded execution: one shard panics mid-batch. The
        // facade must return Err(Corrupt), not take the process down.
        let factory = |i: usize| -> Box<dyn AccessMethod> {
            let fuse = if i == 1 { 4 } else { usize::MAX };
            Box::new(Fused::new(&format!("shard{i}"), fuse, true))
        };
        let mut sharded = crate::shard::ShardedMethod::with_threads(2, 2, factory);
        let ops: Vec<Op> = (0..64u64).map(|k| Op::Insert(k, k)).collect();
        let err = sharded.execute_batch(&ops).unwrap_err();
        match err {
            crate::RumError::Corrupt(m) => {
                assert!(m.contains("panicked"), "unexpected message: {m}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rum_threads_env_overrides_default_threads() {
        // Process-global env: keep every probe inside this one test.
        std::env::set_var("RUM_THREADS", "7");
        assert_eq!(default_threads(), 7);
        std::env::set_var("RUM_THREADS", " 3 ");
        assert_eq!(default_threads(), 3, "whitespace is trimmed");
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for junk in ["0", "", "-2", "lots"] {
            std::env::set_var("RUM_THREADS", junk);
            assert_eq!(default_threads(), fallback, "junk value {junk:?}");
        }
        std::env::remove_var("RUM_THREADS");
        assert_eq!(default_threads(), fallback);
    }
}
