//! Drives an [`AccessMethod`] through a [`Workload`] and measures the RUM
//! overheads, separating read-path and write-path traffic so RO and UO are
//! attributed to the operations that incur them.
//!
//! Suites of methods are measured with [`run_suite`] (serial) or
//! [`run_suite_parallel`] (one worker thread per core, one method at a time
//! per worker). Both return reports sorted by method name, so their output
//! is identical apart from wall-clock timings.

use std::sync::Mutex;
use std::time::Instant;

use crate::access::AccessMethod;
use crate::error::Result;
use crate::tracker::CostSnapshot;
use crate::workload::{Op, Workload};

/// The measured RUM profile of one method over one workload.
#[derive(Clone, Debug)]
pub struct RumReport {
    pub method: String,
    /// Live records at the end of the run.
    pub n_final: usize,
    pub read_ops: u64,
    pub write_ops: u64,
    /// Traffic accumulated during read operations (get / range).
    pub read_costs: CostSnapshot,
    /// Traffic accumulated during write operations (insert / update /
    /// delete), including any reads those operations perform internally.
    pub write_costs: CostSnapshot,
    /// Traffic of the initial bulk load (excluded from RO / UO).
    pub load_costs: CostSnapshot,
    /// Read amplification over the read operations.
    pub ro: f64,
    /// Write amplification over the write operations.
    pub uo: f64,
    /// Space amplification of the final structure.
    pub mo: f64,
    /// Mean page accesses (reads + writes) per read operation.
    pub pages_per_read_op: f64,
    /// Mean page accesses per write operation.
    pub pages_per_write_op: f64,
    /// Wall-clock time of the operation phase, nanoseconds.
    pub wall_ns: u128,
    /// Wall-clock time of the initial bulk load, nanoseconds.
    pub load_wall_ns: u128,
    /// Simulated device time of the operation phase, nanoseconds.
    pub sim_ns: u64,
}

impl RumReport {
    /// One line suitable for a fixed-width table.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>10.2} {:>10.2}",
            self.method,
            self.n_final,
            finite(self.ro),
            finite(self.uo),
            finite(self.mo),
            self.pages_per_read_op,
            self.pages_per_write_op,
        )
    }

    /// Header matching [`table_row`](Self::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
            "method", "N", "RO", "UO", "MO", "pg/read", "pg/write"
        )
    }

    /// CSV row (method, ro, uo, mo, pages/read, pages/write, sim_ns).
    ///
    /// Amplifications are clamped to finite values like
    /// [`table_row`](Self::table_row): a method that serves a workload with
    /// zero logical bytes in one class (e.g. a read-only run measured for
    /// UO) reports infinite amplification, and `inf`/`NaN` literals break
    /// most CSV consumers.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{}",
            self.method,
            self.n_final,
            finite(self.ro),
            finite(self.uo),
            finite(self.mo),
            finite(self.pages_per_read_op),
            finite(self.pages_per_write_op),
            self.sim_ns
        )
    }
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

/// Run `workload` against `method`: bulk-load the initial records, then play
/// the operation stream, attributing costs per operation class.
pub fn run_workload(method: &mut dyn AccessMethod, workload: &Workload) -> Result<RumReport> {
    let tracker = std::sync::Arc::clone(method.tracker());
    tracker.reset();

    let load_started = Instant::now();
    method.bulk_load(&workload.initial)?;
    let load_wall_ns = load_started.elapsed().as_nanos();
    let load_costs = tracker.snapshot();

    let mut read_costs = CostSnapshot::default();
    let mut write_costs = CostSnapshot::default();
    let mut read_ops = 0u64;
    let mut write_ops = 0u64;

    let started = Instant::now();
    // Costs are attributed per operation *class*, not per operation: the
    // tracker is snapshotted (9 atomic loads) only when the stream switches
    // between the read class (get/range) and the write class
    // (insert/update/delete), plus once at the end. Between switches every
    // byte the tracker accrues comes from operations of the running class,
    // so the batched sums equal the per-op sums exactly while the hot loop
    // sheds the per-op snapshot.
    let mut mark = tracker.snapshot();
    let mut batch_is_read = None;
    for op in &workload.ops {
        let is_read = op.is_read();
        if batch_is_read != Some(is_read) {
            let now = tracker.snapshot();
            let d = now.delta(&mark);
            mark = now;
            match batch_is_read {
                Some(true) => read_costs = read_costs.add(&d),
                Some(false) => write_costs = write_costs.add(&d),
                None => {} // nothing ran since the load snapshot
            }
            batch_is_read = Some(is_read);
        }
        match *op {
            Op::Get(k) => {
                method.get(k)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(k, v) => {
                method.insert(k, v)?;
            }
            Op::Update(k, v) => {
                method.update(k, v)?;
            }
            Op::Delete(k) => {
                method.delete(k)?;
            }
        }
        if is_read {
            read_ops += 1;
        } else {
            write_ops += 1;
        }
    }
    let tail = tracker.snapshot().delta(&mark);
    match batch_is_read {
        Some(true) => read_costs = read_costs.add(&tail),
        Some(false) => write_costs = write_costs.add(&tail),
        None => {}
    }
    let wall_ns = started.elapsed().as_nanos();

    let profile = method.space_profile();
    let sim_ns = read_costs.sim_time_ns + write_costs.sim_time_ns;

    Ok(RumReport {
        method: method.name(),
        n_final: method.len(),
        read_ops,
        write_ops,
        ro: read_costs.read_amplification(),
        uo: write_costs.write_amplification(),
        mo: profile.space_amplification(),
        pages_per_read_op: per_op(read_costs.page_accesses(), read_ops),
        pages_per_write_op: per_op(write_costs.page_accesses(), write_ops),
        read_costs,
        write_costs,
        load_costs,
        wall_ns,
        load_wall_ns,
        sim_ns,
    })
}

/// Run every method in `methods` over the same workload, serially, and
/// return the reports **sorted by method name**. [`run_suite_parallel`]
/// produces identical output (apart from wall-clock fields), so the two are
/// interchangeable wherever determinism matters.
pub fn run_suite(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
) -> Result<Vec<RumReport>> {
    let mut reports = Vec::with_capacity(methods.len());
    for method in methods.iter_mut() {
        reports.push(run_workload(method.as_mut(), workload)?);
    }
    sort_reports(&mut reports);
    Ok(reports)
}

/// [`run_suite`] fanned across one worker thread per available core.
///
/// Each worker owns one method at a time (methods are `Send` and carry
/// their own private [`CostTracker`](crate::tracker::CostTracker), so no
/// cost traffic crosses methods) and the merged reports are sorted by
/// method name, making the output deterministic and byte-identical to the
/// serial run apart from wall-clock timings.
pub fn run_suite_parallel(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
) -> Result<Vec<RumReport>> {
    run_suite_with_threads(methods, workload, default_threads())
}

/// [`run_suite_parallel`] with an explicit worker count. `threads <= 1`
/// degenerates to the serial path.
pub fn run_suite_with_threads(
    methods: &mut [Box<dyn AccessMethod>],
    workload: &Workload,
    threads: usize,
) -> Result<Vec<RumReport>> {
    let results = parallel_map(methods.iter_mut().collect(), threads, |method| {
        run_workload(method.as_mut(), workload)
    });
    let mut reports = results.into_iter().collect::<Result<Vec<_>>>()?;
    sort_reports(&mut reports);
    Ok(reports)
}

/// Number of workers [`run_suite_parallel`] uses: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stable name order; insertion order breaks ties, so duplicate names keep
/// a deterministic relative order too.
fn sort_reports(reports: &mut [RumReport]) {
    reports.sort_by(|a, b| a.method.cmp(&b.method));
}

/// Apply `f` to every item on a pool of `threads` scoped workers and return
/// the results **in input order**. Items are pulled from a shared queue, so
/// uneven per-item costs balance across workers; `threads <= 1` (or a
/// single item) runs inline without spawning. A panicking `f` propagates to
/// the caller when the scope joins.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().unwrap().pop();
                let Some((index, item)) = next else { break };
                *slots[index].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every queue slot is filled before the scope joins")
        })
        .collect()
}

fn per_op(total: u64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        total as f64 / ops as f64
    }
}

/// Measure the average cost of a single operation kind, for Table 1 style
/// experiments: runs `ops` against an already-loaded method and returns the
/// per-operation page accesses and cost delta.
pub fn measure_ops(method: &mut dyn AccessMethod, ops: &[Op]) -> Result<(f64, CostSnapshot)> {
    let tracker = std::sync::Arc::clone(method.tracker());
    let before = tracker.snapshot();
    for op in ops {
        match *op {
            Op::Get(k) => {
                method.get(k)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(k, v) => {
                method.insert(k, v)?;
            }
            Op::Update(k, v) => {
                method.update(k, v)?;
            }
            Op::Delete(k) => {
                method.delete(k)?;
            }
        }
    }
    let d = tracker.since(&before);
    Ok((per_op(d.page_accesses(), ops.len() as u64), d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SpaceProfile;
    use crate::tracker::{CostTracker, DataClass};
    use crate::types::{Key, Record, Value, RECORD_SIZE};
    use crate::workload::{OpMix, Workload, WorkloadSpec};
    use std::sync::Arc;

    /// Minimal sorted-vec method that charges 2 bytes of physical traffic
    /// per byte of logical traffic, so amplification is exactly 2.
    struct Amp2 {
        name: String,
        data: std::collections::BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Amp2 {
        fn new() -> Self {
            Amp2::named("amp2")
        }

        fn named(name: &str) -> Self {
            Amp2 {
                name: name.to_string(),
                data: Default::default(),
                tracker: CostTracker::new(),
            }
        }
    }

    impl AccessMethod for Amp2 {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * 3 * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> crate::Result<Option<Value>> {
            let r = self.data.get(&key).copied();
            if r.is_some() {
                self.tracker.read(DataClass::Base, 2 * RECORD_SIZE as u64);
            }
            Ok(r)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> crate::Result<Vec<Record>> {
            let out: Vec<Record> = self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            self.tracker
                .read(DataClass::Base, (2 * out.len() * RECORD_SIZE) as u64);
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> crate::Result<()> {
            self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> crate::Result<bool> {
            if self.data.contains_key(&key) {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                self.data.insert(key, value);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> crate::Result<bool> {
            if self.data.remove(&key).is_some() {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> crate::Result<()> {
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            Ok(())
        }
    }

    #[test]
    fn amplifications_attributed_per_class() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 500,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 9,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!((report.ro - 2.0).abs() < 1e-9, "ro = {}", report.ro);
        assert!((report.uo - 2.0).abs() < 1e-9, "uo = {}", report.uo);
        assert!((report.mo - 3.0).abs() < 1e-9, "mo = {}", report.mo);
        assert_eq!(report.read_ops + report.write_ops, w.ops.len() as u64);
    }

    #[test]
    fn load_costs_are_excluded_from_amplification() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 1000,
            operations: 10,
            mix: OpMix::READ_ONLY,
            seed: 3,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        // Bulk load wrote 1000 records; none of that traffic shows in UO.
        assert!(report.load_costs.total_write_bytes() > 0);
        assert_eq!(report.write_ops, 0);
        assert_eq!(report.write_costs.total_write_bytes(), 0);
        assert!((report.ro - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_rows_render() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 100,
            seed: 1,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!(report.table_row().contains("amp2"));
        assert!(RumReport::table_header().contains("MO"));
        assert_eq!(report.csv_row().split(',').count(), 8);
    }

    #[test]
    fn csv_row_clamps_non_finite_values() {
        let report = RumReport {
            method: "degenerate".into(),
            n_final: 0,
            read_ops: 0,
            write_ops: 0,
            read_costs: CostSnapshot::default(),
            write_costs: CostSnapshot::default(),
            load_costs: CostSnapshot::default(),
            ro: f64::INFINITY,
            uo: f64::NAN,
            mo: f64::NEG_INFINITY,
            pages_per_read_op: f64::INFINITY,
            pages_per_write_op: 0.0,
            wall_ns: 0,
            load_wall_ns: 0,
            sim_ns: 0,
        };
        let row = report.csv_row();
        assert_eq!(row.split(',').count(), 8);
        assert!(
            !row.contains("inf") && !row.contains("NaN"),
            "csv_row leaked a non-finite literal: {row}"
        );
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        assert_eq!(parallel_map(items.clone(), 1, |x| x * x), expected);
        assert_eq!(parallel_map(items, 8, |x| x * x), expected);
        assert_eq!(parallel_map(Vec::<usize>::new(), 4, |x: usize| x), vec![]);
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 400,
            operations: 800,
            mix: OpMix::BALANCED,
            seed: 11,
            ..Default::default()
        });
        let make_suite = || -> Vec<Box<dyn AccessMethod>> {
            vec![
                Box::new(Amp2::named("zeta")),
                Box::new(Amp2::named("alpha")),
                Box::new(Amp2::named("mid")),
            ]
        };
        let serial = run_suite(&mut make_suite(), &w).unwrap();
        let parallel = run_suite_with_threads(&mut make_suite(), &w, 3).unwrap();
        let names: Vec<&str> = serial.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"], "reports sorted by name");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.method, p.method);
            assert_eq!(s.n_final, p.n_final);
            assert_eq!((s.read_ops, s.write_ops), (p.read_ops, p.write_ops));
            assert_eq!(s.read_costs, p.read_costs);
            assert_eq!(s.write_costs, p.write_costs);
            assert_eq!(s.load_costs, p.load_costs);
            assert_eq!((s.ro, s.uo, s.mo), (p.ro, p.uo, p.mo));
        }
    }
}
