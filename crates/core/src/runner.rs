//! Drives an [`AccessMethod`] through a [`Workload`] and measures the RUM
//! overheads, separating read-path and write-path traffic so RO and UO are
//! attributed to the operations that incur them.

use std::time::Instant;

use serde::Serialize;

use crate::access::AccessMethod;
use crate::error::Result;
use crate::tracker::CostSnapshot;
use crate::workload::{Op, Workload};

/// The measured RUM profile of one method over one workload.
#[derive(Clone, Debug, Serialize)]
pub struct RumReport {
    pub method: String,
    /// Live records at the end of the run.
    pub n_final: usize,
    pub read_ops: u64,
    pub write_ops: u64,
    /// Traffic accumulated during read operations (get / range).
    pub read_costs: CostSnapshot,
    /// Traffic accumulated during write operations (insert / update /
    /// delete), including any reads those operations perform internally.
    pub write_costs: CostSnapshot,
    /// Traffic of the initial bulk load (excluded from RO / UO).
    pub load_costs: CostSnapshot,
    /// Read amplification over the read operations.
    pub ro: f64,
    /// Write amplification over the write operations.
    pub uo: f64,
    /// Space amplification of the final structure.
    pub mo: f64,
    /// Mean page accesses (reads + writes) per read operation.
    pub pages_per_read_op: f64,
    /// Mean page accesses per write operation.
    pub pages_per_write_op: f64,
    /// Wall-clock time of the operation phase, nanoseconds.
    pub wall_ns: u128,
    /// Simulated device time of the operation phase, nanoseconds.
    pub sim_ns: u64,
}

impl RumReport {
    /// One line suitable for a fixed-width table.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>10.2} {:>10.2}",
            self.method,
            self.n_final,
            finite(self.ro),
            finite(self.uo),
            finite(self.mo),
            self.pages_per_read_op,
            self.pages_per_write_op,
        )
    }

    /// Header matching [`table_row`](Self::table_row).
    pub fn table_header() -> String {
        format!(
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
            "method", "N", "RO", "UO", "MO", "pg/read", "pg/write"
        )
    }

    /// CSV row (method, ro, uo, mo, pages/read, pages/write, sim_ns).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{}",
            self.method,
            self.n_final,
            self.ro,
            self.uo,
            self.mo,
            self.pages_per_read_op,
            self.pages_per_write_op,
            self.sim_ns
        )
    }
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

/// Run `workload` against `method`: bulk-load the initial records, then play
/// the operation stream, attributing costs per operation class.
pub fn run_workload(method: &mut dyn AccessMethod, workload: &Workload) -> Result<RumReport> {
    let tracker = std::sync::Arc::clone(method.tracker());
    tracker.reset();

    method.bulk_load(&workload.initial)?;
    let load_costs = tracker.snapshot();

    let mut read_costs = CostSnapshot::default();
    let mut write_costs = CostSnapshot::default();
    let mut read_ops = 0u64;
    let mut write_ops = 0u64;

    let started = Instant::now();
    let mut mark = tracker.snapshot();
    for op in &workload.ops {
        match *op {
            Op::Get(k) => {
                method.get(k)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(k, v) => {
                method.insert(k, v)?;
            }
            Op::Update(k, v) => {
                method.update(k, v)?;
            }
            Op::Delete(k) => {
                method.delete(k)?;
            }
        }
        let now = tracker.snapshot();
        let d = now.delta(&mark);
        mark = now;
        if op.is_read() {
            read_ops += 1;
            read_costs = read_costs.add(&d);
        } else {
            write_ops += 1;
            write_costs = write_costs.add(&d);
        }
    }
    let wall_ns = started.elapsed().as_nanos();

    let profile = method.space_profile();
    let sim_ns = read_costs.sim_time_ns + write_costs.sim_time_ns;

    Ok(RumReport {
        method: method.name(),
        n_final: method.len(),
        read_ops,
        write_ops,
        ro: read_costs.read_amplification(),
        uo: write_costs.write_amplification(),
        mo: profile.space_amplification(),
        pages_per_read_op: per_op(read_costs.page_accesses(), read_ops),
        pages_per_write_op: per_op(write_costs.page_accesses(), write_ops),
        read_costs,
        write_costs,
        load_costs,
        wall_ns,
        sim_ns,
    })
}

fn per_op(total: u64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        total as f64 / ops as f64
    }
}

/// Measure the average cost of a single operation kind, for Table 1 style
/// experiments: runs `ops` against an already-loaded method and returns the
/// per-operation page accesses and cost delta.
pub fn measure_ops(
    method: &mut dyn AccessMethod,
    ops: &[Op],
) -> Result<(f64, CostSnapshot)> {
    let tracker = std::sync::Arc::clone(method.tracker());
    let before = tracker.snapshot();
    for op in ops {
        match *op {
            Op::Get(k) => {
                method.get(k)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(k, v) => {
                method.insert(k, v)?;
            }
            Op::Update(k, v) => {
                method.update(k, v)?;
            }
            Op::Delete(k) => {
                method.delete(k)?;
            }
        }
    }
    let d = tracker.since(&before);
    Ok((per_op(d.page_accesses(), ops.len() as u64), d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SpaceProfile;
    use crate::tracker::{CostTracker, DataClass};
    use crate::types::{Key, Record, Value, RECORD_SIZE};
    use crate::workload::{OpMix, Workload, WorkloadSpec};
    use std::sync::Arc;

    /// Minimal sorted-vec method that charges 2 bytes of physical traffic
    /// per byte of logical traffic, so amplification is exactly 2.
    struct Amp2 {
        data: std::collections::BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Amp2 {
        fn new() -> Self {
            Amp2 {
                data: Default::default(),
                tracker: CostTracker::new(),
            }
        }
    }

    impl AccessMethod for Amp2 {
        fn name(&self) -> String {
            "amp2".into()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * 3 * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> crate::Result<Option<Value>> {
            let r = self.data.get(&key).copied();
            if r.is_some() {
                self.tracker.read(DataClass::Base, 2 * RECORD_SIZE as u64);
            }
            Ok(r)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> crate::Result<Vec<Record>> {
            let out: Vec<Record> = self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            self.tracker
                .read(DataClass::Base, (2 * out.len() * RECORD_SIZE) as u64);
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> crate::Result<()> {
            self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> crate::Result<bool> {
            if self.data.contains_key(&key) {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                self.data.insert(key, value);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> crate::Result<bool> {
            if self.data.remove(&key).is_some() {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> crate::Result<()> {
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            Ok(())
        }
    }

    #[test]
    fn amplifications_attributed_per_class() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 500,
            operations: 2000,
            mix: OpMix::BALANCED,
            seed: 9,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!((report.ro - 2.0).abs() < 1e-9, "ro = {}", report.ro);
        assert!((report.uo - 2.0).abs() < 1e-9, "uo = {}", report.uo);
        assert!((report.mo - 3.0).abs() < 1e-9, "mo = {}", report.mo);
        assert_eq!(report.read_ops + report.write_ops, w.ops.len() as u64);
    }

    #[test]
    fn load_costs_are_excluded_from_amplification() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 1000,
            operations: 10,
            mix: OpMix::READ_ONLY,
            seed: 3,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        // Bulk load wrote 1000 records; none of that traffic shows in UO.
        assert!(report.load_costs.total_write_bytes() > 0);
        assert_eq!(report.write_ops, 0);
        assert_eq!(report.write_costs.total_write_bytes(), 0);
        assert!((report.ro - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_rows_render() {
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 100,
            operations: 100,
            seed: 1,
            ..Default::default()
        });
        let mut m = Amp2::new();
        let report = run_workload(&mut m, &w).unwrap();
        assert!(report.table_row().contains("amp2"));
        assert!(RumReport::table_header().contains("MO"));
        assert_eq!(report.csv_row().split(',').count(), 8);
    }
}
