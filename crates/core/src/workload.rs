//! Seeded workload generation.
//!
//! The paper's model workload (§2) is "comprised of point queries, updates,
//! inserts, and deletes" over an integer dataset; Table 1 additionally uses
//! range queries of result size `m`. This module generates exactly that:
//! a deterministic initial dataset plus an operation stream drawn from a
//! configurable operation mix and key distribution (uniform or zipfian —
//! the standard skew model for database workloads).
//!
//! Workloads come in two forms that yield the **bit-identical** operation
//! sequence for the same [`WorkloadSpec`]:
//!
//! * [`Workload::generate`] materializes the whole stream as a `Vec<Op>` —
//!   convenient when several methods replay the same ops, but O(ops)
//!   memory, which caps experiments around a few hundred thousand ops.
//! * [`OpStream`] yields the same ops one at a time in O(live-set) memory,
//!   which is what unlocks multi-million-op runs
//!   ([`run_stream`](crate::runner::run_stream), the `scale_sweep` bench).
//!
//! `Workload::generate` is implemented *as* a collected `OpStream`, so the
//! two can never drift apart.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Key, Record, Value};

/// Which live key an operation targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every live key equally likely.
    Uniform,
    /// Zipfian skew with parameter `theta` in (0, 1); 0.99 is the classic
    /// YCSB default ("hot" keys dominate).
    Zipf { theta: f64 },
}

/// How the initial key population fills the key universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeySpace {
    /// Keys `0, spacing, 2·spacing, ...` — a dense, predictable universe.
    /// `spacing = 1` reproduces the paper's direct-address example where the
    /// universe equals the population.
    Dense { spacing: u64 },
    /// Keys sampled uniformly without replacement from
    /// `[0, n × universe_factor)`.
    Sparse { universe_factor: u64 },
}

/// Deterministic workload drift: a scenario axis layered over the base
/// [`WorkloadSpec`] mix and key distribution. The active regime is a pure
/// function of the op index, so a drifting stream is exactly as
/// deterministic as a static one — same seed, bit-identical stream — and
/// [`Drift::None`] leaves generation byte-for-byte unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Drift {
    /// No drift — the stream draws from `spec.mix`/`spec.dist` throughout.
    #[default]
    None,
    /// Diurnal mix rotation: each `period` splits into four equal phases —
    /// read-heavy "day", the base mix, write-heavy "night", the base mix
    /// again — cycling for the whole stream.
    Diurnal { period: usize },
    /// Flash crowd: during the last quarter of each `period` the key
    /// distribution snaps to a hot zipfian
    /// (θ = [`SPIKE_THETA`](Self::SPIKE_THETA)) under a read-heavy mix — a
    /// sudden skew spike on top of the base workload.
    FlashCrowd { period: usize },
    /// Scan storm: the last quarter of each `period` flips to
    /// [`OpMix::SCAN_HEAVY`] — an analytics interlude in an OLTP stream.
    ScanStorm { period: usize },
    /// One hard flip to `mix` at op index `at` (never flips back). The
    /// sharpest drift signal — used to pin tuner hysteresis.
    Flip { at: usize, mix: OpMix },
}

impl Drift {
    /// Skew of the flash-crowd spike (the classic YCSB hot setting).
    pub const SPIKE_THETA: f64 = 0.99;

    /// Which quarter (0..=3) of the drift period op `i` falls in.
    fn quarter(period: usize, i: usize) -> usize {
        let p = period.max(4);
        (i % p) * 4 / p
    }

    /// Identifier of the mix regime governing op `i`. The stream
    /// recomputes its sampling thresholds only when this changes, so
    /// steady regimes pay nothing per op.
    fn segment(&self, i: usize) -> usize {
        match *self {
            Drift::None => 0,
            Drift::Diurnal { period } => Self::quarter(period, i),
            Drift::FlashCrowd { period } | Drift::ScanStorm { period } => {
                usize::from(Self::quarter(period, i) == 3)
            }
            Drift::Flip { at, .. } => usize::from(i >= at),
        }
    }

    /// The op mix governing op `i`.
    pub fn mix_at(&self, base: &OpMix, i: usize) -> OpMix {
        match *self {
            Drift::None => *base,
            Drift::Diurnal { period } => match Self::quarter(period, i) {
                0 => OpMix::READ_HEAVY,
                2 => OpMix::WRITE_HEAVY,
                _ => *base,
            },
            Drift::FlashCrowd { period } => {
                if Self::quarter(period, i) == 3 {
                    OpMix::READ_HEAVY
                } else {
                    *base
                }
            }
            Drift::ScanStorm { period } => {
                if Self::quarter(period, i) == 3 {
                    OpMix::SCAN_HEAVY
                } else {
                    *base
                }
            }
            Drift::Flip { at, mix } => {
                if i >= at {
                    mix
                } else {
                    *base
                }
            }
        }
    }

    /// Hot-spike skew overriding the base key distribution at op `i`
    /// (flash crowds only).
    fn spike_theta(&self, i: usize) -> Option<f64> {
        match *self {
            Drift::FlashCrowd { period } if Self::quarter(period, i) == 3 => {
                Some(Self::SPIKE_THETA)
            }
            _ => None,
        }
    }

    /// Whether this is the no-drift scenario.
    pub fn is_none(&self) -> bool {
        matches!(self, Drift::None)
    }

    /// The three canonical drifting scenarios — the *drift suite* the
    /// `drift_sweep` bench and the autotuner CI gate run over.
    pub fn suite(period: usize) -> [(&'static str, Drift); 3] {
        [
            ("diurnal", Drift::Diurnal { period }),
            ("flash-crowd", Drift::FlashCrowd { period }),
            ("scan-storm", Drift::ScanStorm { period }),
        ]
    }
}

/// Relative frequencies of the operation types. They need not sum to 1;
/// they are normalized at generation time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpMix {
    pub get: f64,
    pub insert: f64,
    pub update: f64,
    pub delete: f64,
    pub range: f64,
}

impl OpMix {
    /// 95% point reads, 5% inserts.
    pub const READ_HEAVY: OpMix = OpMix {
        get: 0.95,
        insert: 0.05,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };
    /// 10% point reads, 60% inserts, 25% updates, 5% deletes.
    pub const WRITE_HEAVY: OpMix = OpMix {
        get: 0.10,
        insert: 0.60,
        update: 0.25,
        delete: 0.05,
        range: 0.0,
    };
    /// Even split of reads and writes with a few scans.
    pub const BALANCED: OpMix = OpMix {
        get: 0.45,
        insert: 0.20,
        update: 0.20,
        delete: 0.05,
        range: 0.10,
    };
    /// Analytics: mostly range scans, trickle of inserts.
    pub const SCAN_HEAVY: OpMix = OpMix {
        get: 0.05,
        insert: 0.05,
        update: 0.0,
        delete: 0.0,
        range: 0.90,
    };
    /// Range-dominated with a real write stream: the mix that exercises an
    /// access method's range path while flushes/reorganizations keep
    /// happening underneath it (unlike [`SCAN_HEAVY`](Self::SCAN_HEAVY),
    /// whose trickle of inserts barely perturbs the structure).
    pub const RANGE_HEAVY: OpMix = OpMix {
        get: 0.10,
        insert: 0.10,
        update: 0.05,
        delete: 0.05,
        range: 0.70,
    };
    /// Point reads only.
    pub const READ_ONLY: OpMix = OpMix {
        get: 1.0,
        insert: 0.0,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };
    /// Inserts only (a pure ingest stream).
    pub const INSERT_ONLY: OpMix = OpMix {
        get: 0.0,
        insert: 1.0,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };

    fn total(&self) -> f64 {
        self.get + self.insert + self.update + self.delete + self.range
    }
}

/// A single generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Get(Key),
    Insert(Key, Value),
    Update(Key, Value),
    Delete(Key),
    /// Inclusive range scan.
    Range(Key, Key),
}

impl Op {
    /// Whether this operation is on the read path (for RO accounting).
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_) | Op::Range(_, _))
    }
}

/// Full description of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Records loaded before the operation stream starts.
    pub initial_records: usize,
    /// Number of operations in the stream.
    pub operations: usize,
    pub mix: OpMix,
    pub dist: KeyDist,
    pub key_space: KeySpace,
    /// Target result size of range queries (`m` in Table 1).
    pub range_len: usize,
    /// Fraction of point reads aimed at absent keys.
    pub miss_fraction: f64,
    pub seed: u64,
    /// Drifting-workload scenario layered over `mix`/`dist`
    /// ([`Drift::None`] reproduces the static workload exactly).
    pub drift: Drift,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            initial_records: 1 << 14,
            operations: 1 << 14,
            mix: OpMix::BALANCED,
            dist: KeyDist::Uniform,
            key_space: KeySpace::Dense { spacing: 1 },
            range_len: 64,
            miss_fraction: 0.0,
            seed: 0x52_55_4D, // "RUM"
            drift: Drift::None,
        }
    }
}

/// A generated workload: the initial dataset (sorted, unique keys) and the
/// operation stream.
#[derive(Clone, Debug)]
pub struct Workload {
    pub initial: Vec<Record>,
    pub ops: Vec<Op>,
    pub spec_range_len: usize,
}

/// Deterministic value derivation so datasets are reproducible and
/// verifiable: each key's canonical payload.
#[inline]
pub fn value_for(key: Key, version: u64) -> Value {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.wrapping_mul(31))
        .wrapping_add(7)
}

/// YCSB-style zipfian rank generator (Gray et al., "Quickly generating
/// billion-record synthetic databases").
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Build a generator over ranks `0..n` with skew `theta` in (0,1).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Sample a rank in `0..n`; rank 0 is the hottest.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n - 1)
    }

    /// Re-target the generator at a different domain size, reusing the skew.
    pub fn resized(&self, n: usize) -> Zipfian {
        let mut z = self.clone();
        z.resize_to(n);
        z
    }

    /// Re-target the generator at a different domain size in place.
    ///
    /// `zetan` is maintained incrementally — `ζ(n±1) = ζ(n) ± (n±1)^-θ` —
    /// so tracking a live population that drifts by one key per operation
    /// costs O(|Δn|) instead of the O(n) full harmonic recomputation.
    pub fn resize_to(&mut self, n: usize) {
        assert!(n > 0, "zipfian over empty domain");
        if n == self.n {
            return;
        }
        if n.abs_diff(self.n) < n / 2 {
            while self.n < n {
                self.n += 1;
                self.zetan += 1.0 / (self.n as f64).powf(self.theta);
            }
            while self.n > n {
                self.zetan -= 1.0 / (self.n as f64).powf(self.theta);
                self.n -= 1;
            }
        } else {
            self.n = n;
            self.zetan = Self::zeta(n, self.theta);
        }
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

/// Open-addressing key → rank table: the slot-map half of [`LiveSet`].
///
/// Replaces the former `HashMap<Key, usize>`: a fixed multiply-shift hash
/// with linear probing keeps membership checks allocation-free, branch-light
/// and fully deterministic (no per-process `RandomState`), and deletions use
/// backward-shift compaction so a stream of millions of deletes never
/// accumulates tombstones. Capacity stays a power of two at ≤ 75% load.
struct KeySlots {
    slots: Vec<Option<(Key, usize)>>,
    mask: usize,
    len: usize,
}

impl KeySlots {
    fn with_capacity(n: usize) -> Self {
        let cap = (n.max(4) * 2).next_power_of_two();
        KeySlots {
            slots: vec![None; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn home(&self, key: Key) -> usize {
        // Fibonacci hashing: the golden-ratio multiplier diffuses dense
        // (sequential) key universes across the table.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Cyclic probe distance from slot `from` to slot `to`.
    #[inline]
    fn distance(&self, from: usize, to: usize) -> usize {
        to.wrapping_sub(from) & self.mask
    }

    fn find(&self, key: Key) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            match self.slots[i] {
                Some((k, _)) if k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    fn get(&self, key: Key) -> Option<usize> {
        self.find(key).map(|i| self.slots[i].expect("occupied").1)
    }

    /// Insert or overwrite `key → rank`.
    fn set(&mut self, key: Key, rank: usize) {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            match self.slots[i] {
                Some((k, _)) if k == key => {
                    self.slots[i] = Some((key, rank));
                    return;
                }
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, rank));
                    self.len += 1;
                    return;
                }
            }
        }
    }

    /// Remove `key`, returning its rank. Backward-shift compaction keeps
    /// every remaining probe chain contiguous without tombstones.
    fn remove(&mut self, key: Key) -> Option<usize> {
        let mut hole = self.find(key)?;
        let rank = self.slots[hole].expect("occupied").1;
        self.slots[hole] = None;
        self.len -= 1;
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            let Some((k, r)) = self.slots[j] else { break };
            // An entry may move back into the hole iff its probe path
            // passes through it (probe distance reaches at least as far
            // back as the hole).
            if self.distance(self.home(k), j) >= self.distance(hole, j) {
                self.slots[hole] = Some((k, r));
                self.slots[j] = None;
                hole = j;
            }
        }
        Some(rank)
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![None; (self.mask + 1) * 2]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for entry in old.into_iter().flatten() {
            self.set(entry.0, entry.1);
        }
    }
}

/// Tracks the live key population during generation so updates/deletes/gets
/// target existing keys and inserts target fresh keys.
///
/// Ranks (for zipfian / uniform sampling) are resolved in O(1) through the
/// index-addressable `keys` vector; membership and removal go through the
/// [`KeySlots`] slot map. Total memory is O(live keys) — the property that
/// lets [`OpStream`] run multi-million-op streams without a `Vec<Op>`.
struct LiveSet {
    keys: Vec<Key>,
    slots: KeySlots,
}

impl LiveSet {
    fn new(keys: Vec<Key>) -> Self {
        let mut slots = KeySlots::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            slots.set(k, i);
        }
        LiveSet { keys, slots }
    }
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn contains(&self, k: Key) -> bool {
        self.slots.get(k).is_some()
    }
    fn at(&self, i: usize) -> Key {
        self.keys[i]
    }
    fn insert(&mut self, k: Key) {
        if !self.contains(k) {
            self.slots.set(k, self.keys.len());
            self.keys.push(k);
        }
    }
    fn remove(&mut self, k: Key) {
        if let Some(i) = self.slots.remove(k) {
            let last = self.keys.len() - 1;
            self.keys.swap(i, last);
            self.keys.pop();
            if i < self.keys.len() {
                self.slots.set(self.keys[i], i);
            }
        }
    }
}

impl Workload {
    /// Generate a workload from a spec. Deterministic in `spec.seed`.
    ///
    /// Implemented as a fully collected [`OpStream`], so the materialized
    /// `ops` vector is bit-identical to what the streaming form yields —
    /// the contract `tests` pin and the streaming runner relies on.
    pub fn generate(spec: &WorkloadSpec) -> Workload {
        let mut stream = OpStream::new(spec);
        let mut ops = Vec::with_capacity(spec.operations);
        ops.extend(&mut stream);
        Workload {
            initial: stream.into_initial(),
            ops,
            spec_range_len: spec.range_len,
        }
    }
}

/// Streaming equivalent of [`Workload::generate`]: yields the bit-identical
/// operation sequence for the same [`WorkloadSpec`] seed, holding only the
/// live key set (a rank-addressable `Vec` plus a slot map) instead of the
/// whole `Vec<Op>` — O(live-set) memory, so 10⁷–10⁹-op experiments fit
/// where the materialized form would not.
///
/// ```
/// use rum_core::workload::{OpStream, Workload, WorkloadSpec};
///
/// let spec = WorkloadSpec::default();
/// let materialized = Workload::generate(&spec);
/// let streamed: Vec<_> = OpStream::new(&spec).collect();
/// assert_eq!(materialized.ops, streamed);
/// ```
pub struct OpStream {
    spec: WorkloadSpec,
    initial: Vec<Record>,
    rng: StdRng,
    live: LiveSet,
    zipf: Option<Zipfian>,
    /// Separate generator for flash-crowd spikes so the spike's hot skew
    /// never perturbs the base distribution's incremental zeta state.
    zipf_spike: Option<Zipfian>,
    thresholds: [f64; 4],
    /// Drift regime the current `thresholds` were computed for.
    segment: usize,
    /// Fresh keys for inserts continue above the initial population so
    /// they never collide with live keys.
    next_fresh: Key,
    fresh_step: u64,
    version: u64,
    emitted: usize,
}

impl OpStream {
    /// Build the stream: generates the initial dataset eagerly (it is the
    /// live set), then yields `spec.operations` ops lazily.
    pub fn new(spec: &WorkloadSpec) -> OpStream {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let initial = generate_initial(spec, &mut rng);
        let max_initial_key = initial.last().map(|r| r.key).unwrap_or(0);
        let live = LiveSet::new(initial.iter().map(|r| r.key).collect());

        let zipf = match spec.dist {
            KeyDist::Zipf { theta } => Some(Zipfian::new(spec.initial_records.max(2), theta)),
            KeyDist::Uniform => None,
        };

        let thresholds = mix_thresholds(&spec.drift.mix_at(&spec.mix, 0));

        OpStream {
            spec: *spec,
            initial,
            rng,
            live,
            zipf,
            zipf_spike: None,
            thresholds,
            segment: spec.drift.segment(0),
            next_fresh: max_initial_key + 1,
            fresh_step: match spec.key_space {
                KeySpace::Dense { spacing } => spacing.max(1),
                KeySpace::Sparse { universe_factor } => universe_factor.max(1),
            },
            version: 1,
            emitted: 0,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The initial dataset (sorted, unique keys) to bulk-load before the
    /// op stream. Empty after [`take_initial`](Self::take_initial).
    pub fn initial(&self) -> &[Record] {
        &self.initial
    }

    /// Take ownership of the initial dataset (leaves it empty), so a
    /// runner can bulk-load it while the stream keeps yielding ops.
    pub fn take_initial(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.initial)
    }

    /// Consume the stream, returning the initial dataset.
    pub fn into_initial(self) -> Vec<Record> {
        self.initial
    }

    /// Ops yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Current live-key population — the stream's whole working state.
    pub fn live_keys(&self) -> usize {
        self.live.len()
    }

    /// INSERT, also the fallback whenever an arm needs a live key and
    /// none exists: every slot of the stream must emit an operation, or
    /// the generated workload silently falls short of `spec.operations`
    /// (an empty-start write-heavy spec could lose most of its slots).
    fn fresh_insert(&mut self) -> Op {
        let k = self.next_fresh;
        let step = self.fresh_step.max(1);
        self.next_fresh += step + (self.rng.gen::<u64>() % step) / 2;
        self.live.insert(k);
        self.version += 1;
        Op::Insert(k, value_for(k, self.version))
    }

    /// Pick a live key through the active distribution: the base one, or
    /// the flash-crowd spike generator when `spike` carries a hot theta.
    fn pick_key(&mut self, spike: Option<f64>) -> Key {
        match spike {
            Some(theta) => {
                if self.zipf_spike.is_none() {
                    self.zipf_spike = Some(Zipfian::new(self.live.len().max(2), theta));
                }
                pick_live(&self.live, &mut self.zipf_spike, &mut self.rng)
            }
            None => pick_live(&self.live, &mut self.zipf, &mut self.rng),
        }
    }
}

/// Cumulative sampling thresholds for one normalized mix.
fn mix_thresholds(mix: &OpMix) -> [f64; 4] {
    let total = mix.total();
    assert!(total > 0.0, "operation mix has zero total weight");
    [
        mix.get / total,
        (mix.get + mix.insert) / total,
        (mix.get + mix.insert + mix.update) / total,
        (mix.get + mix.insert + mix.update + mix.delete) / total,
    ]
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.emitted >= self.spec.operations {
            return None;
        }
        let index = self.emitted;
        self.emitted += 1;
        let seg = self.spec.drift.segment(index);
        if seg != self.segment {
            self.segment = seg;
            self.thresholds = mix_thresholds(&self.spec.drift.mix_at(&self.spec.mix, index));
        }
        let spike = self.spec.drift.spike_theta(index);
        let dice: f64 = self.rng.gen();
        let op = if dice < self.thresholds[0] {
            // GET
            if self.live.len() == 0 {
                Op::Get(self.rng.gen())
            } else if self.spec.miss_fraction > 0.0
                && self.rng.gen::<f64>() < self.spec.miss_fraction
            {
                // A key extremely unlikely to be live.
                let mut k: Key = self.rng.gen::<Key>() | (1 << 63);
                while self.live.contains(k) {
                    k = self.rng.gen::<Key>() | (1 << 63);
                }
                Op::Get(k)
            } else {
                Op::Get(self.pick_key(spike))
            }
        } else if dice < self.thresholds[1] {
            self.fresh_insert()
        } else if dice < self.thresholds[2] {
            // UPDATE
            if self.live.len() == 0 {
                self.fresh_insert()
            } else {
                let k = self.pick_key(spike);
                self.version += 1;
                Op::Update(k, value_for(k, self.version))
            }
        } else if dice < self.thresholds[3] {
            // DELETE
            if self.live.len() == 0 {
                self.fresh_insert()
            } else {
                let k = self.pick_key(spike);
                self.live.remove(k);
                Op::Delete(k)
            }
        } else {
            // RANGE: span sized so the expected result count ≈ range_len.
            if self.live.len() == 0 {
                self.fresh_insert()
            } else {
                let lo = self.pick_key(spike);
                let span = expected_span(&self.spec, self.next_fresh, self.live.len());
                Op::Range(lo, lo.saturating_add(span))
            }
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.operations - self.emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OpStream {}

/// Pick a live key: uniformly, or by zipfian rank over the *current* live
/// population. The zipfian generator is resized (incrementally — see
/// [`Zipfian::resize_to`]) to track the population, rather than sampling
/// over the initial size and wrapping with `% n`: the wrap aliased distinct
/// ranks onto the same slot (distorting the skew whenever the population
/// shrank) and could never reach keys inserted after generation started.
fn pick_live(live: &LiveSet, zipf: &mut Option<Zipfian>, rng: &mut StdRng) -> Key {
    let n = live.len();
    debug_assert!(n > 0);
    let rank = match zipf {
        Some(z) => {
            z.resize_to(n);
            z.sample(rng)
        }
        None => rng.gen_range(0..n),
    };
    live.at(rank)
}

fn expected_span(spec: &WorkloadSpec, key_high_watermark: Key, live: usize) -> u64 {
    let density_inverse = (key_high_watermark.max(1)) as f64 / live.max(1) as f64;
    ((spec.range_len as f64) * density_inverse).ceil() as u64
}

fn generate_initial(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<Record> {
    let n = spec.initial_records;
    let mut keys: Vec<Key> = match spec.key_space {
        KeySpace::Dense { spacing } => {
            let s = spacing.max(1);
            (0..n as u64).map(|i| i * s).collect()
        }
        KeySpace::Sparse { universe_factor } => {
            let universe = (n as u64).saturating_mul(universe_factor.max(1));
            let mut set = std::collections::HashSet::with_capacity(n);
            while set.len() < n {
                set.insert(rng.gen_range(0..universe.max(1)));
            }
            let mut v: Vec<Key> = set.into_iter().collect();
            v.sort_unstable();
            v
        }
    };
    keys.dedup();
    keys.into_iter()
        .map(|k| Record::new(k, value_for(k, 0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            initial_records: 1000,
            operations: 5000,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&spec());
        let b = Workload::generate(&spec());
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&spec());
        let mut s = spec();
        s.seed = 43;
        let b = Workload::generate(&s);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn initial_is_sorted_unique() {
        let w = Workload::generate(&WorkloadSpec {
            key_space: KeySpace::Sparse { universe_factor: 4 },
            ..spec()
        });
        assert_eq!(w.initial.len(), 1000);
        for pair in w.initial.windows(2) {
            assert!(pair[0].key < pair[1].key);
        }
    }

    #[test]
    fn dense_universe_is_contiguous() {
        let w = Workload::generate(&spec());
        for (i, r) in w.initial.iter().enumerate() {
            assert_eq!(r.key, i as u64);
        }
    }

    #[test]
    fn mix_ratios_are_respected() {
        let w = Workload::generate(&WorkloadSpec {
            operations: 20_000,
            mix: OpMix::READ_HEAVY,
            ..spec()
        });
        let gets = w.ops.iter().filter(|o| matches!(o, Op::Get(_))).count();
        let frac = gets as f64 / w.ops.len() as f64;
        assert!((frac - 0.95).abs() < 0.02, "get fraction {frac}");
    }

    #[test]
    fn updates_and_deletes_target_live_keys() {
        // Replay the stream against a model set and confirm every update /
        // delete hits a key that is live at that point.
        let w = Workload::generate(&WorkloadSpec {
            mix: OpMix::BALANCED,
            ..spec()
        });
        let mut live: std::collections::HashSet<Key> = w.initial.iter().map(|r| r.key).collect();
        for op in &w.ops {
            match *op {
                Op::Insert(k, _) => {
                    assert!(!live.contains(&k), "insert of live key {k}");
                    live.insert(k);
                }
                Op::Update(k, _) => assert!(live.contains(&k), "update of dead key {k}"),
                Op::Delete(k) => {
                    assert!(live.contains(&k), "delete of dead key {k}");
                    live.remove(&k);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn miss_fraction_generates_misses() {
        let w = Workload::generate(&WorkloadSpec {
            mix: OpMix::READ_ONLY,
            miss_fraction: 0.5,
            operations: 2000,
            ..spec()
        });
        let live: std::collections::HashSet<Key> = w.initial.iter().map(|r| r.key).collect();
        let misses = w
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Get(k) if !live.contains(k)))
            .count();
        let frac = misses as f64 / w.ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "miss fraction {frac}");
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 should be far hotter than rank 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // And the head should dominate: top-10 ranks > 30% of mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 30_000, "head mass {head}");
    }

    #[test]
    fn zipfian_resized_keeps_domain() {
        let z = Zipfian::new(100, 0.5).resized(10);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn zipfian_incremental_resize_matches_fresh_construction() {
        // Drift a generator up and down one step at a time; its state must
        // track what a from-scratch construction would compute.
        let theta = 0.99;
        let mut z = Zipfian::new(500, theta);
        for n in (2..=600).chain((2..600).rev()).chain([250, 500]) {
            z.resize_to(n);
            let fresh = Zipfian::new(n, theta);
            assert!(
                (z.zetan - fresh.zetan).abs() < 1e-9 * fresh.zetan,
                "n={n}: drifted zetan {} vs fresh {}",
                z.zetan,
                fresh.zetan
            );
            // At n=2 eta is 0/0 (never consulted: sampling short-circuits
            // to ranks 0/1 first), so only finite etas are comparable.
            if fresh.eta.is_finite() {
                assert!((z.eta - fresh.eta).abs() < 1e-6, "n={n}: eta drifted");
            }
        }
    }

    #[test]
    fn op_count_always_matches_spec() {
        // Every slot of the stream must emit an operation — including from
        // an empty initial population, where update/delete/range arms have
        // no live key and must fall back to an insert.
        let drain = OpMix {
            get: 0.0,
            insert: 0.0,
            update: 0.3,
            delete: 0.6,
            range: 0.1,
        };
        for mix in [
            OpMix::BALANCED,
            OpMix::READ_HEAVY,
            OpMix::WRITE_HEAVY,
            OpMix::SCAN_HEAVY,
            OpMix::RANGE_HEAVY,
            drain,
        ] {
            for initial in [0usize, 1, 1000] {
                for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }] {
                    let w = Workload::generate(&WorkloadSpec {
                        initial_records: initial,
                        operations: 3000,
                        mix,
                        dist,
                        seed: 9,
                        ..Default::default()
                    });
                    assert_eq!(
                        w.ops.len(),
                        3000,
                        "short stream for mix {mix:?}, initial {initial}, dist {dist:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zipfian_stream_reaches_keys_inserted_mid_stream() {
        // The zipfian picker must cover the *current* live population; the
        // old `sample() % n` over the initial size could never rank past
        // the initial population, so keys inserted mid-stream were
        // unreachable by gets and updates.
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 50,
            operations: 5000,
            mix: OpMix {
                get: 0.5,
                insert: 0.3,
                update: 0.2,
                delete: 0.0,
                range: 0.0,
            },
            dist: KeyDist::Zipf { theta: 0.9 },
            seed: 21,
            ..Default::default()
        });
        let max_initial = w.initial.last().unwrap().key;
        let touched_new = w
            .ops
            .iter()
            .any(|op| matches!(*op, Op::Get(k) | Op::Update(k, _) if k > max_initial));
        assert!(
            touched_new,
            "no get/update ever reached a mid-stream insert"
        );
    }

    #[test]
    fn value_for_versions_differ() {
        assert_ne!(value_for(5, 0), value_for(5, 1));
        assert_ne!(value_for(5, 0), value_for(6, 0));
    }

    #[test]
    fn key_slots_match_a_hashmap_model() {
        // Drive the open-addressing slot map through a random op stream
        // against std's HashMap; contents must agree at every step, and a
        // narrow key domain forces heavy delete/re-insert probe-chain churn
        // (the backward-shift path).
        let mut rng = StdRng::seed_from_u64(0x510C);
        let mut slots = KeySlots::with_capacity(4);
        let mut model = std::collections::HashMap::new();
        for step in 0..20_000usize {
            let k: Key = rng.gen_range(0..512);
            match rng.gen_range(0..3) {
                0 => {
                    slots.set(k, step);
                    model.insert(k, step);
                }
                1 => {
                    assert_eq!(slots.remove(k), model.remove(&k), "remove {k} @ {step}");
                }
                _ => {
                    assert_eq!(slots.get(k), model.get(&k).copied(), "get {k} @ {step}");
                }
            }
            assert_eq!(slots.len, model.len(), "len @ {step}");
        }
        for (&k, &v) in &model {
            assert_eq!(slots.get(k), Some(v));
        }
    }

    #[test]
    fn op_stream_matches_generate_for_every_mix_dist_and_population() {
        // The streaming generator's contract: bit-identical op sequence to
        // the materialized Workload::generate, for every OpMix preset ×
        // KeyDist × initial population (including the empty-start and
        // miss-heavy corners) — same initial dataset, same ops, same order.
        let mixes = [
            ("read-heavy", OpMix::READ_HEAVY),
            ("write-heavy", OpMix::WRITE_HEAVY),
            ("balanced", OpMix::BALANCED),
            ("scan-heavy", OpMix::SCAN_HEAVY),
            ("range-heavy", OpMix::RANGE_HEAVY),
            ("read-only", OpMix::READ_ONLY),
            ("insert-only", OpMix::INSERT_ONLY),
        ];
        let dists = [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }];
        for (tag, mix) in mixes {
            for dist in dists {
                for initial in [0usize, 1, 777] {
                    for miss in [0.0, 0.3] {
                        let spec = WorkloadSpec {
                            initial_records: initial,
                            operations: 2500,
                            mix,
                            dist,
                            miss_fraction: miss,
                            seed: 0xBEE5,
                            ..Default::default()
                        };
                        let ctx = format!("{tag}/{dist:?}/initial={initial}/miss={miss}");
                        let materialized = Workload::generate(&spec);
                        let mut stream = OpStream::new(&spec);
                        assert_eq!(stream.initial(), &materialized.initial[..], "{ctx}");
                        assert_eq!(stream.len(), 2500, "{ctx}");
                        let streamed: Vec<Op> = (&mut stream).collect();
                        assert_eq!(streamed, materialized.ops, "{ctx}");
                        assert_eq!(stream.emitted(), 2500, "{ctx}");
                        assert_eq!(stream.next(), None, "{ctx}: stream past the end");
                    }
                }
            }
        }
    }

    #[test]
    fn drift_none_leaves_the_stream_unchanged() {
        // Explicit Drift::None must be byte-identical to a spec that never
        // mentions drift (the Default) — the axis is strictly opt-in.
        let base = spec();
        let with_none = WorkloadSpec {
            drift: Drift::None,
            ..base
        };
        assert_eq!(
            Workload::generate(&base).ops,
            Workload::generate(&with_none).ops
        );
    }

    #[test]
    fn drift_streams_are_deterministic_and_full_length() {
        let mut scenarios: Vec<(&str, Drift)> = Drift::suite(1024).to_vec();
        scenarios.push((
            "flip",
            Drift::Flip {
                at: 2500,
                mix: OpMix::SCAN_HEAVY,
            },
        ));
        for (tag, drift) in scenarios {
            let s = WorkloadSpec { drift, ..spec() };
            let a = Workload::generate(&s);
            let b: Vec<Op> = OpStream::new(&s).collect();
            assert_eq!(a.ops.len(), s.operations, "{tag}: short stream");
            assert_eq!(a.ops, b, "{tag}: stream diverged from generate");
        }
    }

    #[test]
    fn diurnal_rotation_shifts_the_mix_per_quarter() {
        let period = 2000;
        let w = Workload::generate(&WorkloadSpec {
            operations: period,
            mix: OpMix::BALANCED,
            drift: Drift::Diurnal { period },
            ..spec()
        });
        let frac = |ops: &[Op], f: fn(&Op) -> bool| {
            ops.iter().filter(|o| f(o)).count() as f64 / ops.len() as f64
        };
        let day = &w.ops[..period / 4];
        let night = &w.ops[period / 2..3 * period / 4];
        // Day quarter is READ_HEAVY (95% gets); night is WRITE_HEAVY.
        assert!(
            frac(day, |o| matches!(o, Op::Get(_))) > 0.85,
            "day quarter not read-heavy"
        );
        assert!(
            frac(night, |o| !o.is_read()) > 0.80,
            "night quarter not write-heavy"
        );
    }

    #[test]
    fn scan_storm_floods_the_last_quarter_with_ranges() {
        let period = 2000;
        let w = Workload::generate(&WorkloadSpec {
            operations: period,
            mix: OpMix::READ_HEAVY,
            drift: Drift::ScanStorm { period },
            ..spec()
        });
        let storm = &w.ops[3 * period / 4..];
        let calm = &w.ops[..3 * period / 4];
        let ranges = |ops: &[Op]| ops.iter().filter(|o| matches!(o, Op::Range(..))).count();
        assert!(
            ranges(storm) as f64 > 0.8 * storm.len() as f64,
            "storm quarter not scan-dominated"
        );
        assert_eq!(ranges(calm), 0, "ranges leaked outside the storm");
    }

    #[test]
    fn flash_crowd_spike_concentrates_key_traffic() {
        let period = 4000;
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 4000,
            operations: period,
            mix: OpMix::READ_ONLY,
            drift: Drift::FlashCrowd { period },
            ..spec()
        });
        let hottest = |ops: &[Op]| {
            let mut counts = std::collections::HashMap::new();
            for o in ops {
                if let Op::Get(k) = o {
                    *counts.entry(*k).or_insert(0usize) += 1;
                }
            }
            counts.values().copied().max().unwrap_or(0)
        };
        let calm = hottest(&w.ops[..period / 4]);
        let spike = hottest(&w.ops[3 * period / 4..]);
        // Uniform base traffic touches each of ~4000 keys a handful of
        // times per quarter; the hot-zipfian spike hammers one key.
        assert!(
            spike > 5 * calm.max(1),
            "spike not skewed: hottest key hit {spike}× vs {calm}× in calm quarter"
        );
    }

    #[test]
    fn drifting_updates_and_deletes_still_target_live_keys() {
        for (tag, drift) in Drift::suite(512) {
            let w = Workload::generate(&WorkloadSpec {
                mix: OpMix::WRITE_HEAVY,
                drift,
                ..spec()
            });
            let mut live: std::collections::HashSet<Key> =
                w.initial.iter().map(|r| r.key).collect();
            for op in &w.ops {
                match *op {
                    Op::Insert(k, _) => {
                        assert!(!live.contains(&k), "{tag}: insert of live key {k}");
                        live.insert(k);
                    }
                    Op::Update(k, _) => {
                        assert!(live.contains(&k), "{tag}: update of dead key {k}")
                    }
                    Op::Delete(k) => {
                        assert!(live.contains(&k), "{tag}: delete of dead key {k}");
                        live.remove(&k);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn op_stream_memory_is_live_set_sized() {
        // A delete-free stream holds exactly initial+inserts keys; a
        // delete-heavy stream's live set shrinks. Either way the stream's
        // state is the live set, not the op history.
        let spec = WorkloadSpec {
            initial_records: 100,
            operations: 50_000,
            mix: OpMix {
                get: 0.5,
                insert: 0.05,
                update: 0.2,
                delete: 0.25,
                range: 0.0,
            },
            seed: 3,
            ..Default::default()
        };
        let mut stream = OpStream::new(&spec);
        let mut inserts = 0usize;
        let mut deletes = 0usize;
        for op in &mut stream {
            match op {
                Op::Insert(..) => inserts += 1,
                Op::Delete(_) => deletes += 1,
                _ => {}
            }
        }
        assert_eq!(stream.live_keys(), 100 + inserts - deletes);
        assert!(stream.live_keys() < 5000, "live set should stay small");
    }
}
