//! Seeded workload generation.
//!
//! The paper's model workload (§2) is "comprised of point queries, updates,
//! inserts, and deletes" over an integer dataset; Table 1 additionally uses
//! range queries of result size `m`. This module generates exactly that:
//! a deterministic initial dataset plus an operation stream drawn from a
//! configurable operation mix and key distribution (uniform or zipfian —
//! the standard skew model for database workloads).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Key, Record, Value};

/// Which live key an operation targets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every live key equally likely.
    Uniform,
    /// Zipfian skew with parameter `theta` in (0, 1); 0.99 is the classic
    /// YCSB default ("hot" keys dominate).
    Zipf { theta: f64 },
}

/// How the initial key population fills the key universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeySpace {
    /// Keys `0, spacing, 2·spacing, ...` — a dense, predictable universe.
    /// `spacing = 1` reproduces the paper's direct-address example where the
    /// universe equals the population.
    Dense { spacing: u64 },
    /// Keys sampled uniformly without replacement from
    /// `[0, n × universe_factor)`.
    Sparse { universe_factor: u64 },
}

/// Relative frequencies of the operation types. They need not sum to 1;
/// they are normalized at generation time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpMix {
    pub get: f64,
    pub insert: f64,
    pub update: f64,
    pub delete: f64,
    pub range: f64,
}

impl OpMix {
    /// 95% point reads, 5% inserts.
    pub const READ_HEAVY: OpMix = OpMix {
        get: 0.95,
        insert: 0.05,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };
    /// 10% point reads, 60% inserts, 25% updates, 5% deletes.
    pub const WRITE_HEAVY: OpMix = OpMix {
        get: 0.10,
        insert: 0.60,
        update: 0.25,
        delete: 0.05,
        range: 0.0,
    };
    /// Even split of reads and writes with a few scans.
    pub const BALANCED: OpMix = OpMix {
        get: 0.45,
        insert: 0.20,
        update: 0.20,
        delete: 0.05,
        range: 0.10,
    };
    /// Analytics: mostly range scans, trickle of inserts.
    pub const SCAN_HEAVY: OpMix = OpMix {
        get: 0.05,
        insert: 0.05,
        update: 0.0,
        delete: 0.0,
        range: 0.90,
    };
    /// Point reads only.
    pub const READ_ONLY: OpMix = OpMix {
        get: 1.0,
        insert: 0.0,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };
    /// Inserts only (a pure ingest stream).
    pub const INSERT_ONLY: OpMix = OpMix {
        get: 0.0,
        insert: 1.0,
        update: 0.0,
        delete: 0.0,
        range: 0.0,
    };

    fn total(&self) -> f64 {
        self.get + self.insert + self.update + self.delete + self.range
    }
}

/// A single generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Get(Key),
    Insert(Key, Value),
    Update(Key, Value),
    Delete(Key),
    /// Inclusive range scan.
    Range(Key, Key),
}

impl Op {
    /// Whether this operation is on the read path (for RO accounting).
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_) | Op::Range(_, _))
    }
}

/// Full description of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Records loaded before the operation stream starts.
    pub initial_records: usize,
    /// Number of operations in the stream.
    pub operations: usize,
    pub mix: OpMix,
    pub dist: KeyDist,
    pub key_space: KeySpace,
    /// Target result size of range queries (`m` in Table 1).
    pub range_len: usize,
    /// Fraction of point reads aimed at absent keys.
    pub miss_fraction: f64,
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            initial_records: 1 << 14,
            operations: 1 << 14,
            mix: OpMix::BALANCED,
            dist: KeyDist::Uniform,
            key_space: KeySpace::Dense { spacing: 1 },
            range_len: 64,
            miss_fraction: 0.0,
            seed: 0x52_55_4D, // "RUM"
        }
    }
}

/// A generated workload: the initial dataset (sorted, unique keys) and the
/// operation stream.
#[derive(Clone, Debug)]
pub struct Workload {
    pub initial: Vec<Record>,
    pub ops: Vec<Op>,
    pub spec_range_len: usize,
}

/// Deterministic value derivation so datasets are reproducible and
/// verifiable: each key's canonical payload.
#[inline]
pub fn value_for(key: Key, version: u64) -> Value {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.wrapping_mul(31))
        .wrapping_add(7)
}

/// YCSB-style zipfian rank generator (Gray et al., "Quickly generating
/// billion-record synthetic databases").
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Build a generator over ranks `0..n` with skew `theta` in (0,1).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Sample a rank in `0..n`; rank 0 is the hottest.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n - 1)
    }

    /// Re-target the generator at a different domain size, reusing the skew.
    pub fn resized(&self, n: usize) -> Zipfian {
        let mut z = self.clone();
        z.resize_to(n);
        z
    }

    /// Re-target the generator at a different domain size in place.
    ///
    /// `zetan` is maintained incrementally — `ζ(n±1) = ζ(n) ± (n±1)^-θ` —
    /// so tracking a live population that drifts by one key per operation
    /// costs O(|Δn|) instead of the O(n) full harmonic recomputation.
    pub fn resize_to(&mut self, n: usize) {
        assert!(n > 0, "zipfian over empty domain");
        if n == self.n {
            return;
        }
        if n.abs_diff(self.n) < n / 2 {
            while self.n < n {
                self.n += 1;
                self.zetan += 1.0 / (self.n as f64).powf(self.theta);
            }
            while self.n > n {
                self.zetan -= 1.0 / (self.n as f64).powf(self.theta);
                self.n -= 1;
            }
        } else {
            self.n = n;
            self.zetan = Self::zeta(n, self.theta);
        }
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

/// Tracks the live key population during generation so updates/deletes/gets
/// target existing keys and inserts target fresh keys.
struct LiveSet {
    keys: Vec<Key>,
    index: HashMap<Key, usize>,
}

impl LiveSet {
    fn new(keys: Vec<Key>) -> Self {
        let index = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        LiveSet { keys, index }
    }
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn contains(&self, k: Key) -> bool {
        self.index.contains_key(&k)
    }
    fn at(&self, i: usize) -> Key {
        self.keys[i]
    }
    fn insert(&mut self, k: Key) {
        if !self.contains(k) {
            self.index.insert(k, self.keys.len());
            self.keys.push(k);
        }
    }
    fn remove(&mut self, k: Key) {
        if let Some(i) = self.index.remove(&k) {
            let last = self.keys.len() - 1;
            self.keys.swap(i, last);
            self.keys.pop();
            if i < self.keys.len() {
                self.index.insert(self.keys[i], i);
            }
        }
    }
}

impl Workload {
    /// Generate a workload from a spec. Deterministic in `spec.seed`.
    pub fn generate(spec: &WorkloadSpec) -> Workload {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let initial = generate_initial(spec, &mut rng);
        let max_initial_key = initial.last().map(|r| r.key).unwrap_or(0);
        let mut live = LiveSet::new(initial.iter().map(|r| r.key).collect());

        // Fresh keys for inserts continue above the initial population so
        // they never collide with live keys.
        let mut next_fresh = max_initial_key + 1;
        let fresh_step = match spec.key_space {
            KeySpace::Dense { spacing } => spacing.max(1),
            KeySpace::Sparse { universe_factor } => universe_factor.max(1),
        };

        let mut zipf = match spec.dist {
            KeyDist::Zipf { theta } => Some(Zipfian::new(spec.initial_records.max(2), theta)),
            KeyDist::Uniform => None,
        };

        let total = spec.mix.total();
        assert!(total > 0.0, "operation mix has zero total weight");
        let thresholds = [
            spec.mix.get / total,
            (spec.mix.get + spec.mix.insert) / total,
            (spec.mix.get + spec.mix.insert + spec.mix.update) / total,
            (spec.mix.get + spec.mix.insert + spec.mix.update + spec.mix.delete) / total,
        ];

        let mut ops = Vec::with_capacity(spec.operations);
        let mut version: u64 = 1;
        // INSERT, also the fallback whenever an arm needs a live key and
        // none exists: every slot of the stream must emit an operation, or
        // the generated workload silently falls short of `spec.operations`
        // (an empty-start write-heavy spec could lose most of its slots).
        let fresh_insert =
            |live: &mut LiveSet, next_fresh: &mut Key, version: &mut u64, rng: &mut StdRng| {
                let k = *next_fresh;
                *next_fresh += fresh_step.max(1) + (rng.gen::<u64>() % fresh_step.max(1)) / 2;
                live.insert(k);
                *version += 1;
                Op::Insert(k, value_for(k, *version))
            };
        // Average key spacing, used to size range spans for a target result
        // count. Recomputed cheaply from the live population bounds.
        for _ in 0..spec.operations {
            let dice: f64 = rng.gen();
            let op = if dice < thresholds[0] {
                // GET
                if live.len() == 0 {
                    Op::Get(rng.gen())
                } else if spec.miss_fraction > 0.0 && rng.gen::<f64>() < spec.miss_fraction {
                    // A key extremely unlikely to be live.
                    let mut k: Key = rng.gen::<Key>() | (1 << 63);
                    while live.contains(k) {
                        k = rng.gen::<Key>() | (1 << 63);
                    }
                    Op::Get(k)
                } else {
                    Op::Get(pick_live(&live, &mut zipf, &mut rng))
                }
            } else if dice < thresholds[1] {
                fresh_insert(&mut live, &mut next_fresh, &mut version, &mut rng)
            } else if dice < thresholds[2] {
                // UPDATE
                if live.len() == 0 {
                    fresh_insert(&mut live, &mut next_fresh, &mut version, &mut rng)
                } else {
                    let k = pick_live(&live, &mut zipf, &mut rng);
                    version += 1;
                    Op::Update(k, value_for(k, version))
                }
            } else if dice < thresholds[3] {
                // DELETE
                if live.len() == 0 {
                    fresh_insert(&mut live, &mut next_fresh, &mut version, &mut rng)
                } else {
                    let k = pick_live(&live, &mut zipf, &mut rng);
                    live.remove(k);
                    Op::Delete(k)
                }
            } else {
                // RANGE: span sized so the expected result count ≈ range_len.
                if live.len() == 0 {
                    fresh_insert(&mut live, &mut next_fresh, &mut version, &mut rng)
                } else {
                    let lo = pick_live(&live, &mut zipf, &mut rng);
                    let span = expected_span(spec, next_fresh, live.len());
                    Op::Range(lo, lo.saturating_add(span))
                }
            };
            ops.push(op);
        }

        Workload {
            initial,
            ops,
            spec_range_len: spec.range_len,
        }
    }
}

/// Pick a live key: uniformly, or by zipfian rank over the *current* live
/// population. The zipfian generator is resized (incrementally — see
/// [`Zipfian::resize_to`]) to track the population, rather than sampling
/// over the initial size and wrapping with `% n`: the wrap aliased distinct
/// ranks onto the same slot (distorting the skew whenever the population
/// shrank) and could never reach keys inserted after generation started.
fn pick_live(live: &LiveSet, zipf: &mut Option<Zipfian>, rng: &mut StdRng) -> Key {
    let n = live.len();
    debug_assert!(n > 0);
    let rank = match zipf {
        Some(z) => {
            z.resize_to(n);
            z.sample(rng)
        }
        None => rng.gen_range(0..n),
    };
    live.at(rank)
}

fn expected_span(spec: &WorkloadSpec, key_high_watermark: Key, live: usize) -> u64 {
    let density_inverse = (key_high_watermark.max(1)) as f64 / live.max(1) as f64;
    ((spec.range_len as f64) * density_inverse).ceil() as u64
}

fn generate_initial(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<Record> {
    let n = spec.initial_records;
    let mut keys: Vec<Key> = match spec.key_space {
        KeySpace::Dense { spacing } => {
            let s = spacing.max(1);
            (0..n as u64).map(|i| i * s).collect()
        }
        KeySpace::Sparse { universe_factor } => {
            let universe = (n as u64).saturating_mul(universe_factor.max(1));
            let mut set = std::collections::HashSet::with_capacity(n);
            while set.len() < n {
                set.insert(rng.gen_range(0..universe.max(1)));
            }
            let mut v: Vec<Key> = set.into_iter().collect();
            v.sort_unstable();
            v
        }
    };
    keys.dedup();
    keys.into_iter()
        .map(|k| Record::new(k, value_for(k, 0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            initial_records: 1000,
            operations: 5000,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&spec());
        let b = Workload::generate(&spec());
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&spec());
        let mut s = spec();
        s.seed = 43;
        let b = Workload::generate(&s);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn initial_is_sorted_unique() {
        let w = Workload::generate(&WorkloadSpec {
            key_space: KeySpace::Sparse { universe_factor: 4 },
            ..spec()
        });
        assert_eq!(w.initial.len(), 1000);
        for pair in w.initial.windows(2) {
            assert!(pair[0].key < pair[1].key);
        }
    }

    #[test]
    fn dense_universe_is_contiguous() {
        let w = Workload::generate(&spec());
        for (i, r) in w.initial.iter().enumerate() {
            assert_eq!(r.key, i as u64);
        }
    }

    #[test]
    fn mix_ratios_are_respected() {
        let w = Workload::generate(&WorkloadSpec {
            operations: 20_000,
            mix: OpMix::READ_HEAVY,
            ..spec()
        });
        let gets = w.ops.iter().filter(|o| matches!(o, Op::Get(_))).count();
        let frac = gets as f64 / w.ops.len() as f64;
        assert!((frac - 0.95).abs() < 0.02, "get fraction {frac}");
    }

    #[test]
    fn updates_and_deletes_target_live_keys() {
        // Replay the stream against a model set and confirm every update /
        // delete hits a key that is live at that point.
        let w = Workload::generate(&WorkloadSpec {
            mix: OpMix::BALANCED,
            ..spec()
        });
        let mut live: std::collections::HashSet<Key> = w.initial.iter().map(|r| r.key).collect();
        for op in &w.ops {
            match *op {
                Op::Insert(k, _) => {
                    assert!(!live.contains(&k), "insert of live key {k}");
                    live.insert(k);
                }
                Op::Update(k, _) => assert!(live.contains(&k), "update of dead key {k}"),
                Op::Delete(k) => {
                    assert!(live.contains(&k), "delete of dead key {k}");
                    live.remove(&k);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn miss_fraction_generates_misses() {
        let w = Workload::generate(&WorkloadSpec {
            mix: OpMix::READ_ONLY,
            miss_fraction: 0.5,
            operations: 2000,
            ..spec()
        });
        let live: std::collections::HashSet<Key> = w.initial.iter().map(|r| r.key).collect();
        let misses = w
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Get(k) if !live.contains(k)))
            .count();
        let frac = misses as f64 / w.ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "miss fraction {frac}");
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 should be far hotter than rank 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // And the head should dominate: top-10 ranks > 30% of mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 30_000, "head mass {head}");
    }

    #[test]
    fn zipfian_resized_keeps_domain() {
        let z = Zipfian::new(100, 0.5).resized(10);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn zipfian_incremental_resize_matches_fresh_construction() {
        // Drift a generator up and down one step at a time; its state must
        // track what a from-scratch construction would compute.
        let theta = 0.99;
        let mut z = Zipfian::new(500, theta);
        for n in (2..=600).chain((2..600).rev()).chain([250, 500]) {
            z.resize_to(n);
            let fresh = Zipfian::new(n, theta);
            assert!(
                (z.zetan - fresh.zetan).abs() < 1e-9 * fresh.zetan,
                "n={n}: drifted zetan {} vs fresh {}",
                z.zetan,
                fresh.zetan
            );
            // At n=2 eta is 0/0 (never consulted: sampling short-circuits
            // to ranks 0/1 first), so only finite etas are comparable.
            if fresh.eta.is_finite() {
                assert!((z.eta - fresh.eta).abs() < 1e-6, "n={n}: eta drifted");
            }
        }
    }

    #[test]
    fn op_count_always_matches_spec() {
        // Every slot of the stream must emit an operation — including from
        // an empty initial population, where update/delete/range arms have
        // no live key and must fall back to an insert.
        let drain = OpMix {
            get: 0.0,
            insert: 0.0,
            update: 0.3,
            delete: 0.6,
            range: 0.1,
        };
        for mix in [
            OpMix::BALANCED,
            OpMix::READ_HEAVY,
            OpMix::WRITE_HEAVY,
            OpMix::SCAN_HEAVY,
            drain,
        ] {
            for initial in [0usize, 1, 1000] {
                for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.99 }] {
                    let w = Workload::generate(&WorkloadSpec {
                        initial_records: initial,
                        operations: 3000,
                        mix,
                        dist,
                        seed: 9,
                        ..Default::default()
                    });
                    assert_eq!(
                        w.ops.len(),
                        3000,
                        "short stream for mix {mix:?}, initial {initial}, dist {dist:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zipfian_stream_reaches_keys_inserted_mid_stream() {
        // The zipfian picker must cover the *current* live population; the
        // old `sample() % n` over the initial size could never rank past
        // the initial population, so keys inserted mid-stream were
        // unreachable by gets and updates.
        let w = Workload::generate(&WorkloadSpec {
            initial_records: 50,
            operations: 5000,
            mix: OpMix {
                get: 0.5,
                insert: 0.3,
                update: 0.2,
                delete: 0.0,
                range: 0.0,
            },
            dist: KeyDist::Zipf { theta: 0.9 },
            seed: 21,
            ..Default::default()
        });
        let max_initial = w.initial.last().unwrap().key;
        let touched_new = w
            .ops
            .iter()
            .any(|op| matches!(*op, Op::Get(k) | Op::Update(k, _) if k > max_initial));
        assert!(
            touched_new,
            "no get/update ever reached a mid-stream insert"
        );
    }

    #[test]
    fn value_for_versions_differ() {
        assert_ne!(value_for(5, 0), value_for(5, 1));
        assert_ne!(value_for(5, 0), value_for(6, 0));
    }
}
