//! Instrumented cost accounting — the measurement core of the reproduction.
//!
//! Every access method charges a [`CostTracker`] as it touches data. The
//! tracker distinguishes:
//!
//! * **physical** traffic, split into *base* data (the records themselves)
//!   and *auxiliary* data (index nodes, filters, metadata, extra copies);
//! * **logical** traffic: the bytes a query actually retrieves, or the bytes
//!   a logical update changes.
//!
//! The paper's three overheads fall straight out of these counters:
//!
//! * `RO = physical bytes read / logical bytes read` (read amplification),
//! * `UO = physical bytes written / logical bytes written` (write
//!   amplification),
//! * `MO` comes from [`SpaceProfile`](crate::access::SpaceProfile), not from
//!   the tracker, because space is a state property rather than a traffic
//!   property.
//!
//! Counters are atomic so a tracker can be shared (`Arc<CostTracker>`)
//! between an access method and the storage substrate beneath it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a physical access touched base data or auxiliary data.
///
/// The distinction mirrors the paper's §2: the overheads "quantify the
/// additional data accesses to support any operation, relative to the base
/// data".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// The records themselves (or a copy of them, e.g. an LSM run).
    Base,
    /// Index nodes, fence pointers, filters, directories, zone metadata...
    Aux,
}

/// Shared, atomic counter set. All units are bytes or page counts.
#[derive(Debug, Default)]
pub struct CostTracker {
    base_read_bytes: AtomicU64,
    aux_read_bytes: AtomicU64,
    base_write_bytes: AtomicU64,
    aux_write_bytes: AtomicU64,
    logical_read_bytes: AtomicU64,
    logical_write_bytes: AtomicU64,
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    /// Simulated device time, charged by the storage cost model.
    sim_time_ns: AtomicU64,
}

impl CostTracker {
    /// Create a fresh tracker wrapped in an [`Arc`] for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Charge a physical read of `bytes` bytes of `class` data.
    #[inline]
    pub fn read(&self, class: DataClass, bytes: u64) {
        match class {
            DataClass::Base => self.base_read_bytes.fetch_add(bytes, Ordering::Relaxed),
            DataClass::Aux => self.aux_read_bytes.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    /// Charge a physical write of `bytes` bytes of `class` data.
    #[inline]
    pub fn write(&self, class: DataClass, bytes: u64) {
        match class {
            DataClass::Base => self.base_write_bytes.fetch_add(bytes, Ordering::Relaxed),
            DataClass::Aux => self.aux_write_bytes.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    /// Record that a query retrieved `bytes` bytes of useful data
    /// (the denominator of read amplification).
    #[inline]
    pub fn logical_read(&self, bytes: u64) {
        self.logical_read_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that `bytes` bytes were logically updated
    /// (the denominator of write amplification).
    #[inline]
    pub fn logical_write(&self, bytes: u64) {
        self.logical_write_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Charge one whole-page read (page-granular devices call this in
    /// addition to [`read`](Self::read)).
    #[inline]
    pub fn page_read(&self) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge one whole-page write.
    #[inline]
    pub fn page_write(&self) {
        self.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge simulated device time.
    #[inline]
    pub fn sim_time(&self, ns: u64) {
        self.sim_time_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            base_read_bytes: self.base_read_bytes.load(Ordering::Relaxed),
            aux_read_bytes: self.aux_read_bytes.load(Ordering::Relaxed),
            base_write_bytes: self.base_write_bytes.load(Ordering::Relaxed),
            aux_write_bytes: self.aux_write_bytes.load(Ordering::Relaxed),
            logical_read_bytes: self.logical_read_bytes.load(Ordering::Relaxed),
            logical_write_bytes: self.logical_write_bytes.load(Ordering::Relaxed),
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            sim_time_ns: self.sim_time_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.base_read_bytes.store(0, Ordering::Relaxed);
        self.aux_read_bytes.store(0, Ordering::Relaxed);
        self.base_write_bytes.store(0, Ordering::Relaxed);
        self.aux_write_bytes.store(0, Ordering::Relaxed);
        self.logical_read_bytes.store(0, Ordering::Relaxed);
        self.logical_write_bytes.store(0, Ordering::Relaxed);
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.sim_time_ns.store(0, Ordering::Relaxed);
    }

    /// Counters accumulated since `earlier` was captured.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        self.snapshot().delta(earlier)
    }

    /// Add a whole snapshot (usually a delta from another tracker) into
    /// this tracker's counters. This is how a sharded wrapper folds the
    /// traffic its inner shards accrued on their private trackers into the
    /// tracker the measurement harness watches: u64 sums commute, so the
    /// merged totals are identical no matter which order (or from which
    /// worker thread) the deltas arrive.
    pub fn absorb(&self, d: &CostSnapshot) {
        self.base_read_bytes
            .fetch_add(d.base_read_bytes, Ordering::Relaxed);
        self.aux_read_bytes
            .fetch_add(d.aux_read_bytes, Ordering::Relaxed);
        self.base_write_bytes
            .fetch_add(d.base_write_bytes, Ordering::Relaxed);
        self.aux_write_bytes
            .fetch_add(d.aux_write_bytes, Ordering::Relaxed);
        self.logical_read_bytes
            .fetch_add(d.logical_read_bytes, Ordering::Relaxed);
        self.logical_write_bytes
            .fetch_add(d.logical_write_bytes, Ordering::Relaxed);
        self.page_reads.fetch_add(d.page_reads, Ordering::Relaxed);
        self.page_writes.fetch_add(d.page_writes, Ordering::Relaxed);
        self.sim_time_ns.fetch_add(d.sim_time_ns, Ordering::Relaxed);
    }
}

/// A frozen view of a [`CostTracker`], or a delta between two views.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    pub base_read_bytes: u64,
    pub aux_read_bytes: u64,
    pub base_write_bytes: u64,
    pub aux_write_bytes: u64,
    pub logical_read_bytes: u64,
    pub logical_write_bytes: u64,
    pub page_reads: u64,
    pub page_writes: u64,
    pub sim_time_ns: u64,
}

impl CostSnapshot {
    /// Pointwise difference `self - earlier` (saturating, so a reset between
    /// snapshots degrades gracefully instead of panicking).
    pub fn delta(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            base_read_bytes: self.base_read_bytes.saturating_sub(earlier.base_read_bytes),
            aux_read_bytes: self.aux_read_bytes.saturating_sub(earlier.aux_read_bytes),
            base_write_bytes: self
                .base_write_bytes
                .saturating_sub(earlier.base_write_bytes),
            aux_write_bytes: self.aux_write_bytes.saturating_sub(earlier.aux_write_bytes),
            logical_read_bytes: self
                .logical_read_bytes
                .saturating_sub(earlier.logical_read_bytes),
            logical_write_bytes: self
                .logical_write_bytes
                .saturating_sub(earlier.logical_write_bytes),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            sim_time_ns: self.sim_time_ns.saturating_sub(earlier.sim_time_ns),
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            base_read_bytes: self.base_read_bytes + other.base_read_bytes,
            aux_read_bytes: self.aux_read_bytes + other.aux_read_bytes,
            base_write_bytes: self.base_write_bytes + other.base_write_bytes,
            aux_write_bytes: self.aux_write_bytes + other.aux_write_bytes,
            logical_read_bytes: self.logical_read_bytes + other.logical_read_bytes,
            logical_write_bytes: self.logical_write_bytes + other.logical_write_bytes,
            page_reads: self.page_reads + other.page_reads,
            page_writes: self.page_writes + other.page_writes,
            sim_time_ns: self.sim_time_ns + other.sim_time_ns,
        }
    }

    /// Total physical bytes read (base + auxiliary).
    #[inline]
    pub fn total_read_bytes(&self) -> u64 {
        self.base_read_bytes + self.aux_read_bytes
    }

    /// Total physical bytes written (base + auxiliary).
    #[inline]
    pub fn total_write_bytes(&self) -> u64 {
        self.base_write_bytes + self.aux_write_bytes
    }

    /// Total page accesses (reads + writes) — the unit of Table 1.
    #[inline]
    pub fn page_accesses(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Read amplification per the paper's definition of RO:
    /// "the ratio between the total amount of data read including auxiliary
    /// and base data, divided by the amount of retrieved data".
    ///
    /// Returns `f64::INFINITY` when data was read but nothing was retrieved
    /// (e.g. a workload of misses), and `1.0` when nothing happened at all.
    pub fn read_amplification(&self) -> f64 {
        ratio(self.total_read_bytes(), self.logical_read_bytes)
    }

    /// Write amplification per the paper's definition of UO:
    /// "the ratio between the size of the physical updates performed for one
    /// logical update, divided by the size of the logical update".
    pub fn write_amplification(&self) -> f64 {
        ratio(self.total_write_bytes(), self.logical_write_bytes)
    }
}

fn ratio(numer: u64, denom: u64) -> f64 {
    match (numer, denom) {
        (0, 0) => 1.0,
        (_, 0) => f64::INFINITY,
        (n, d) => n as f64 / d as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let t = CostTracker::new();
        t.read(DataClass::Base, 100);
        t.read(DataClass::Aux, 50);
        t.write(DataClass::Base, 30);
        t.write(DataClass::Aux, 20);
        t.logical_read(25);
        t.logical_write(10);
        t.page_read();
        t.page_read();
        t.page_write();
        let s = t.snapshot();
        assert_eq!(s.total_read_bytes(), 150);
        assert_eq!(s.total_write_bytes(), 50);
        assert_eq!(s.page_accesses(), 3);
        assert!((s.read_amplification() - 6.0).abs() < 1e-12);
        assert!((s.write_amplification() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_neutral() {
        let s = CostSnapshot::default();
        assert_eq!(s.read_amplification(), 1.0);
        assert_eq!(s.write_amplification(), 1.0);
    }

    #[test]
    fn miss_only_workload_is_infinite_amplification() {
        let t = CostTracker::new();
        t.read(DataClass::Aux, 4096);
        assert!(t.snapshot().read_amplification().is_infinite());
    }

    #[test]
    fn delta_isolates_an_operation() {
        let t = CostTracker::new();
        t.read(DataClass::Base, 100);
        let before = t.snapshot();
        t.read(DataClass::Base, 40);
        t.logical_read(10);
        let d = t.since(&before);
        assert_eq!(d.base_read_bytes, 40);
        assert_eq!(d.logical_read_bytes, 10);
        assert!((d.read_amplification() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = CostTracker::new();
        t.read(DataClass::Base, 1);
        t.write(DataClass::Aux, 2);
        t.page_read();
        t.sim_time(99);
        t.reset();
        assert_eq!(t.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn absorb_merges_another_trackers_delta() {
        let a = CostTracker::new();
        let b = CostTracker::new();
        a.read(DataClass::Base, 100);
        b.read(DataClass::Aux, 7);
        b.logical_write(3);
        b.page_write();
        b.sim_time(11);
        a.absorb(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.base_read_bytes, 100);
        assert_eq!(s.aux_read_bytes, 7);
        assert_eq!(s.logical_write_bytes, 3);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.sim_time_ns, 11);
    }

    #[test]
    fn add_is_pointwise() {
        let a = CostSnapshot {
            base_read_bytes: 1,
            page_reads: 2,
            ..Default::default()
        };
        let b = CostSnapshot {
            base_read_bytes: 10,
            page_reads: 20,
            ..Default::default()
        };
        let c = a.add(&b);
        assert_eq!(c.base_read_bytes, 11);
        assert_eq!(c.page_reads, 22);
    }

    #[test]
    fn shared_across_threads() {
        let t = CostTracker::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.read(DataClass::Base, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.snapshot().base_read_bytes, 4000);
    }
}
