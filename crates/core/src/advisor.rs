//! The data-driven half of the §5 access-method wizard.
//!
//! [`crate::wizard`] ranks the Table 1 families from closed-form cost
//! formulas. This module ranks the same families from **measured**
//! [`RumReport`]s: a [`ProfileStore`] ingests reports produced by
//! [`run_suite_stream`](crate::runner::run_suite_stream) across a grid of
//! operation mixes × key distributions × scales, and
//! [`ProfileStore::recommend_measured`] answers the same question the
//! analytic [`recommend`](crate::wizard::recommend) answers — *which family
//! should serve this workload?* — from data instead of formulas.
//!
//! Because both rankings exist side by side, the advisor doubles as a
//! calibration check of the paper's cost model: every measured
//! recommendation carries the analytic expectation and a [`Deviation`]
//! naming the Table 1 term (read, write, or space) where model and
//! measurement disagree the most.
//!
//! ## Cost units
//!
//! Analytic Table 1 costs are page accesses per operation. Measured costs
//! are physical bytes per operation divided by [`PAGE_SIZE`] —
//! "page-equivalents" — so byte-granular in-memory methods (which never
//! charge whole page accesses) and page-granular methods land on one
//! comparable axis.
//!
//! ## Fallback semantics
//!
//! An empty or partial profile store never panics: a family with no
//! measured profile is ranked by its analytic cost and flagged
//! `calibrated: false`, and the ranking as a whole reports whether every
//! family was calibrated.
//!
//! ## Persistence
//!
//! [`ProfileStore::to_csv`] / [`ProfileStore::from_csv`] round-trip the
//! store through a serde-free CSV format (one row per measured point, f64s
//! in Rust's shortest-roundtrip `Display` form, so re-parsing is exact).
//! The `advisor` binary in `rum-bench` persists this under
//! `results/advisor_profiles.csv`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Result, RumError};
use crate::runner::RumReport;
use crate::types::PAGE_SIZE;
use crate::wizard::{profile, Constraints, Environment, Family, FamilyProfile};
use crate::workload::{KeyDist, OpMix, WorkloadSpec};

/// Stable label for the key distribution of a measured point.
pub fn dist_label(dist: &KeyDist) -> String {
    match dist {
        KeyDist::Uniform => "uniform".to_string(),
        KeyDist::Zipf { theta } => format!("zipf:{theta}"),
    }
}

/// One measured data point of one method: the RUM profile and the per-op-
/// class costs of one (mix, distribution, scale) grid cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfilePoint {
    /// Initial live-set size of the workload (the scale axis).
    pub scale: usize,
    /// Operations executed over that live set.
    pub operations: usize,
    /// Normalized operation mix the point was measured under.
    pub mix: OpMix,
    /// Key distribution label ([`dist_label`]).
    pub dist: String,
    /// Measured read amplification.
    pub ro: f64,
    /// Measured write amplification.
    pub uo: f64,
    /// Measured space amplification.
    pub mo: f64,
    /// Physical bytes per read-class op, in pages ([`PAGE_SIZE`] units).
    pub read_cost: f64,
    /// Physical bytes per write-class op, in pages.
    pub write_cost: f64,
    /// Read-class ops behind this point (aggregation weight).
    pub read_ops: u64,
    /// Write-class ops behind this point (aggregation weight).
    pub write_ops: u64,
}

impl ProfilePoint {
    /// Distill one suite report (plus the spec it ran under) into a point.
    pub fn from_report(spec: &WorkloadSpec, report: &RumReport) -> ProfilePoint {
        let page = PAGE_SIZE as f64;
        let read_bytes =
            report.read_costs.total_read_bytes() + report.read_costs.total_write_bytes();
        let write_bytes =
            report.write_costs.total_read_bytes() + report.write_costs.total_write_bytes();
        ProfilePoint {
            scale: spec.initial_records,
            operations: spec.operations,
            mix: normalize_mix(&spec.mix),
            dist: dist_label(&spec.dist),
            ro: report.ro,
            uo: report.uo,
            mo: report.mo,
            read_cost: ratio(read_bytes as f64 / page, report.read_ops),
            write_cost: ratio(write_bytes as f64 / page, report.write_ops),
            read_ops: report.read_ops,
            write_ops: report.write_ops,
        }
    }
}

fn ratio(total: f64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        total / ops as f64
    }
}

/// `mix` scaled so its five frequencies sum to 1 (an all-zero mix becomes
/// pure point reads rather than NaN).
pub fn normalize_mix(mix: &OpMix) -> OpMix {
    let total = mix.get + mix.insert + mix.update + mix.delete + mix.range;
    if total <= 0.0 {
        return OpMix {
            get: 1.0,
            insert: 0.0,
            update: 0.0,
            delete: 0.0,
            range: 0.0,
        };
    }
    OpMix {
        get: mix.get / total,
        insert: mix.insert / total,
        update: mix.update / total,
        delete: mix.delete / total,
        range: mix.range / total,
    }
}

/// L1 distance between two normalized mixes (0 = identical, 2 = disjoint).
pub fn mix_distance(a: &OpMix, b: &OpMix) -> f64 {
    (a.get - b.get).abs()
        + (a.insert - b.insert).abs()
        + (a.update - b.update).abs()
        + (a.delete - b.delete).abs()
        + (a.range - b.range).abs()
}

/// Canonical grouping key for a normalized mix: exact shortest-roundtrip
/// rendering of the five frequencies, so points measured under the same
/// preset always land in the same group.
fn mix_key(mix: &OpMix) -> String {
    format!(
        "{},{},{},{},{}",
        mix.get, mix.insert, mix.update, mix.delete, mix.range
    )
}

/// The empirical profile of one access method: every measured point,
/// sorted deterministically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MethodProfile {
    pub points: Vec<ProfilePoint>,
}

impl MethodProfile {
    fn sort(&mut self) {
        self.points.sort_by(|a, b| {
            a.scale
                .cmp(&b.scale)
                .then_with(|| a.dist.cmp(&b.dist))
                .then_with(|| mix_key(&a.mix).cmp(&mix_key(&b.mix)))
                .then_with(|| a.operations.cmp(&b.operations))
        });
    }
}

/// Per-method empirical profiles built from measured [`RumReport`]s.
///
/// Methods are keyed by their report name (`b+tree`, `lsm-tree`, ...); the
/// seven wizard families map onto suite methods through
/// [`Family::suite_method`].
#[derive(Debug, Default)]
pub struct ProfileStore {
    profiles: BTreeMap<String, MethodProfile>,
    /// Grid re-aggregations performed by [`Self::recommend_measured`]
    /// (one per calibrated family per uncached call) — the work
    /// [`AdvisorMemo`] exists to avoid; tests pin the memo against it.
    aggregations: AtomicU64,
}

impl Clone for ProfileStore {
    fn clone(&self) -> Self {
        ProfileStore {
            profiles: self.profiles.clone(),
            aggregations: AtomicU64::new(self.aggregations.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for ProfileStore {
    fn eq(&self, other: &Self) -> bool {
        // The aggregation counter is instrumentation, not state.
        self.profiles == other.profiles
    }
}

impl ProfileStore {
    pub fn new() -> ProfileStore {
        ProfileStore::default()
    }

    /// Ingest every report of one suite run measured under `spec`.
    pub fn ingest(&mut self, spec: &WorkloadSpec, reports: &[RumReport]) {
        for report in reports {
            self.add_point(&report.method, ProfilePoint::from_report(spec, report));
        }
    }

    /// Add one pre-distilled point (the ingestion primitive; also what the
    /// CSV loader and the property tests use).
    pub fn add_point(&mut self, method: &str, point: ProfilePoint) {
        let profile = self.profiles.entry(method.to_string()).or_default();
        profile.points.push(point);
        profile.sort();
    }

    /// The profile measured for `method`, if any.
    pub fn get(&self, method: &str) -> Option<&MethodProfile> {
        self.profiles.get(method)
    }

    /// Profiled method names, sorted.
    pub fn methods(&self) -> impl Iterator<Item = &str> {
        self.profiles.keys().map(|s| s.as_str())
    }

    /// Number of profiled methods.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Total measured points across all methods.
    pub fn point_count(&self) -> usize {
        self.profiles.values().map(|p| p.points.len()).sum()
    }

    /// How many profile-grid aggregations [`Self::recommend_measured`]
    /// has performed on this store. Each
    /// uncached recommendation re-aggregates every calibrated family's
    /// grid; [`AdvisorMemo`] keeps this flat across repeated queries.
    pub fn aggregations(&self) -> u64 {
        self.aggregations.load(Ordering::Relaxed)
    }

    /// Serialize the store as CSV (header + one row per point). Floats use
    /// Rust's shortest-roundtrip `Display`, so [`ProfileStore::from_csv`]
    /// reconstructs the store exactly.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for (method, profile) in &self.profiles {
            for p in &profile.points {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    method,
                    p.scale,
                    p.operations,
                    p.dist,
                    p.mix.get,
                    p.mix.insert,
                    p.mix.update,
                    p.mix.delete,
                    p.mix.range,
                    p.ro,
                    p.uo,
                    p.mo,
                    p.read_cost,
                    p.write_cost,
                ));
                out.truncate(out.len() - 1);
                out.push_str(&format!(",{},{}\n", p.read_ops, p.write_ops));
            }
        }
        out
    }

    /// Parse a store back from [`ProfileStore::to_csv`] output.
    pub fn from_csv(text: &str) -> Result<ProfileStore> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| RumError::Corrupt("empty profile CSV".into()))?;
        if header.trim() != CSV_HEADER {
            return Err(RumError::Corrupt(format!(
                "unexpected profile CSV header: {header:?}"
            )));
        }
        let mut store = ProfileStore::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 16 {
                return Err(RumError::Corrupt(format!(
                    "profile CSV row {} has {} fields, expected 16",
                    i + 2,
                    fields.len()
                )));
            }
            let num = |j: usize| -> Result<f64> {
                fields[j].parse::<f64>().map_err(|e| {
                    RumError::Corrupt(format!("profile CSV row {}: field {j}: {e}", i + 2))
                })
            };
            let int = |j: usize| -> Result<u64> {
                fields[j].parse::<u64>().map_err(|e| {
                    RumError::Corrupt(format!("profile CSV row {}: field {j}: {e}", i + 2))
                })
            };
            let point = ProfilePoint {
                scale: int(1)? as usize,
                operations: int(2)? as usize,
                dist: fields[3].to_string(),
                mix: OpMix {
                    get: num(4)?,
                    insert: num(5)?,
                    update: num(6)?,
                    delete: num(7)?,
                    range: num(8)?,
                },
                ro: num(9)?,
                uo: num(10)?,
                mo: num(11)?,
                read_cost: num(12)?,
                write_cost: num(13)?,
                read_ops: int(14)?,
                write_ops: int(15)?,
            };
            store.add_point(fields[0], point);
        }
        Ok(store)
    }

    /// Rank every wizard [`Family`] for `mix` from the measured profiles,
    /// enforcing `cons` against **measured** amplifications.
    ///
    /// Families whose suite method has no measured profile fall back to the
    /// analytic wizard ([`profile`]) and are flagged `calibrated: false`;
    /// an entirely empty store therefore reproduces the analytic ranking.
    pub fn recommend_measured(
        &self,
        mix: &OpMix,
        env: &Environment,
        cons: &Constraints,
    ) -> MeasuredRanking {
        let query = normalize_mix(mix);
        let read_frac = query.get + query.range;
        let write_frac = query.insert + query.update + query.delete;
        let mut recs: Vec<MeasuredRecommendation> = Family::ALL
            .iter()
            .map(|&family| {
                let analytic = profile(family, env);
                // Blend over the raw mix (expected_cost normalizes
                // internally) so the uncalibrated fallback reproduces the
                // analytic wizard's costs bit-for-bit.
                let analytic_cost = analytic.expected_cost(mix);
                let measured = self.get(family.suite_method()).and_then(|p| {
                    self.aggregations.fetch_add(1, Ordering::Relaxed);
                    calibrate(p, &query, env.n)
                });
                match measured {
                    Some(m) => {
                        let expected_cost = read_frac * m.read_cost + write_frac * m.write_cost;
                        let violations = violations(cons, &analytic, m.ro, m.uo, m.mo, "measured");
                        let deviation = deviation(family, &analytic, &query, &m);
                        MeasuredRecommendation {
                            family,
                            method: family.suite_method(),
                            expected_cost,
                            analytic_cost,
                            measured: Some(m),
                            calibrated: true,
                            feasible: violations.is_empty(),
                            violations,
                            deviation,
                        }
                    }
                    None => {
                        let violations = violations(
                            cons,
                            &analytic,
                            analytic.read_amp,
                            analytic.write_amp,
                            analytic.space_amp,
                            "analytic",
                        );
                        MeasuredRecommendation {
                            family,
                            method: family.suite_method(),
                            expected_cost: analytic_cost,
                            analytic_cost,
                            measured: None,
                            calibrated: false,
                            feasible: violations.is_empty(),
                            violations,
                            deviation: None,
                        }
                    }
                }
            })
            .collect();
        recs.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(a.expected_cost.total_cmp(&b.expected_cost))
        });
        let calibrated = recs.iter().all(|r| r.calibrated);
        MeasuredRanking { recs, calibrated }
    }
}

const CSV_HEADER: &str = "method,scale,operations,dist,get,insert,update,delete,range,\
ro,uo,mo,read_cost,write_cost,read_ops,write_ops";

/// The interpolated empirical profile of one method at one query scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredProfile {
    pub ro: f64,
    pub uo: f64,
    pub mo: f64,
    /// Pages (byte-equivalents) per read-class op.
    pub read_cost: f64,
    /// Pages per write-class op.
    pub write_cost: f64,
}

/// Interpolate a method's profile at scale `n` for the grid mix nearest to
/// `query`.
///
/// Points of the nearest mix are aggregated across key distributions at
/// each scale (op-count weighted), then each metric is interpolated
/// piecewise-linearly in `ln n` between bracketing scales (clamped at the
/// measured extremes — the advisor never extrapolates past its data).
fn calibrate(profile: &MethodProfile, query: &OpMix, n: usize) -> Option<MeasuredProfile> {
    // Nearest measured mix, deterministic tie-break on the canonical key.
    let mut groups: BTreeMap<String, (f64, Vec<&ProfilePoint>)> = BTreeMap::new();
    for p in &profile.points {
        let entry = groups
            .entry(mix_key(&p.mix))
            .or_insert_with(|| (mix_distance(&p.mix, query), Vec::new()));
        entry.1.push(p);
    }
    let (_, (_, points)) = groups
        .into_iter()
        .map(|(k, v)| ((v.0, k.clone()), v))
        .min_by(|a, b| a.0 .0.total_cmp(&b.0 .0).then(a.0 .1.cmp(&b.0 .1)))?;

    // Aggregate across distributions per scale.
    let mut by_scale: BTreeMap<usize, Vec<&ProfilePoint>> = BTreeMap::new();
    for p in points {
        by_scale.entry(p.scale).or_default().push(p);
    }
    let curve: Vec<(f64, MeasuredProfile)> = by_scale
        .into_iter()
        .map(|(scale, pts)| {
            let read_w: u64 = pts.iter().map(|p| p.read_ops).sum();
            let write_w: u64 = pts.iter().map(|p| p.write_ops).sum();
            let wmean = |f: fn(&ProfilePoint) -> f64, w: fn(&ProfilePoint) -> u64, total: u64| {
                if total == 0 {
                    0.0
                } else {
                    pts.iter().map(|p| f(p) * w(p) as f64).sum::<f64>() / total as f64
                }
            };
            let mo = pts.iter().map(|p| p.mo).sum::<f64>() / pts.len() as f64;
            (
                (scale.max(1) as f64).ln(),
                MeasuredProfile {
                    ro: wmean(|p| p.ro, |p| p.read_ops, read_w),
                    uo: wmean(|p| p.uo, |p| p.write_ops, write_w),
                    mo,
                    read_cost: wmean(|p| p.read_cost, |p| p.read_ops, read_w),
                    write_cost: wmean(|p| p.write_cost, |p| p.write_ops, write_w),
                },
            )
        })
        .collect();
    if curve.is_empty() {
        return None;
    }

    let x = (n.max(1) as f64).ln();
    let first = &curve[0];
    let last = &curve[curve.len() - 1];
    if x <= first.0 {
        return Some(first.1);
    }
    if x >= last.0 {
        return Some(last.1);
    }
    let i = curve.partition_point(|(s, _)| *s <= x);
    let (x0, a) = &curve[i - 1];
    let (x1, b) = &curve[i];
    let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
    let lerp = |a: f64, b: f64| a + (b - a) * t;
    Some(MeasuredProfile {
        ro: lerp(a.ro, b.ro),
        uo: lerp(a.uo, b.uo),
        mo: lerp(a.mo, b.mo),
        read_cost: lerp(a.read_cost, b.read_cost),
        write_cost: lerp(a.write_cost, b.write_cost),
    })
}

fn violations(
    cons: &Constraints,
    analytic: &FamilyProfile,
    ro: f64,
    uo: f64,
    mo: f64,
    source: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    if cons.needs_ranges && !analytic.supports_ranges {
        out.push("range queries unsupported".to_string());
    }
    if let Some(cap) = cons.max_read_amp {
        if ro > cap {
            out.push(format!("{source} read amp {ro:.1} > cap {cap:.1}"));
        }
    }
    if let Some(cap) = cons.max_write_amp {
        if uo > cap {
            out.push(format!("{source} write amp {uo:.1} > cap {cap:.1}"));
        }
    }
    if let Some(cap) = cons.max_space_amp {
        if mo > cap {
            out.push(format!("{source} space amp {mo:.2} > cap {cap:.2}"));
        }
    }
    out
}

/// Where the analytic Table 1 model disagrees with the measurement the
/// most, for one family under one mix.
#[derive(Clone, Debug)]
pub struct Deviation {
    /// `"read"`, `"write"`, or `"space"`.
    pub metric: &'static str,
    /// The Table 1 term behind that metric
    /// ([`Family::read_term`] / [`Family::write_term`] / [`Family::space_term`]).
    pub term: &'static str,
    pub analytic: f64,
    pub measured: f64,
    /// `measured / analytic` — how far off the model is (>1 = model
    /// undershoots the real cost).
    pub ratio: f64,
}

/// Compare the analytic per-class costs and space model against the
/// measured profile; return the most-off term (largest `|ln ratio|`).
fn deviation(
    family: Family,
    analytic: &FamilyProfile,
    query: &OpMix,
    measured: &MeasuredProfile,
) -> Option<Deviation> {
    let read_frac = query.get + query.range;
    let write_frac = query.insert + query.update + query.delete;
    let mut candidates: Vec<Deviation> = Vec::new();
    if read_frac > 0.0 {
        let analytic_read =
            (query.get * analytic.point_cost + query.range * analytic.range_cost) / read_frac;
        push_candidate(
            &mut candidates,
            "read",
            family.read_term(),
            analytic_read,
            measured.read_cost,
        );
    }
    if write_frac > 0.0 {
        let analytic_write = (query.insert * analytic.insert_cost
            + query.update * analytic.update_cost
            + query.delete * analytic.delete_cost)
            / write_frac;
        push_candidate(
            &mut candidates,
            "write",
            family.write_term(),
            analytic_write,
            measured.write_cost,
        );
    }
    push_candidate(
        &mut candidates,
        "space",
        family.space_term(),
        analytic.space_amp,
        measured.mo,
    );
    candidates.into_iter().max_by(|a, b| {
        a.ratio
            .abs()
            .ln()
            .abs()
            .total_cmp(&b.ratio.abs().ln().abs())
    })
}

fn push_candidate(
    out: &mut Vec<Deviation>,
    metric: &'static str,
    term: &'static str,
    analytic: f64,
    measured: f64,
) {
    if analytic > 0.0 && measured > 0.0 {
        out.push(Deviation {
            metric,
            term,
            analytic,
            measured,
            ratio: measured / analytic,
        });
    }
}

/// One family's measured ranking entry.
#[derive(Clone, Debug)]
pub struct MeasuredRecommendation {
    pub family: Family,
    /// Suite method the family is calibrated from.
    pub method: &'static str,
    /// Expected cost per op under the query mix: measured page-equivalents
    /// when calibrated, the analytic Table 1 blend otherwise.
    pub expected_cost: f64,
    /// The analytic wizard's expected cost for the same mix/environment.
    pub analytic_cost: f64,
    /// Interpolated measured profile (None when uncalibrated).
    pub measured: Option<MeasuredProfile>,
    /// Whether this entry is backed by measurements.
    pub calibrated: bool,
    pub feasible: bool,
    pub violations: Vec<String>,
    /// Analytic-vs-measured disagreement, when calibrated.
    pub deviation: Option<Deviation>,
}

/// The full measured ranking (feasible families first, then by expected
/// cost), plus whether *every* family was backed by measurements.
#[derive(Clone, Debug)]
pub struct MeasuredRanking {
    pub recs: Vec<MeasuredRecommendation>,
    /// False when any family fell back to the analytic model.
    pub calibrated: bool,
}

impl MeasuredRanking {
    /// The best feasible entry (or the overall best when nothing is
    /// feasible — mirroring the analytic wizard's ordering contract).
    pub fn top(&self) -> Option<&MeasuredRecommendation> {
        self.recs.first()
    }
}

/// Cache key for [`AdvisorMemo`]: the query mix quantized into 1/64
/// buckets plus the exact environment and constraints. Quantizing the mix
/// is what makes the memo effective online — successive trajectory-window
/// estimates of the same regime land in the same bucket even though the
/// floats differ in the last bits.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct MemoKey {
    mix: [u16; 5],
    n: usize,
    m: usize,
    partition: usize,
    size_ratio: usize,
    caps: [u64; 3],
    needs_ranges: bool,
}

impl MemoKey {
    const BUCKETS: f64 = 64.0;

    fn new(mix: &OpMix, env: &Environment, cons: &Constraints) -> MemoKey {
        let q = normalize_mix(mix);
        let b = |f: f64| (f * Self::BUCKETS).round() as u16;
        MemoKey {
            mix: [b(q.get), b(q.insert), b(q.update), b(q.delete), b(q.range)],
            n: env.n,
            m: env.m,
            partition: env.partition,
            size_ratio: env.size_ratio,
            caps: [
                cons.max_read_amp.unwrap_or(f64::INFINITY).to_bits(),
                cons.max_write_amp.unwrap_or(f64::INFINITY).to_bits(),
                cons.max_space_amp.unwrap_or(f64::INFINITY).to_bits(),
            ],
            needs_ranges: cons.needs_ranges,
        }
    }

    /// The bucket centroid — the mix actually handed to the store, so
    /// every query in a bucket gets the identical ranking.
    fn centroid(&self) -> OpMix {
        OpMix {
            get: self.mix[0] as f64 / Self::BUCKETS,
            insert: self.mix[1] as f64 / Self::BUCKETS,
            update: self.mix[2] as f64 / Self::BUCKETS,
            delete: self.mix[3] as f64 / Self::BUCKETS,
            range: self.mix[4] as f64 / Self::BUCKETS,
        }
    }
}

/// Memoized front-end for [`ProfileStore::recommend_measured`].
///
/// The autotuner consults the advisor once per trajectory window; without
/// memoization every consultation re-aggregates the whole measured profile
/// grid (one pass per calibrated family). The memo hashes
/// (mix-bucket, environment, constraints) and replays the cached
/// [`MeasuredRanking`], so a steady workload regime costs one aggregation
/// sweep total instead of one per window.
#[derive(Clone, Debug, Default)]
pub struct AdvisorMemo {
    store: ProfileStore,
    cache: HashMap<MemoKey, MeasuredRanking>,
}

impl AdvisorMemo {
    pub fn new(store: ProfileStore) -> AdvisorMemo {
        AdvisorMemo {
            store,
            cache: HashMap::new(),
        }
    }

    /// The wrapped store (counters included).
    pub fn store(&self) -> &ProfileStore {
        &self.store
    }

    /// Cached rankings held.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Rank families for `mix` under `env`/`cons`, computing through the
    /// store only on a bucket miss. Queries that quantize to the same
    /// bucket return the identical ranking (computed at the bucket
    /// centroid), so the answer is deterministic in the bucket, not the
    /// float noise within it.
    pub fn recommend(
        &mut self,
        mix: &OpMix,
        env: &Environment,
        cons: &Constraints,
    ) -> &MeasuredRanking {
        let key = MemoKey::new(mix, env, cons);
        self.cache.entry(key.clone()).or_insert_with(|| {
            let centroid = key.centroid();
            self.store.recommend_measured(&centroid, env, cons)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wizard::recommend;

    fn point(scale: usize, mix: OpMix, ro: f64, uo: f64, mo: f64) -> ProfilePoint {
        ProfilePoint {
            scale,
            operations: scale * 2,
            mix: normalize_mix(&mix),
            dist: "uniform".into(),
            ro,
            uo,
            mo,
            read_cost: ro / 10.0,
            write_cost: uo / 10.0,
            read_ops: 100,
            write_ops: 100,
        }
    }

    fn full_store(mix: OpMix) -> ProfileStore {
        let mut store = ProfileStore::new();
        for (i, family) in Family::ALL.iter().enumerate() {
            let base = (i + 1) as f64;
            store.add_point(
                family.suite_method(),
                point(1000, mix, base * 2.0, base * 3.0, 1.0 + base / 10.0),
            );
            store.add_point(
                family.suite_method(),
                point(10_000, mix, base * 4.0, base * 6.0, 1.0 + base / 5.0),
            );
        }
        store
    }

    #[test]
    fn memo_skips_grid_reaggregation_within_a_mix_bucket() {
        // Every uncached recommendation aggregates the grid once per
        // calibrated family; the memo must make repeated (and
        // float-jittered same-bucket) queries free.
        let memo_store = full_store(OpMix::BALANCED);
        let env = Environment::default();
        let cons = Constraints::default();
        let mut memo = AdvisorMemo::new(memo_store);

        let top = memo
            .recommend(&OpMix::BALANCED, &env, &cons)
            .top()
            .expect("ranking")
            .family;
        let after_first = memo.store().aggregations();
        assert_eq!(
            after_first,
            Family::ALL.len() as u64,
            "first query aggregates once per family"
        );

        // Same mix again, and a jittered estimate that lands in the same
        // 1/64 bucket: both must be served from cache.
        let jitter = OpMix {
            get: OpMix::BALANCED.get + 0.003,
            ..OpMix::BALANCED
        };
        let top_again = memo.recommend(&jitter, &env, &cons).top().unwrap().family;
        memo.recommend(&OpMix::BALANCED, &env, &cons);
        assert_eq!(top, top_again, "bucketed query changed the answer");
        assert_eq!(
            memo.store().aggregations(),
            after_first,
            "cached queries re-aggregated the grid"
        );
        assert_eq!(memo.cached(), 1);

        // A genuinely different mix is a miss and aggregates again.
        memo.recommend(&OpMix::SCAN_HEAVY, &env, &cons);
        assert_eq!(memo.store().aggregations(), 2 * after_first);
        assert_eq!(memo.cached(), 2);

        // A changed environment is also a miss even at the same mix.
        let env2 = Environment {
            n: env.n * 2,
            ..env
        };
        memo.recommend(&OpMix::BALANCED, &env2, &cons);
        assert_eq!(memo.store().aggregations(), 3 * after_first);
    }

    #[test]
    fn empty_store_reproduces_the_analytic_ranking_uncalibrated() {
        let store = ProfileStore::new();
        let env = Environment::default();
        let cons = Constraints::default();
        let ranking = store.recommend_measured(&OpMix::BALANCED, &env, &cons);
        assert!(!ranking.calibrated);
        assert!(ranking.recs.iter().all(|r| !r.calibrated));
        let analytic = recommend(&OpMix::BALANCED, &env, &cons);
        let measured_order: Vec<Family> = ranking.recs.iter().map(|r| r.family).collect();
        let analytic_order: Vec<Family> = analytic.iter().map(|r| r.family).collect();
        assert_eq!(measured_order, analytic_order);
    }

    #[test]
    fn partial_store_flags_missing_families() {
        let mut store = ProfileStore::new();
        store.add_point("b+tree", point(1000, OpMix::BALANCED, 4.0, 8.0, 1.1));
        let ranking = store.recommend_measured(
            &OpMix::BALANCED,
            &Environment::default(),
            &Constraints::default(),
        );
        assert!(!ranking.calibrated);
        for rec in &ranking.recs {
            assert_eq!(rec.calibrated, rec.family == Family::BTree);
        }
    }

    #[test]
    fn full_store_is_fully_calibrated() {
        let store = full_store(OpMix::BALANCED);
        let ranking = store.recommend_measured(
            &OpMix::BALANCED,
            &Environment {
                n: 3000,
                ..Default::default()
            },
            &Constraints::default(),
        );
        assert!(ranking.calibrated);
        assert!(ranking.recs.iter().all(|r| r.measured.is_some()));
        // Synthetic costs grow with the family index, so BTree (index 0)
        // must win.
        assert_eq!(ranking.top().unwrap().family, Family::BTree);
    }

    #[test]
    fn constraints_bind_on_measured_not_analytic_values() {
        // Analytic B-tree read amp at default env is ~hundreds; measured is
        // 2·scale-interpolated ≈ small. A cap between the two must pass the
        // measured value even though the analytic value violates it.
        let store = full_store(OpMix::BALANCED);
        let env = Environment {
            n: 1000,
            ..Default::default()
        };
        let cons = Constraints {
            max_read_amp: Some(10.0),
            ..Default::default()
        };
        let ranking = store.recommend_measured(&OpMix::BALANCED, &env, &cons);
        let btree = ranking
            .recs
            .iter()
            .find(|r| r.family == Family::BTree)
            .unwrap();
        assert!(btree.calibrated);
        assert!(
            btree.feasible,
            "measured ro = 2.0 is under the cap: {:?}",
            btree.violations
        );
        let analytic = profile(Family::BTree, &env);
        assert!(analytic.read_amp > 10.0, "cap must sit below analytic RO");
        // And a cap below the measured value must fail with a "measured"
        // violation.
        let tight = Constraints {
            max_read_amp: Some(1.0),
            ..Default::default()
        };
        let ranking = store.recommend_measured(&OpMix::BALANCED, &env, &tight);
        let btree = ranking
            .recs
            .iter()
            .find(|r| r.family == Family::BTree)
            .unwrap();
        assert!(!btree.feasible);
        assert!(btree.violations[0].contains("measured"));
    }

    #[test]
    fn interpolation_is_monotone_between_scales_and_clamped_outside() {
        let store = full_store(OpMix::BALANCED);
        let profile = store.get(Family::BTree.suite_method()).unwrap();
        let at = |n: usize| calibrate(profile, &normalize_mix(&OpMix::BALANCED), n).unwrap();
        assert_eq!(at(1000).ro, 2.0);
        assert_eq!(at(10_000).ro, 4.0);
        assert_eq!(at(10).ro, 2.0, "clamped below the smallest scale");
        assert_eq!(at(1_000_000).ro, 4.0, "clamped above the largest scale");
        let mid = at(3163).ro; // ~geometric mean of the two scales
        assert!(mid > 2.0 && mid < 4.0, "mid = {mid}");
        assert!((mid - 3.0).abs() < 0.01, "ln-linear midpoint, got {mid}");
    }

    #[test]
    fn csv_roundtrips_exactly() {
        let mut store = full_store(OpMix::BALANCED);
        store.add_point(
            "lsm-tree",
            ProfilePoint {
                scale: 777,
                operations: 3,
                mix: normalize_mix(&OpMix::WRITE_HEAVY),
                dist: "zipf:0.99".into(),
                ro: 1.0 / 3.0,
                uo: std::f64::consts::PI,
                mo: 1.000000000001,
                read_cost: 0.1 + 0.2, // deliberately non-representable
                write_cost: 1e-17,
                read_ops: u64::MAX,
                write_ops: 0,
            },
        );
        let csv = store.to_csv();
        let parsed = ProfileStore::from_csv(&csv).unwrap();
        assert_eq!(store, parsed);
        assert_eq!(parsed.to_csv(), csv);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(ProfileStore::from_csv("").is_err());
        assert!(ProfileStore::from_csv("wrong,header\n").is_err());
        let mut truncated = String::from(CSV_HEADER);
        truncated.push_str("\nb+tree,1000,2000,uniform,1,0,0\n");
        assert!(ProfileStore::from_csv(&truncated).is_err());
        let mut bad_float = String::from(CSV_HEADER);
        bad_float.push_str("\nb+tree,1000,2000,uniform,1,0,0,0,0,abc,1,1,1,1,10,10\n");
        assert!(ProfileStore::from_csv(&bad_float).is_err());
    }

    #[test]
    fn deviation_names_the_most_off_table1_term() {
        let mut store = ProfileStore::new();
        // Measured write cost wildly above the analytic LSM merge cost;
        // read and space close to the model.
        let env = Environment {
            n: 1000,
            ..Default::default()
        };
        let analytic = profile(Family::LsmTree, &env);
        store.add_point(
            Family::LsmTree.suite_method(),
            ProfilePoint {
                scale: 1000,
                operations: 2000,
                mix: normalize_mix(&OpMix::BALANCED),
                dist: "uniform".into(),
                ro: analytic.read_amp,
                uo: analytic.write_amp,
                mo: analytic.space_amp,
                read_cost: analytic.point_cost,
                write_cost: analytic.insert_cost * 100.0,
                read_ops: 10,
                write_ops: 10,
            },
        );
        let ranking = store.recommend_measured(&OpMix::BALANCED, &env, &Constraints::default());
        let lsm = ranking
            .recs
            .iter()
            .find(|r| r.family == Family::LsmTree)
            .unwrap();
        let dev = lsm.deviation.as_ref().expect("calibrated ⇒ deviation");
        assert_eq!(dev.metric, "write");
        assert_eq!(dev.term, Family::LsmTree.write_term());
        assert!(dev.ratio > 50.0, "ratio = {}", dev.ratio);
    }

    #[test]
    fn recommendation_uses_nearest_measured_mix() {
        // Store holds two mixes; a query near WRITE_HEAVY must calibrate
        // from the WRITE_HEAVY points, not the READ_HEAVY ones.
        let mut store = ProfileStore::new();
        store.add_point("b+tree", point(1000, OpMix::READ_HEAVY, 100.0, 100.0, 1.5));
        store.add_point("b+tree", point(1000, OpMix::WRITE_HEAVY, 2.0, 4.0, 1.1));
        let near_write = OpMix {
            get: 0.15,
            insert: 0.55,
            update: 0.25,
            delete: 0.05,
            range: 0.0,
        };
        let ranking = store.recommend_measured(
            &near_write,
            &Environment {
                n: 1000,
                ..Default::default()
            },
            &Constraints::default(),
        );
        let btree = ranking
            .recs
            .iter()
            .find(|r| r.family == Family::BTree)
            .unwrap();
        let m = btree.measured.unwrap();
        assert_eq!(m.ro, 2.0, "calibrated from the WRITE_HEAVY group");
    }
}
