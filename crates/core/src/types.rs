//! The record and block model shared by every access method.
//!
//! Section 2 of the paper reasons about "an array of N (N >> 1) fixed-sized
//! elements in blocks". We fix the element to a 16-byte record (`u64` key +
//! `u64` value) and the block to a 4 KiB page, giving `B = 256` records per
//! block — the block-size parameter of Table 1.

/// Key type: unsigned 64-bit integers, as in the paper's integer-array model.
pub type Key = u64;

/// Value (payload) type.
pub type Value = u64;

/// Size of a storage block / page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Size of one fixed-length record in bytes (key + value).
pub const RECORD_SIZE: usize = 16;

/// `B` in Table 1 of the paper: records per block.
pub const RECORDS_PER_PAGE: usize = PAGE_SIZE / RECORD_SIZE;

/// A fixed-size key/value record — the paper's "element".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Record {
    pub key: Key,
    pub value: Value,
}

impl Record {
    /// Create a record.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Record { key, value }
    }

    /// Serialize into a fixed 16-byte little-endian layout.
    #[inline]
    pub fn encode(&self) -> [u8; RECORD_SIZE] {
        let mut buf = [0u8; RECORD_SIZE];
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..].copy_from_slice(&self.value.to_le_bytes());
        buf
    }

    /// Deserialize from the fixed 16-byte layout produced by [`encode`].
    ///
    /// [`encode`]: Record::encode
    #[inline]
    pub fn decode(buf: &[u8]) -> Self {
        debug_assert!(buf.len() >= RECORD_SIZE);
        let key = u64::from_le_bytes(buf[..8].try_into().expect("key slice"));
        let value = u64::from_le_bytes(buf[8..16].try_into().expect("value slice"));
        Record { key, value }
    }

    /// Write this record into `buf` (which must be at least 16 bytes).
    #[inline]
    pub fn encode_into(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..16].copy_from_slice(&self.value.to_le_bytes());
    }
}

impl From<(Key, Value)> for Record {
    fn from((key, value): (Key, Value)) -> Self {
        Record { key, value }
    }
}

/// Number of pages needed to hold `n` records packed densely.
#[inline]
pub const fn pages_for_records(n: usize) -> usize {
    n.div_ceil(RECORDS_PER_PAGE)
}

/// Logical size in bytes of `n` records of base data.
#[inline]
pub const fn base_bytes(n: usize) -> u64 {
    (n * RECORD_SIZE) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(RECORDS_PER_PAGE, 256);
        assert_eq!(RECORDS_PER_PAGE * RECORD_SIZE, PAGE_SIZE);
    }

    #[test]
    fn record_roundtrip() {
        let r = Record::new(0xDEAD_BEEF_0123_4567, 42);
        assert_eq!(Record::decode(&r.encode()), r);
    }

    #[test]
    fn record_roundtrip_extremes() {
        for r in [
            Record::new(0, 0),
            Record::new(u64::MAX, u64::MAX),
            Record::new(u64::MAX, 0),
            Record::new(0, u64::MAX),
        ] {
            assert_eq!(Record::decode(&r.encode()), r);
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        let r = Record::new(7, 9);
        let mut buf = [0u8; 32];
        r.encode_into(&mut buf[4..20]);
        assert_eq!(&buf[4..20], &r.encode());
    }

    #[test]
    fn pages_for_records_rounds_up() {
        assert_eq!(pages_for_records(0), 0);
        assert_eq!(pages_for_records(1), 1);
        assert_eq!(pages_for_records(256), 1);
        assert_eq!(pages_for_records(257), 2);
    }

    #[test]
    fn record_ordering_is_key_major() {
        assert!(Record::new(1, 100) < Record::new(2, 0));
        assert!(Record::new(1, 0) < Record::new(1, 1));
    }
}
