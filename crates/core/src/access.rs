//! The [`AccessMethod`] trait — the paper's notion of "algorithms and data
//! structures for organizing and accessing data" (Hellerstein et al.), with
//! RUM instrumentation baked in.
//!
//! Implementors provide the `*_impl` methods; callers use the provided
//! wrappers ([`get`](AccessMethod::get), [`insert`](AccessMethod::insert),
//! ...) which automatically charge the *logical* side of each operation to
//! the method's [`CostTracker`], so read/write amplification is always
//! well-defined no matter who drives the structure.

use std::sync::Arc;

use crate::error::Result;
use crate::tracker::CostTracker;
use crate::types::{base_bytes, Key, Record, Value, RECORD_SIZE};

/// Space occupied by a structure, split per the paper's MO definition.
///
/// `base_bytes` is the logical size of the live data (`N × 16`);
/// `aux_bytes` is everything beyond that: index nodes, filters, directory
/// metadata, fragmentation, and redundant copies (e.g. LSM levels).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceProfile {
    /// Logical bytes of live base data.
    pub base_bytes: u64,
    /// Physical bytes beyond the base data.
    pub aux_bytes: u64,
}

impl SpaceProfile {
    /// Profile for a structure storing `n` live records in `physical_bytes`
    /// total physical space. Auxiliary space is whatever exceeds the logical
    /// base size; a structure that somehow uses *less* than the logical size
    /// (it cannot, without compression) is clamped to zero auxiliary bytes.
    pub fn from_physical(n_records: usize, physical_bytes: u64) -> Self {
        let base = base_bytes(n_records);
        SpaceProfile {
            base_bytes: base,
            aux_bytes: physical_bytes.saturating_sub(base),
        }
    }

    /// Total physical footprint.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.base_bytes + self.aux_bytes
    }

    /// MO per the paper: "the ratio between the space utilized for auxiliary
    /// and base data, divided by the space utilized for base data".
    ///
    /// The theoretical minimum is 1.0 (no auxiliary data at all). An empty
    /// structure reports its raw overhead relative to one record to avoid a
    /// division by zero.
    pub fn space_amplification(&self) -> f64 {
        if self.base_bytes == 0 {
            if self.aux_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.total_bytes() as f64 / self.base_bytes as f64
        }
    }
}

/// A key/value access method with RUM instrumentation.
///
/// ## Contract
///
/// * Keys are unique. [`insert`](Self::insert) of an existing key replaces
///   the value (upsert, last-writer-wins) — differential structures like the
///   LSM-tree cannot afford an existence check on the write path, and the
///   paper's UO model assumes they do not perform one.
/// * [`update`](Self::update) returns whether a live key was modified, when
///   the method can tell; blind-write structures may report `true`
///   unconditionally (the workload generator only updates live keys).
/// * [`range`](Self::range) is inclusive on both ends and returns records in
///   ascending key order. Methods that fundamentally cannot answer range
///   queries (pure hashing) return [`RumError::Unsupported`].
/// * [`bulk_load`](Self::bulk_load) takes records sorted by strictly
///   ascending key and replaces the current contents.
///
/// [`RumError::Unsupported`]: crate::error::RumError::Unsupported
///
/// Methods are `Send` so the measurement harness can fan a suite out
/// across worker threads ([`run_suite_parallel`]); each instance is still
/// driven from one thread at a time (`&mut self`), so no `Sync` bound is
/// needed.
///
/// [`run_suite_parallel`]: crate::runner::run_suite_parallel
pub trait AccessMethod: Send {
    /// Human-readable name used in reports and plots.
    fn name(&self) -> String;

    /// Number of live records.
    fn len(&self) -> usize;

    /// Whether the method currently holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tracker this method charges physical traffic to.
    fn tracker(&self) -> &Arc<CostTracker>;

    /// Space footprint, split into base and auxiliary bytes.
    fn space_profile(&self) -> SpaceProfile;

    // ---- implementation hooks -------------------------------------------

    /// Point lookup.
    fn get_impl(&mut self, key: Key) -> Result<Option<Value>>;

    /// Inclusive range scan in ascending key order.
    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>>;

    /// Upsert.
    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()>;

    /// Modify an existing key; `Ok(false)` if the key was known absent.
    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool>;

    /// Remove a key; `Ok(false)` if the key was known absent.
    fn delete_impl(&mut self, key: Key) -> Result<bool>;

    /// Replace contents from records sorted by strictly ascending key.
    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()>;

    /// Push any buffered state to its final place (e.g. flush an LSM
    /// memtable). Default: nothing to do.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    /// Install a [`TraceSink`](crate::trace::TraceSink) for structured
    /// event emission (LSM flush/compaction, WAL sync/checkpoint, buffer
    /// eviction, shard dispatch...). Default: ignore it — methods without
    /// noteworthy internal events need no wiring, and the compiled-in
    /// default everywhere is the disabled
    /// [`NoopSink`](crate::trace::NoopSink). Wrappers forward the sink to
    /// their inner methods.
    fn set_trace_sink(&mut self, _sink: Arc<dyn crate::trace::TraceSink>) {}

    /// Attempt in-place self-repair after a worker panic or detected
    /// corruption left this instance in a suspect state. Returns
    /// `Ok(true)` when the method rebuilt itself to a trustworthy state
    /// (e.g. a durable wrapper replaying checkpoint + committed WAL);
    /// `Ok(false)` when it has no repair capability — the caller must
    /// rebuild from scratch (losing volatile contents) or keep the
    /// instance quarantined. Default: no repair capability.
    fn try_heal(&mut self) -> Result<bool> {
        Ok(false)
    }

    // ---- instrumented entry points --------------------------------------

    /// Point lookup; charges the retrieved bytes as logical reads.
    fn get(&mut self, key: Key) -> Result<Option<Value>> {
        let r = self.get_impl(key)?;
        if r.is_some() {
            self.tracker().logical_read(RECORD_SIZE as u64);
        }
        Ok(r)
    }

    /// Inclusive range scan; charges the result size as logical reads.
    fn range(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let rs = self.range_impl(lo, hi)?;
        self.tracker().logical_read((rs.len() * RECORD_SIZE) as u64);
        Ok(rs)
    }

    /// Upsert; charges one record as the logical write.
    fn insert(&mut self, key: Key, value: Value) -> Result<()> {
        self.insert_impl(key, value)?;
        self.tracker().logical_write(RECORD_SIZE as u64);
        Ok(())
    }

    /// Update; charges one record as the logical write when applied.
    fn update(&mut self, key: Key, value: Value) -> Result<bool> {
        let applied = self.update_impl(key, value)?;
        if applied {
            self.tracker().logical_write(RECORD_SIZE as u64);
        }
        Ok(applied)
    }

    /// Delete; charges one record as the logical write when applied.
    fn delete(&mut self, key: Key) -> Result<bool> {
        let applied = self.delete_impl(key)?;
        if applied {
            self.tracker().logical_write(RECORD_SIZE as u64);
        }
        Ok(applied)
    }

    /// Bulk load; charges the full input as the logical write, so the write
    /// amplification of construction is meaningful.
    fn bulk_load(&mut self, records: &[Record]) -> Result<()> {
        self.bulk_load_impl(records)?;
        self.tracker()
            .logical_write((records.len() * RECORD_SIZE) as u64);
        Ok(())
    }
}

/// Validate a bulk-load input slice: strictly ascending keys.
pub fn check_bulk_input(records: &[Record]) -> Result<()> {
    for w in records.windows(2) {
        if w[0].key >= w[1].key {
            return Err(crate::error::RumError::InvalidArgument(format!(
                "bulk_load input not strictly ascending at key {}",
                w[1].key
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RumError;
    use crate::tracker::DataClass;

    /// A toy in-memory method used to test the instrumented wrappers.
    struct VecMethod {
        data: Vec<Record>,
        tracker: Arc<CostTracker>,
    }

    impl VecMethod {
        fn new() -> Self {
            VecMethod {
                data: Vec::new(),
                tracker: CostTracker::new(),
            }
        }
    }

    impl AccessMethod for VecMethod {
        fn name(&self) -> String {
            "vec".into()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(
                self.data.len(),
                (self.data.capacity() * RECORD_SIZE) as u64,
            )
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            self.tracker
                .read(DataClass::Base, (self.data.len() * RECORD_SIZE) as u64);
            Ok(self.data.iter().find(|r| r.key == key).map(|r| r.value))
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            self.tracker
                .read(DataClass::Base, (self.data.len() * RECORD_SIZE) as u64);
            let mut out: Vec<Record> = self
                .data
                .iter()
                .copied()
                .filter(|r| r.key >= lo && r.key <= hi)
                .collect();
            out.sort();
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
            if let Some(r) = self.data.iter_mut().find(|r| r.key == key) {
                r.value = value;
            } else {
                self.data.push(Record::new(key, value));
            }
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            if let Some(r) = self.data.iter_mut().find(|r| r.key == key) {
                self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                r.value = value;
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            let before = self.data.len();
            self.data.retain(|r| r.key != key);
            Ok(self.data.len() != before)
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            check_bulk_input(records)?;
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            self.data = records.to_vec();
            Ok(())
        }
    }

    #[test]
    fn wrappers_charge_logical_traffic() {
        let mut m = VecMethod::new();
        m.insert(1, 10).unwrap();
        m.insert(2, 20).unwrap();
        assert_eq!(m.get(1).unwrap(), Some(10));
        assert_eq!(m.get(99).unwrap(), None);
        let s = m.tracker().snapshot();
        // two inserts charged 32 logical write bytes
        assert_eq!(s.logical_write_bytes, 32);
        // only the hit charged 16 logical read bytes
        assert_eq!(s.logical_read_bytes, 16);
    }

    #[test]
    fn update_miss_charges_nothing_logical() {
        let mut m = VecMethod::new();
        assert!(!m.update(5, 1).unwrap());
        assert_eq!(m.tracker().snapshot().logical_write_bytes, 0);
    }

    #[test]
    fn range_charges_result_size() {
        let mut m = VecMethod::new();
        for k in 0..10 {
            m.insert(k, k).unwrap();
        }
        let before = m.tracker().snapshot();
        let rs = m.range(2, 5).unwrap();
        assert_eq!(rs.len(), 4);
        let d = m.tracker().since(&before);
        assert_eq!(d.logical_read_bytes, 64);
    }

    #[test]
    fn bulk_rejects_unsorted() {
        let recs = vec![Record::new(2, 0), Record::new(1, 0)];
        assert!(matches!(
            check_bulk_input(&recs),
            Err(RumError::InvalidArgument(_))
        ));
    }

    #[test]
    fn bulk_rejects_duplicates() {
        let recs = vec![Record::new(1, 0), Record::new(1, 1)];
        assert!(check_bulk_input(&recs).is_err());
    }

    #[test]
    fn space_profile_math() {
        let p = SpaceProfile::from_physical(10, 200);
        assert_eq!(p.base_bytes, 160);
        assert_eq!(p.aux_bytes, 40);
        assert!((p.space_amplification() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn space_profile_empty() {
        let p = SpaceProfile::from_physical(0, 0);
        assert_eq!(p.space_amplification(), 1.0);
        let p = SpaceProfile::from_physical(0, 4096);
        assert!(p.space_amplification().is_infinite());
    }

    #[test]
    fn space_profile_clamps_compression() {
        // A physically smaller-than-logical footprint clamps aux to 0.
        let p = SpaceProfile::from_physical(10, 100);
        assert_eq!(p.aux_bytes, 0);
    }
}
