//! Hash-sharded composition of access methods: one logical
//! [`AccessMethod`] backed by `K` inner instances, each owning a disjoint
//! key partition, its own storage, and its own private
//! [`CostTracker`].
//!
//! Sharding is the paper's RUM tradeoff applied at the *system* level: the
//! K auxiliary structures cost MO (K roots, K directories, K memtables...)
//! and range queries pay a fan-out, in exchange for write and read traffic
//! that can be absorbed by K workers concurrently. The cost model stays
//! deterministic: every physical byte a shard touches is folded back into
//! the wrapper's tracker as a u64 sum, so RO/UO/MO from a concurrent run
//! are **bit-identical** to the same sharded structure driven serially —
//! only wall-clock time changes. `tests/shard_equivalence.rs` pins this.
//!
//! ## Cost accounting
//!
//! The wrapper's tracker is the single source of truth. Inner trackers are
//! scratch space: after every delegated call (or per-shard batch), the
//! inner tracker's delta is [`absorb`](crate::tracker::CostTracker::absorb)ed
//! into the wrapper's tracker. Logical traffic is charged exactly once —
//! by the wrapper's instrumented entry points on the per-op path, or by
//! the inner wrappers on the batched path — so both paths report the same
//! totals.

use std::sync::Arc;

use crate::access::{AccessMethod, SpaceProfile};
use crate::error::{panic_payload_message, Result, RumError};
use crate::trace::{EventKind, TraceSink};
use crate::tracker::{CostSnapshot, CostTracker};
use crate::types::{Key, Record, Value};
use crate::workload::Op;

/// `K` instances of an access method behind one [`AccessMethod`] facade,
/// partitioned by key hash. Built from a factory so every shard gets its
/// own storage and tracker:
///
/// ```
/// use rum_core::shard::ShardedMethod;
/// # use rum_core::access::{AccessMethod, SpaceProfile};
/// # use rum_core::tracker::CostTracker;
/// # use rum_core::types::{Key, Record, Value, RECORD_SIZE};
/// # use std::sync::Arc;
/// # struct Toy { data: std::collections::BTreeMap<Key, Value>, t: Arc<CostTracker> }
/// # impl Toy { fn new() -> Self { Toy { data: Default::default(), t: CostTracker::new() } } }
/// # impl AccessMethod for Toy {
/// #     fn name(&self) -> String { "toy".into() }
/// #     fn len(&self) -> usize { self.data.len() }
/// #     fn tracker(&self) -> &Arc<CostTracker> { &self.t }
/// #     fn space_profile(&self) -> SpaceProfile {
/// #         SpaceProfile::from_physical(self.data.len(), (self.data.len() * RECORD_SIZE) as u64)
/// #     }
/// #     fn get_impl(&mut self, k: Key) -> rum_core::Result<Option<Value>> { Ok(self.data.get(&k).copied()) }
/// #     fn range_impl(&mut self, lo: Key, hi: Key) -> rum_core::Result<Vec<Record>> {
/// #         Ok(self.data.range(lo..=hi).map(|(&k, &v)| Record::new(k, v)).collect())
/// #     }
/// #     fn insert_impl(&mut self, k: Key, v: Value) -> rum_core::Result<()> { self.data.insert(k, v); Ok(()) }
/// #     fn update_impl(&mut self, k: Key, v: Value) -> rum_core::Result<bool> {
/// #         Ok(self.data.get_mut(&k).map(|slot| *slot = v).is_some())
/// #     }
/// #     fn delete_impl(&mut self, k: Key) -> rum_core::Result<bool> { Ok(self.data.remove(&k).is_some()) }
/// #     fn bulk_load_impl(&mut self, rs: &[Record]) -> rum_core::Result<()> {
/// #         self.data = rs.iter().map(|r| (r.key, r.value)).collect(); Ok(())
/// #     }
/// # }
/// let mut sharded = ShardedMethod::new(4, |_| Box::new(Toy::new()));
/// sharded.insert(7, 70).unwrap();
/// assert_eq!(sharded.get(7).unwrap(), Some(70));
/// assert_eq!(sharded.shards(), 4);
/// ```
pub struct ShardedMethod {
    name: String,
    shards: Vec<Box<dyn AccessMethod>>,
    /// The externally visible tracker: logical charges from the wrapper
    /// entry points plus every absorbed inner delta.
    tracker: Arc<CostTracker>,
    /// Worker threads for [`execute_batch`](Self::execute_batch) and bulk
    /// load; `<= 1` runs shards inline (identical costs, no spawns).
    threads: usize,
    /// Structured-event channel for batch dispatches; the disabled
    /// [`NoopSink`](crate::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
}

impl ShardedMethod {
    /// `k` shards from `factory(shard_index)`, one batch worker per shard.
    pub fn new<F>(k: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn AccessMethod>,
    {
        Self::with_threads(k, k, factory)
    }

    /// `k` shards with an explicit batch worker count (capped at `k`;
    /// `threads <= 1` executes batches inline, in shard order).
    pub fn with_threads<F>(k: usize, threads: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn AccessMethod>,
    {
        assert!(k >= 1, "a sharded method needs at least one shard");
        let shards: Vec<Box<dyn AccessMethod>> = (0..k).map(&factory).collect();
        let name = format!("{}-x{}", shards[0].name(), k);
        ShardedMethod {
            name,
            shards,
            tracker: CostTracker::new(),
            threads: threads.clamp(1, k),
            sink: crate::trace::noop_sink(),
        }
    }

    /// Number of shards (the paper's `K`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Batch worker threads this wrapper will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Which shard owns `key`. Fibonacci hashing, so dense sequential key
    /// universes spread evenly instead of aliasing onto `key % K`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards.len()
        }
    }

    /// Run `f` against one shard and fold the physical traffic it accrued
    /// on its private tracker into the wrapper tracker.
    fn mirrored<T>(
        &mut self,
        shard: usize,
        f: impl FnOnce(&mut dyn AccessMethod) -> Result<T>,
    ) -> Result<T> {
        let inner = self.shards[shard].as_mut();
        let before = inner.tracker().snapshot();
        let out = f(inner);
        let delta = inner.tracker().since(&before);
        self.tracker.absorb(&delta);
        out
    }

    /// Execute a batch of operations, partitioned per shard (ranges fan
    /// out to every shard), each shard's sub-batch on its own scoped
    /// worker thread when `threads > 1`.
    ///
    /// Per-shard sub-batches preserve the batch's relative op order, and
    /// every key deterministically maps to one shard, so each shard's
    /// state and cost evolution is identical to the serial execution —
    /// cross-shard interleaving only changes wall-clock time. Results are
    /// discarded (this is the measurement path); per-op logical traffic is
    /// charged by the inner instrumented wrappers and folded into the
    /// wrapper tracker afterwards, giving totals bit-identical to driving
    /// the wrapper one op at a time.
    pub fn execute_batch(&mut self, ops: &[Op]) -> Result<()> {
        let k = self.shards.len();
        let mut parts: Vec<Vec<Op>> = vec![Vec::new(); k];
        for &op in ops {
            match op {
                Op::Range(..) => {
                    for part in parts.iter_mut() {
                        part.push(op);
                    }
                }
                Op::Get(key) | Op::Insert(key, _) | Op::Update(key, _) | Op::Delete(key) => {
                    let shard = self.shard_of(key);
                    parts[shard].push(op);
                }
            }
        }
        if self.sink.enabled() {
            let largest = parts.iter().map(Vec::len).max().unwrap_or(0);
            self.sink.emit(
                EventKind::ShardDispatch,
                &[
                    ("ops", ops.len() as u64),
                    ("shards", k as u64),
                    ("largest_part", largest as u64),
                ],
            );
        }
        self.run_on_shards(&parts, |shard, part| {
            for &op in part {
                match op {
                    Op::Get(key) => {
                        shard.get(key)?;
                    }
                    Op::Range(lo, hi) => {
                        shard.range(lo, hi)?;
                    }
                    Op::Insert(key, value) => {
                        shard.insert(key, value)?;
                    }
                    Op::Update(key, value) => {
                        shard.update(key, value)?;
                    }
                    Op::Delete(key) => {
                        shard.delete(key)?;
                    }
                }
            }
            Ok(())
        })
    }

    /// Run `f(shard, job)` for every shard with its job — threaded when
    /// configured — then fold every shard's tracker delta into the wrapper
    /// tracker (in shard order; the sums are order-independent anyway).
    fn run_on_shards<J: Sync>(
        &mut self,
        jobs: &[J],
        f: impl Fn(&mut dyn AccessMethod, &J) -> Result<()> + Sync,
    ) -> Result<()> {
        debug_assert_eq!(jobs.len(), self.shards.len());
        let marks: Vec<CostSnapshot> = self.shards.iter().map(|s| s.tracker().snapshot()).collect();
        let outcome: Result<()> = if self.threads <= 1 || self.shards.len() <= 1 {
            self.shards
                .iter_mut()
                .zip(jobs)
                .try_for_each(|(shard, job)| f(shard.as_mut(), job))
        } else {
            let results: Vec<Result<()>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(jobs)
                    .enumerate()
                    .map(|(k, (shard, job))| {
                        // Named workers so panics and profiler output say
                        // which shard fired instead of `<unnamed>`.
                        std::thread::Builder::new()
                            .name(format!("rum-shard-{k}"))
                            .spawn_scoped(scope, || f(shard.as_mut(), job))
                            .expect("spawn rum-shard thread")
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // A panicking worker must not abort the harness:
                        // surface it as a structural error so the caller
                        // can drop this method and keep measuring others.
                        h.join().unwrap_or_else(|payload| {
                            Err(RumError::Corrupt(format!(
                                "shard worker panicked ({}); shard state is unreliable",
                                panic_payload_message(&payload)
                            )))
                        })
                    })
                    .collect()
            });
            results.into_iter().collect()
        };
        for (shard, mark) in self.shards.iter().zip(&marks) {
            self.tracker.absorb(&shard.tracker().since(mark));
        }
        outcome
    }
}

impl AccessMethod for ShardedMethod {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    /// Sum of the shard footprints: base bytes add up to the same live
    /// data, while the K auxiliary structures are exactly the MO sharding
    /// spends to buy concurrency.
    fn space_profile(&self) -> SpaceProfile {
        self.shards
            .iter()
            .fold(SpaceProfile::default(), |acc, shard| {
                let p = shard.space_profile();
                SpaceProfile {
                    base_bytes: acc.base_bytes + p.base_bytes,
                    aux_bytes: acc.aux_bytes + p.aux_bytes,
                }
            })
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.get_impl(key))
    }

    /// Fan out to every shard and k-way merge the (individually sorted,
    /// key-disjoint) partial results into ascending key order.
    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let k = self.shards.len();
        let mut partials: Vec<Vec<Record>> = Vec::with_capacity(k);
        for shard in 0..k {
            partials.push(self.mirrored(shard, |m| m.range_impl(lo, hi))?);
        }
        let total: usize = partials.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        let mut cursors = vec![0usize; k];
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (shard, &cursor) in cursors.iter().enumerate() {
                if cursor < partials[shard].len()
                    && best
                        .is_none_or(|b| partials[shard][cursor].key < partials[b][cursors[b]].key)
                {
                    best = Some(shard);
                }
            }
            let shard = best.expect("total counts a remaining record");
            merged.push(partials[shard][cursors[shard]]);
            cursors[shard] += 1;
        }
        Ok(merged)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.insert_impl(key, value))
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.update_impl(key, value))
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.delete_impl(key))
    }

    /// Partition the (ascending) input per shard — each partition stays
    /// strictly ascending — and load shards concurrently.
    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        let k = self.shards.len();
        let mut parts: Vec<Vec<Record>> = vec![Vec::new(); k];
        for &r in records {
            let shard = self.shard_of(r.key);
            parts[shard].push(r);
        }
        // Every shard loads its partition, including empty ones: bulk load
        // replaces prior contents everywhere.
        self.run_on_shards(&parts, |shard, part| shard.bulk_load_impl(part))
    }

    fn flush(&mut self) -> Result<()> {
        for shard in 0..self.shards.len() {
            self.mirrored(shard, |m| m.flush())?;
        }
        Ok(())
    }

    /// Keep the sink for dispatch events and forward it to every shard, so
    /// inner structures (LSM trees, WALs...) report into the same channel.
    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        for shard in self.shards.iter_mut() {
            shard.set_trace_sink(Arc::clone(&sink));
        }
        self.sink = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DataClass;
    use crate::types::RECORD_SIZE;

    /// In-memory method with a deterministic cost model: every physical
    /// access charges 2 bytes per logical byte.
    struct Amp2 {
        data: std::collections::BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Amp2 {
        fn boxed(_shard: usize) -> Box<dyn AccessMethod> {
            Box::new(Amp2 {
                data: Default::default(),
                tracker: CostTracker::new(),
            })
        }
    }

    impl AccessMethod for Amp2 {
        fn name(&self) -> String {
            "amp2".into()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * 3 * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            let r = self.data.get(&key).copied();
            if r.is_some() {
                self.tracker.read(DataClass::Base, 2 * RECORD_SIZE as u64);
            }
            Ok(r)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            let out: Vec<Record> = self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            self.tracker
                .read(DataClass::Base, (2 * out.len() * RECORD_SIZE) as u64);
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            if let std::collections::btree_map::Entry::Occupied(mut e) = self.data.entry(key) {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                e.insert(value);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            if self.data.remove(&key).is_some() {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            Ok(())
        }
    }

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n).map(|k| Record::new(3 * k, k)).collect()
    }

    #[test]
    fn routing_covers_every_shard() {
        let sharded = ShardedMethod::new(8, Amp2::boxed);
        let mut hit = [false; 8];
        for k in 0..10_000u64 {
            hit[sharded.shard_of(k)] = true;
        }
        assert!(hit.iter().all(|&h| h), "dense keys must reach all shards");
    }

    #[test]
    fn behaves_like_one_method() {
        let mut sharded = ShardedMethod::new(4, Amp2::boxed);
        sharded.bulk_load(&sample_records(100)).unwrap();
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.get(30).unwrap(), Some(10));
        assert_eq!(sharded.get(31).unwrap(), None);
        assert!(sharded.update(30, 99).unwrap());
        assert_eq!(sharded.get(30).unwrap(), Some(99));
        assert!(sharded.delete(30).unwrap());
        assert!(!sharded.delete(30).unwrap());
        assert_eq!(sharded.len(), 99);
        // Range results merge across shards in ascending order.
        let rs = sharded.range(0, 60).unwrap();
        let keys: Vec<Key> = rs.iter().map(|r| r.key).collect();
        assert_eq!(
            keys,
            vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60]
        );
    }

    #[test]
    fn one_shard_is_cost_transparent() {
        // K=1 routes everything to the single inner instance: reports and
        // contents must match the bare method exactly.
        let records = sample_records(200);
        let ops: Vec<Op> = (0..600u64)
            .map(|i| match i % 4 {
                0 => Op::Get(3 * (i % 200)),
                1 => Op::Insert(3 * i + 1, i),
                2 => Op::Update(3 * (i % 200), i),
                _ => Op::Range(3 * (i % 100), 3 * (i % 100) + 30),
            })
            .collect();

        let mut bare = Amp2::boxed(0);
        let mut sharded = ShardedMethod::new(1, Amp2::boxed);
        bare.bulk_load(&records).unwrap();
        sharded.bulk_load(&records).unwrap();
        for &op in &ops {
            for m in [bare.as_mut(), &mut sharded as &mut dyn AccessMethod] {
                match op {
                    Op::Get(k) => {
                        m.get(k).unwrap();
                    }
                    Op::Range(lo, hi) => {
                        m.range(lo, hi).unwrap();
                    }
                    Op::Insert(k, v) => m.insert(k, v).unwrap(),
                    Op::Update(k, v) => {
                        m.update(k, v).unwrap();
                    }
                    Op::Delete(k) => {
                        m.delete(k).unwrap();
                    }
                }
            }
        }
        assert_eq!(bare.len(), sharded.len());
        assert_eq!(bare.tracker().snapshot(), sharded.tracker().snapshot());
        let bp = bare.space_profile();
        let sp = sharded.space_profile();
        assert_eq!((bp.base_bytes, bp.aux_bytes), (sp.base_bytes, sp.aux_bytes));
    }

    #[test]
    fn batched_concurrent_costs_match_per_op_serial() {
        // The same op sequence, driven (a) one op at a time through the
        // wrapper and (b) as threaded per-shard batches, must leave both
        // wrappers with bit-identical tracker totals and contents.
        let records = sample_records(500);
        let ops: Vec<Op> = (0..4000u64)
            .map(|i| match i % 5 {
                0 => Op::Get(3 * (i % 500)),
                1 => Op::Insert(3 * i + 2, i),
                2 => Op::Update(3 * (i % 500), i),
                3 => Op::Delete(3 * ((i / 5) % 500)),
                _ => Op::Range(3 * (i % 300), 3 * (i % 300) + 90),
            })
            .collect();

        let mut per_op = ShardedMethod::with_threads(4, 1, Amp2::boxed);
        per_op.bulk_load(&records).unwrap();
        for &op in &ops {
            match op {
                Op::Get(k) => {
                    per_op.get(k).unwrap();
                }
                Op::Range(lo, hi) => {
                    per_op.range(lo, hi).unwrap();
                }
                Op::Insert(k, v) => per_op.insert(k, v).unwrap(),
                Op::Update(k, v) => {
                    per_op.update(k, v).unwrap();
                }
                Op::Delete(k) => {
                    per_op.delete(k).unwrap();
                }
            }
        }

        let mut batched = ShardedMethod::with_threads(4, 4, Amp2::boxed);
        batched.bulk_load(&records).unwrap();
        for chunk in ops.chunks(257) {
            batched.execute_batch(chunk).unwrap();
        }

        assert_eq!(per_op.len(), batched.len());
        assert_eq!(
            per_op.tracker().snapshot(),
            batched.tracker().snapshot(),
            "threaded batches must not change a single counted byte"
        );
        assert_eq!(
            per_op.range(0, Key::MAX).unwrap(),
            batched.range(0, Key::MAX).unwrap()
        );
    }

    #[test]
    fn bulk_load_replaces_contents_on_every_shard() {
        let mut sharded = ShardedMethod::new(4, Amp2::boxed);
        for k in 0..100u64 {
            sharded.insert(k * 7 + 1, 1).unwrap();
        }
        sharded.bulk_load(&sample_records(10)).unwrap();
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.get(8).unwrap(), None);
    }

    #[test]
    fn name_and_profile_reflect_k() {
        let sharded = ShardedMethod::new(4, Amp2::boxed);
        assert_eq!(sharded.name(), "amp2-x4");
        assert_eq!(sharded.shards(), 4);
    }
}
