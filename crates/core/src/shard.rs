//! Hash-sharded composition of access methods: one logical
//! [`AccessMethod`] backed by `K` inner instances, each owning a disjoint
//! key partition, its own storage, and its own private
//! [`CostTracker`].
//!
//! Sharding is the paper's RUM tradeoff applied at the *system* level: the
//! K auxiliary structures cost MO (K roots, K directories, K memtables...)
//! and range queries pay a fan-out, in exchange for write and read traffic
//! that can be absorbed by K workers concurrently. The cost model stays
//! deterministic: every physical byte a shard touches is folded back into
//! the wrapper's tracker as a u64 sum, so RO/UO/MO from a concurrent run
//! are **bit-identical** to the same sharded structure driven serially —
//! only wall-clock time changes. `tests/shard_equivalence.rs` pins this.
//!
//! ## Execution model: a persistent worker pool
//!
//! Batched execution ([`execute_batch`](ShardedMethod::execute_batch) /
//! [`submit_batch`](ShardedMethod::submit_batch)) runs on a **persistent
//! pool** of long-lived named worker threads (`rum-shard-{w}`), started
//! lazily by the first threaded batch and joined when the facade drops.
//! Shard `s` is always served by worker `s % workers` through that
//! worker's FIFO job lane, so each shard's job stream executes in
//! submission order even when one worker serves several shards
//! (`threads < K`). Jobs carry whole per-shard sub-batches in; completions
//! carry the shard's tracker delta (plus an optional per-op latency
//! histogram) back over a per-dispatch channel, and the facade folds the
//! deltas in shard order. The old design spawned and joined K scoped
//! threads for *every* batch — at the default 8192-op batch size that
//! dispatch tax collapsed sharded throughput by 25–60×.
//!
//! Per-op facade calls ([`get`](AccessMethod::get), ...) never touch the
//! pool: each shard lives behind its own mutex, so the facade locks the
//! owning shard and runs inline. The lock is uncontended whenever no batch
//! is in flight, which is the only way the measurement runners drive it.
//!
//! ## Cost accounting
//!
//! The wrapper's tracker is the single source of truth. Inner trackers are
//! scratch space: after every delegated call (or per-shard job), the
//! inner tracker's delta is [`absorb`](crate::tracker::CostTracker::absorb)ed
//! into the wrapper's tracker. Logical traffic is charged exactly once —
//! by the wrapper's instrumented entry points on the per-op path, or by
//! the inner wrappers on the batched path — so both paths report the same
//! totals.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::access::{AccessMethod, SpaceProfile};
use crate::error::{panic_payload_message, Result, RumError};
use crate::trace::{EventKind, LatencyHistogram, TraceSink};
use crate::tracker::{CostSnapshot, CostTracker};
use crate::types::{Key, Record, Value};
use crate::workload::Op;

/// One shard slot, shared between the facade and the pool workers.
///
/// The mutex serializes access to the inner method; the `poisoned` flag is
/// this module's own panic containment (a job that panics mid-mutation
/// leaves the structure in an unknown state, so every later access is
/// refused with [`RumError::Corrupt`] instead of reading garbage).
struct Shard {
    method: Mutex<Box<dyn AccessMethod>>,
    poisoned: AtomicBool,
}

impl Shard {
    fn new(method: Box<dyn AccessMethod>) -> Arc<Shard> {
        Arc::new(Shard {
            method: Mutex::new(method),
            poisoned: AtomicBool::new(false),
        })
    }

    /// Lock the inner method. Std mutex poisoning is deliberately ignored:
    /// job panics are caught *inside* the guard scope (so they never poison
    /// the std mutex), and the `poisoned` flag — not the mutex — is the
    /// authoritative "state is unreliable" signal.
    fn lock(&self) -> MutexGuard<'_, Box<dyn AccessMethod>> {
        self.method
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn poisoned_error(shard: usize) -> RumError {
    RumError::Corrupt(format!(
        "shard {shard} was poisoned by an earlier worker panic; its state is unreliable"
    ))
}

/// What a worker should do with its shard.
enum JobPayload {
    /// Execute ops through the instrumented wrappers (measurement path;
    /// results are discarded, logical traffic lands on the inner tracker).
    Ops(Vec<Op>),
    /// Replace contents from this shard's bulk-load partition (via
    /// `bulk_load_impl`: the facade charges the logical write once).
    Load(Vec<Record>),
}

/// One unit of work on a worker's job lane.
struct Job {
    shard: usize,
    payload: JobPayload,
    /// Record a per-op latency histogram while executing.
    timed: bool,
    reply: Sender<Completion>,
}

/// What a worker sends back when a job finishes (or fails).
struct Completion {
    shard: usize,
    outcome: Result<()>,
    /// The shard tracker's delta over this job — everything the facade
    /// needs to fold the job's cost into the wrapper tracker.
    delta: CostSnapshot,
    /// Per-op latencies, present when the job was `timed`.
    latency: Option<LatencyHistogram>,
    /// The job's op buffer, cleared and returned for reuse (double-buffered
    /// batch assembly: submission never reallocates in steady state).
    recycled: Option<Vec<Op>>,
}

/// Execute one job against its shard, with panic containment.
///
/// This is the single execution path for *both* the pool workers and the
/// inline (threads ≤ 1) mode, which is what makes the two modes trivially
/// cost-equivalent: same per-shard op order, same instrumented wrappers,
/// same tracker delta arithmetic.
fn run_shard_job(shard: &Shard, index: usize, payload: JobPayload, timed: bool) -> Completion {
    if shard.poisoned.load(Ordering::Acquire) {
        return Completion {
            shard: index,
            outcome: Err(poisoned_error(index)),
            delta: CostSnapshot::default(),
            latency: None,
            recycled: recycle(payload),
        };
    }
    let mut guard = shard.lock();
    let before = guard.tracker().snapshot();
    let mut latency = if timed {
        Some(LatencyHistogram::new())
    } else {
        None
    };
    let caught = {
        let method = guard.as_mut();
        let hist = &mut latency;
        // The catch_unwind boundary sits inside the lock scope, so a
        // panicking op never unwinds through the guard (no std mutex
        // poisoning) and the tracker can still be read for the partial
        // delta the op accrued before it died.
        catch_unwind(AssertUnwindSafe(|| match &payload {
            JobPayload::Ops(ops) => execute_ops(method, ops, hist),
            JobPayload::Load(records) => method.bulk_load_impl(records),
        }))
    };
    let delta = guard.tracker().since(&before);
    drop(guard);
    let outcome = match caught {
        Ok(result) => result,
        Err(payload) => {
            shard.poisoned.store(true, Ordering::Release);
            Err(RumError::Corrupt(format!(
                "shard worker panicked on shard {index} ({}); shard state is unreliable",
                panic_payload_message(&payload)
            )))
        }
    };
    Completion {
        shard: index,
        outcome,
        delta,
        latency,
        recycled: recycle(payload),
    }
}

/// Reclaim a job's op buffer (cleared) so the facade can reuse it.
fn recycle(payload: JobPayload) -> Option<Vec<Op>> {
    match payload {
        JobPayload::Ops(mut ops) => {
            ops.clear();
            Some(ops)
        }
        JobPayload::Load(_) => None,
    }
}

/// Run a per-shard sub-batch through the instrumented wrappers, timing
/// each op into `latency` when present.
///
/// Latency semantics on the sharded path: a range op fans out to every
/// shard, so it contributes one observation *per shard visited* (the
/// per-shard probe latency), not one end-to-end fan-out latency.
fn execute_ops(
    method: &mut dyn AccessMethod,
    ops: &[Op],
    latency: &mut Option<LatencyHistogram>,
) -> Result<()> {
    for &op in ops {
        let started = if latency.is_some() {
            Some(Instant::now())
        } else {
            None
        };
        match op {
            Op::Get(key) => {
                method.get(key)?;
            }
            Op::Range(lo, hi) => {
                method.range(lo, hi)?;
            }
            Op::Insert(key, value) => {
                method.insert(key, value)?;
            }
            Op::Update(key, value) => {
                method.update(key, value)?;
            }
            Op::Delete(key) => {
                method.delete(key)?;
            }
        }
        if let (Some(hist), Some(started)) = (latency.as_mut(), started) {
            hist.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
    Ok(())
}

/// The persistent worker pool: long-lived named threads, one FIFO job lane
/// each. Dropping the pool closes every lane and joins every worker.
struct WorkerPool {
    /// `lanes[w]` feeds worker `w`; shard `s` always uses lane `s % lanes.len()`,
    /// so each shard's jobs execute in submission order.
    lanes: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn start(shards: &[Arc<Shard>], workers: usize) -> WorkerPool {
        let mut lanes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let shards: Vec<Arc<Shard>> = shards.to_vec();
            // Named workers so panics and profiler output say which worker
            // fired instead of `<unnamed>`.
            let handle = std::thread::Builder::new()
                .name(format!("rum-shard-{w}"))
                .spawn(move || {
                    for job in rx {
                        let completion =
                            run_shard_job(&shards[job.shard], job.shard, job.payload, job.timed);
                        // A dropped receiver means the dispatch was
                        // abandoned; nothing useful to do with the result.
                        let _ = job.reply.send(completion);
                    }
                })
                .expect("spawn rum-shard worker");
            lanes.push(tx);
            handles.push(handle);
        }
        WorkerPool { lanes, handles }
    }

    fn workers(&self) -> usize {
        self.handles.len()
    }

    fn lane_for(&self, shard: usize) -> &Sender<Job> {
        &self.lanes[shard % self.lanes.len()]
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect every lane; workers drain their queues and exit.
        self.lanes.clear();
        for handle in self.handles.drain(..) {
            // Worker panics are caught per-job; a join error here means the
            // runtime died outside a job, which drop cannot surface.
            let _ = handle.join();
        }
    }
}

/// A dispatched batch awaiting collection — returned by
/// [`ShardedMethod::submit_batch`], consumed by
/// [`ShardedMethod::finish_batch`].
///
/// Every submitted batch **must** be finished: the per-shard cost deltas
/// travel in the completions, so dropping a `PendingBatch` unfinished
/// loses that traffic from the facade tracker.
pub struct PendingBatch {
    state: BatchState,
}

enum BatchState {
    /// Executed synchronously (no pool): deltas already absorbed.
    Done {
        outcome: Result<()>,
        latency: Option<LatencyHistogram>,
    },
    /// In flight on the pool; completions pending on `rx`.
    InFlight {
        rx: Receiver<Completion>,
        expected: usize,
        timed: bool,
    },
}

/// `K` instances of an access method behind one [`AccessMethod`] facade,
/// partitioned by key hash. Built from a factory so every shard gets its
/// own storage and tracker:
///
/// ```
/// use rum_core::shard::ShardedMethod;
/// # use rum_core::access::{AccessMethod, SpaceProfile};
/// # use rum_core::tracker::CostTracker;
/// # use rum_core::types::{Key, Record, Value, RECORD_SIZE};
/// # use std::sync::Arc;
/// # struct Toy { data: std::collections::BTreeMap<Key, Value>, t: Arc<CostTracker> }
/// # impl Toy { fn new() -> Self { Toy { data: Default::default(), t: CostTracker::new() } } }
/// # impl AccessMethod for Toy {
/// #     fn name(&self) -> String { "toy".into() }
/// #     fn len(&self) -> usize { self.data.len() }
/// #     fn tracker(&self) -> &Arc<CostTracker> { &self.t }
/// #     fn space_profile(&self) -> SpaceProfile {
/// #         SpaceProfile::from_physical(self.data.len(), (self.data.len() * RECORD_SIZE) as u64)
/// #     }
/// #     fn get_impl(&mut self, k: Key) -> rum_core::Result<Option<Value>> { Ok(self.data.get(&k).copied()) }
/// #     fn range_impl(&mut self, lo: Key, hi: Key) -> rum_core::Result<Vec<Record>> {
/// #         Ok(self.data.range(lo..=hi).map(|(&k, &v)| Record::new(k, v)).collect())
/// #     }
/// #     fn insert_impl(&mut self, k: Key, v: Value) -> rum_core::Result<()> { self.data.insert(k, v); Ok(()) }
/// #     fn update_impl(&mut self, k: Key, v: Value) -> rum_core::Result<bool> {
/// #         Ok(self.data.get_mut(&k).map(|slot| *slot = v).is_some())
/// #     }
/// #     fn delete_impl(&mut self, k: Key) -> rum_core::Result<bool> { Ok(self.data.remove(&k).is_some()) }
/// #     fn bulk_load_impl(&mut self, rs: &[Record]) -> rum_core::Result<()> {
/// #         self.data = rs.iter().map(|r| (r.key, r.value)).collect(); Ok(())
/// #     }
/// # }
/// let mut sharded = ShardedMethod::new(4, |_| Box::new(Toy::new()));
/// sharded.insert(7, 70).unwrap();
/// assert_eq!(sharded.get(7).unwrap(), Some(70));
/// assert_eq!(sharded.shards(), 4);
/// ```
pub struct ShardedMethod {
    name: String,
    /// Declared before `shards` so drop joins the workers first; the
    /// workers' own `Arc<Shard>` clones keep the shards alive meanwhile.
    pool: Option<WorkerPool>,
    shards: Vec<Arc<Shard>>,
    /// The externally visible tracker: logical charges from the wrapper
    /// entry points plus every absorbed inner delta.
    tracker: Arc<CostTracker>,
    /// Worker count for the batch pool; `<= 1` runs batches inline
    /// (identical costs, no threads at all).
    threads: usize,
    /// Structured-event channel for batch dispatches; the disabled
    /// [`NoopSink`](crate::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
    /// Cleared op buffers recycled through completions, so steady-state
    /// batch submission allocates nothing.
    spare: Vec<Vec<Op>>,
    /// Replacement factory for rebuild-based healing, armed by
    /// [`set_factory`](Self::set_factory). When a poisoned shard's inner
    /// method cannot repair itself ([`AccessMethod::try_heal`] returns
    /// `Ok(false)`), [`heal`](Self::heal) swaps in `factory(shard)` —
    /// fresh state, service restored.
    factory: Option<ShardFactory>,
}

/// Builds a replacement inner method for one shard (by shard index).
type ShardFactory = Box<dyn Fn(usize) -> Box<dyn AccessMethod> + Send>;

impl ShardedMethod {
    /// `k` shards from `factory(shard_index)`, with the batch worker pool
    /// capped at [`default_threads`](crate::runner::default_threads) — on
    /// a host with fewer cores than shards (or under `RUM_THREADS`), a
    /// worker serves several shard queues instead of oversubscribing.
    pub fn new<F>(k: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn AccessMethod>,
    {
        Self::with_threads(k, crate::runner::default_threads(), factory)
    }

    /// `k` shards with an explicit batch worker count (capped at `k`;
    /// `threads <= 1` executes batches inline, in shard order, with no
    /// pool).
    pub fn with_threads<F>(k: usize, threads: usize, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn AccessMethod>,
    {
        assert!(k >= 1, "a sharded method needs at least one shard");
        let shards: Vec<Arc<Shard>> = (0..k).map(|i| Shard::new(factory(i))).collect();
        let name = format!("{}-x{}", shards[0].lock().name(), k);
        ShardedMethod {
            name,
            pool: None,
            shards,
            tracker: CostTracker::new(),
            threads: threads.clamp(1, k),
            sink: crate::trace::noop_sink(),
            spare: Vec::new(),
            factory: None,
        }
    }

    /// Arm rebuild-based healing: when [`heal`](Self::heal) meets a
    /// poisoned shard whose inner method has no self-repair of its own,
    /// the shard is replaced with `factory(shard_index)` instead of
    /// staying refused forever.
    ///
    /// Kept separate from the construction factory because the
    /// constructors accept short-lived closures; healing needs one the
    /// wrapper can own for its whole lifetime.
    pub fn set_factory<F>(&mut self, factory: F)
    where
        F: Fn(usize) -> Box<dyn AccessMethod> + Send + 'static,
    {
        self.factory = Some(Box::new(factory));
    }

    /// Number of shards (the paper's `K`).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Batch worker threads this wrapper will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the persistent pool is currently running (it starts lazily
    /// on the first threaded batch and stops on drop or
    /// [`shutdown_pool`](Self::shutdown_pool)).
    pub fn pool_running(&self) -> bool {
        self.pool.is_some()
    }

    /// Join and discard the worker pool, if running. The next threaded
    /// batch starts a fresh one; per-op calls never need the pool.
    pub fn shutdown_pool(&mut self) {
        self.pool = None;
    }

    /// Indices of shards currently refusing service after a worker panic.
    pub fn poisoned_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.poisoned.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Restore service on every poisoned shard and return how many were
    /// healed. Healing is **explicit** — a poisoned shard keeps refusing
    /// until the operator (or a supervising layer) decides its state
    /// question is answered — and two-tiered:
    ///
    /// 1. Ask the inner method to repair itself
    ///    ([`AccessMethod::try_heal`]). A [`Durable`]-wrapped method
    ///    rebuilds from its checkpoint + committed WAL prefix, so the
    ///    healed shard serves exactly the acknowledged writes.
    /// 2. Otherwise, rebuild from the [`set_factory`](Self::set_factory)
    ///    replacement: a fresh, empty instance — service restored, state
    ///    reset (the honest outcome for a purely volatile structure).
    ///
    /// Repair I/O lands on the shard tracker and is folded into the
    /// wrapper tracker like any other delegated work; each healed shard
    /// emits one [`EventKind::RepairComplete`].
    ///
    /// Errors if a poisoned shard has neither self-repair nor a factory:
    /// refusing service stays strictly safer than serving unknown state.
    ///
    /// [`Durable`]: AccessMethod::try_heal
    pub fn heal(&mut self) -> Result<usize> {
        let poisoned = self.poisoned_shards();
        for &index in &poisoned {
            self.heal_shard(index)?;
        }
        Ok(poisoned.len())
    }

    /// Heal one shard (see [`heal`](Self::heal) for the strategy).
    fn heal_shard(&self, index: usize) -> Result<()> {
        let slot = &self.shards[index];
        let mut guard = slot.lock();
        let before = guard.tracker().snapshot();
        let self_repaired = match guard.try_heal() {
            Ok(done) => done,
            // Self-repair failed outright; fall back to replacement if we
            // can, otherwise surface the repair error.
            Err(e) if self.factory.is_none() => return Err(e),
            Err(_) => false,
        };
        let delta = guard.tracker().since(&before);
        self.tracker.absorb(&delta);
        let rebuilt = if self_repaired {
            false
        } else {
            let factory = self.factory.as_ref().ok_or_else(|| {
                RumError::Corrupt(format!(
                    "shard {index} cannot heal: the inner method has no self-repair \
                     and no replacement factory is set"
                ))
            })?;
            let mut fresh = factory(index);
            fresh.set_trace_sink(Arc::clone(&self.sink));
            *guard = fresh;
            true
        };
        drop(guard);
        slot.poisoned.store(false, Ordering::Release);
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::RepairComplete,
                &[("shard", index as u64), ("rebuilt", u64::from(rebuilt))],
            );
        }
        Ok(())
    }

    /// Which shard owns `key`. Fibonacci hashing, so dense sequential key
    /// universes spread evenly instead of aliasing onto `key % K`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards.len()
        }
    }

    /// Run `f` against one shard and fold the physical traffic it accrued
    /// on its private tracker into the wrapper tracker. This is the per-op
    /// path: it locks the shard and runs inline, never touching the pool.
    fn mirrored<T>(
        &self,
        shard: usize,
        f: impl FnOnce(&mut dyn AccessMethod) -> Result<T>,
    ) -> Result<T> {
        let slot = &self.shards[shard];
        if slot.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_error(shard));
        }
        let mut guard = slot.lock();
        let before = guard.tracker().snapshot();
        let out = f(guard.as_mut());
        let delta = guard.tracker().since(&before);
        self.tracker.absorb(&delta);
        out
    }

    /// Start the pool if this wrapper is configured for threaded batches.
    /// Returns whether batches should be dispatched to the pool.
    fn ensure_pool(&mut self) -> bool {
        if self.threads <= 1 || self.shards.len() <= 1 {
            return false;
        }
        if self.pool.is_none() {
            let workers = self.threads.min(self.shards.len());
            self.pool = Some(WorkerPool::start(&self.shards, workers));
        }
        true
    }

    /// A cleared per-shard op buffer, recycled when possible.
    fn part_buffer(&mut self) -> Vec<Op> {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Execute a batch of operations, partitioned per shard (ranges fan
    /// out to every shard), concurrently on the persistent worker pool
    /// when `threads > 1`.
    ///
    /// Per-shard sub-batches preserve the batch's relative op order, and
    /// every key deterministically maps to one shard, so each shard's
    /// state and cost evolution is identical to the serial execution —
    /// cross-shard interleaving only changes wall-clock time. Results are
    /// discarded (this is the measurement path); per-op logical traffic is
    /// charged by the inner instrumented wrappers and folded into the
    /// wrapper tracker afterwards, giving totals bit-identical to driving
    /// the wrapper one op at a time.
    pub fn execute_batch(&mut self, ops: &[Op]) -> Result<()> {
        let batch = self.submit_batch(ops, false)?;
        self.finish_batch(batch).map(|_| ())
    }

    /// Partition `ops` into per-shard sub-batches and hand them to the
    /// worker pool, returning without waiting for completion — the caller
    /// can assemble the next batch while the workers run this one, then
    /// [`finish_batch`](Self::finish_batch) to fold the costs in.
    ///
    /// Without a pool (`threads <= 1` or `K == 1`) the batch executes
    /// inline, in shard order, before returning; `finish_batch` then just
    /// reports its outcome. With `timed`, each worker records a per-op
    /// [`LatencyHistogram`] returned (merged in shard order) by
    /// `finish_batch`.
    pub fn submit_batch(&mut self, ops: &[Op], timed: bool) -> Result<PendingBatch> {
        let k = self.shards.len();
        let mut parts: Vec<Vec<Op>> = Vec::with_capacity(k);
        for _ in 0..k {
            let buf = self.part_buffer();
            parts.push(buf);
        }
        for &op in ops {
            match op {
                Op::Range(..) => {
                    for part in parts.iter_mut() {
                        part.push(op);
                    }
                }
                Op::Get(key) | Op::Insert(key, _) | Op::Update(key, _) | Op::Delete(key) => {
                    let shard = self.shard_of(key);
                    parts[shard].push(op);
                }
            }
        }
        let pooled = self.ensure_pool();
        if self.sink.enabled() {
            let largest = parts.iter().map(Vec::len).max().unwrap_or(0);
            let workers = self.pool.as_ref().map_or(1, WorkerPool::workers);
            self.sink.emit(
                EventKind::ShardDispatch,
                &[
                    ("ops", ops.len() as u64),
                    ("shards", k as u64),
                    ("workers", workers as u64),
                    ("largest_part", largest as u64),
                ],
            );
        }

        if !pooled {
            // Inline: the exact same job runner the workers use, shard
            // order, costs folded immediately.
            let mut outcome: Result<()> = Ok(());
            let mut merged = if timed {
                Some(LatencyHistogram::new())
            } else {
                None
            };
            for (index, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    self.spare.push(part);
                    continue;
                }
                let c = run_shard_job(&self.shards[index], index, JobPayload::Ops(part), timed);
                self.tracker.absorb(&c.delta);
                if let Some(buf) = c.recycled {
                    self.spare.push(buf);
                }
                if let (Some(m), Some(h)) = (merged.as_mut(), c.latency.as_ref()) {
                    m.merge(h);
                }
                if outcome.is_ok() {
                    outcome = c.outcome;
                }
            }
            return Ok(PendingBatch {
                state: BatchState::Done {
                    outcome,
                    latency: merged,
                },
            });
        }

        let (reply, rx) = channel();
        let mut expected = 0usize;
        for (index, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                self.spare.push(part);
                continue;
            }
            let job = Job {
                shard: index,
                payload: JobPayload::Ops(part),
                timed,
                reply: reply.clone(),
            };
            self.send_job(index, job)?;
            expected += 1;
        }
        drop(reply);
        Ok(PendingBatch {
            state: BatchState::InFlight {
                rx,
                expected,
                timed,
            },
        })
    }

    fn send_job(&self, shard: usize, job: Job) -> Result<()> {
        let pool = self.pool.as_ref().expect("send_job requires a pool");
        pool.lane_for(shard).send(job).map_err(|_| {
            RumError::Corrupt(format!(
                "worker lane {} is dead (worker thread exited); pool is unusable",
                shard % pool.workers()
            ))
        })
    }

    /// Wait for a submitted batch, fold every completed shard's tracker
    /// delta into the wrapper tracker **in shard order**, and return the
    /// merged latency histogram when the batch was timed.
    ///
    /// Errors surface in shard order too: the first failing shard's error
    /// is returned after *all* completions (and their cost deltas) have
    /// been folded in, so a failed batch never loses counted traffic from
    /// the shards that did finish.
    pub fn finish_batch(&mut self, batch: PendingBatch) -> Result<Option<LatencyHistogram>> {
        match batch.state {
            BatchState::Done { outcome, latency } => outcome.map(|()| latency),
            BatchState::InFlight {
                rx,
                expected,
                timed,
            } => self.collect(rx, expected, timed),
        }
    }

    /// Receive `expected` completions and fold them in shard order.
    fn collect(
        &mut self,
        rx: Receiver<Completion>,
        expected: usize,
        timed: bool,
    ) -> Result<Option<LatencyHistogram>> {
        let k = self.shards.len();
        let mut completions: Vec<Option<Completion>> =
            std::iter::repeat_with(|| None).take(k).collect();
        let mut received = 0usize;
        while received < expected {
            match rx.recv() {
                Ok(c) => {
                    let slot = c.shard;
                    completions[slot] = Some(c);
                    received += 1;
                }
                // Every sender dropped with completions missing: a worker
                // died outside the per-job panic guard.
                Err(_) => break,
            }
        }
        let mut outcome: Result<()> = if received == expected {
            Ok(())
        } else {
            Err(RumError::Corrupt(
                "a shard worker died before completing its job; its cost delta is lost".into(),
            ))
        };
        let mut merged = if timed {
            Some(LatencyHistogram::new())
        } else {
            None
        };
        for c in completions.into_iter().flatten() {
            self.tracker.absorb(&c.delta);
            if let Some(buf) = c.recycled {
                self.spare.push(buf);
            }
            if let (Some(m), Some(h)) = (merged.as_mut(), c.latency.as_ref()) {
                m.merge(h);
            }
            if outcome.is_ok() {
                if let Err(e) = c.outcome {
                    outcome = Err(e);
                }
            }
        }
        outcome.map(|()| merged)
    }
}

/// K-way merge of individually sorted, key-disjoint partial results into
/// one ascending run, via a min-heap seeded with each partial's head:
/// O(total · log K) instead of the old O(total · K) selection scan. Ties
/// (impossible for key-disjoint shards, but handled) pop the lowest shard
/// index first, matching the old scan's preference.
fn merge_sorted_partials(partials: Vec<Vec<Record>>) -> Vec<Record> {
    use std::cmp::Reverse;
    let total: usize = partials.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursors = vec![0usize; partials.len()];
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = partials
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(shard, p)| Reverse((p[0].key, shard)))
        .collect();
    while let Some(Reverse((_, shard))) = heap.pop() {
        let cursor = cursors[shard];
        merged.push(partials[shard][cursor]);
        cursors[shard] = cursor + 1;
        if let Some(next) = partials[shard].get(cursor + 1) {
            heap.push(Reverse((next.key, shard)));
        }
    }
    merged
}

impl AccessMethod for ShardedMethod {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    /// Sum of the shard footprints: base bytes add up to the same live
    /// data, while the K auxiliary structures are exactly the MO sharding
    /// spends to buy concurrency.
    fn space_profile(&self) -> SpaceProfile {
        self.shards
            .iter()
            .fold(SpaceProfile::default(), |acc, shard| {
                let p = shard.lock().space_profile();
                SpaceProfile {
                    base_bytes: acc.base_bytes + p.base_bytes,
                    aux_bytes: acc.aux_bytes + p.aux_bytes,
                }
            })
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.get_impl(key))
    }

    /// Fan out to every shard and k-way merge the (individually sorted,
    /// key-disjoint) partial results into ascending key order.
    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let k = self.shards.len();
        let mut partials: Vec<Vec<Record>> = Vec::with_capacity(k);
        for shard in 0..k {
            partials.push(self.mirrored(shard, |m| m.range_impl(lo, hi))?);
        }
        Ok(merge_sorted_partials(partials))
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.insert_impl(key, value))
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.update_impl(key, value))
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let shard = self.shard_of(key);
        self.mirrored(shard, |m| m.delete_impl(key))
    }

    /// Partition the (ascending) input per shard — each partition stays
    /// strictly ascending — and load shards concurrently on the pool.
    /// Every shard loads its partition, including empty ones: bulk load
    /// replaces prior contents everywhere.
    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        let k = self.shards.len();
        let mut parts: Vec<Vec<Record>> = vec![Vec::new(); k];
        for &r in records {
            let shard = self.shard_of(r.key);
            parts[shard].push(r);
        }
        if !self.ensure_pool() {
            let mut outcome: Result<()> = Ok(());
            for (index, part) in parts.into_iter().enumerate() {
                let c = run_shard_job(&self.shards[index], index, JobPayload::Load(part), false);
                self.tracker.absorb(&c.delta);
                if outcome.is_ok() {
                    outcome = c.outcome;
                }
            }
            return outcome;
        }
        let (reply, rx) = channel();
        for (index, part) in parts.into_iter().enumerate() {
            let job = Job {
                shard: index,
                payload: JobPayload::Load(part),
                timed: false,
                reply: reply.clone(),
            };
            self.send_job(index, job)?;
        }
        drop(reply);
        self.collect(rx, k, false).map(|_| ())
    }

    fn flush(&mut self) -> Result<()> {
        for shard in 0..self.shards.len() {
            self.mirrored(shard, |m| m.flush())?;
        }
        Ok(())
    }

    /// Keep the sink for dispatch events and forward it to every shard, so
    /// inner structures (LSM trees, WALs...) report into the same channel.
    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        for shard in self.shards.iter() {
            shard.lock().set_trace_sink(Arc::clone(&sink));
        }
        self.sink = sink;
    }

    /// Heal every poisoned shard (see [`heal`](Self::heal)); the facade
    /// reports `Ok(true)` once all shards are serving again.
    fn try_heal(&mut self) -> Result<bool> {
        self.heal()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DataClass;
    use crate::types::RECORD_SIZE;

    /// In-memory method with a deterministic cost model: every physical
    /// access charges 2 bytes per logical byte.
    struct Amp2 {
        data: std::collections::BTreeMap<Key, Value>,
        tracker: Arc<CostTracker>,
    }

    impl Amp2 {
        fn boxed(_shard: usize) -> Box<dyn AccessMethod> {
            Box::new(Amp2 {
                data: Default::default(),
                tracker: CostTracker::new(),
            })
        }
    }

    impl AccessMethod for Amp2 {
        fn name(&self) -> String {
            "amp2".into()
        }
        fn len(&self) -> usize {
            self.data.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            &self.tracker
        }
        fn space_profile(&self) -> SpaceProfile {
            SpaceProfile::from_physical(self.data.len(), (self.data.len() * 3 * RECORD_SIZE) as u64)
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            let r = self.data.get(&key).copied();
            if r.is_some() {
                self.tracker.read(DataClass::Base, 2 * RECORD_SIZE as u64);
            }
            Ok(r)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            let out: Vec<Record> = self
                .data
                .range(lo..=hi)
                .map(|(&k, &v)| Record::new(k, v))
                .collect();
            self.tracker
                .read(DataClass::Base, (2 * out.len() * RECORD_SIZE) as u64);
            Ok(out)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
            self.data.insert(key, value);
            Ok(())
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            if let std::collections::btree_map::Entry::Occupied(mut e) = self.data.entry(key) {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                e.insert(value);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            if self.data.remove(&key).is_some() {
                self.tracker.write(DataClass::Base, 2 * RECORD_SIZE as u64);
                Ok(true)
            } else {
                Ok(false)
            }
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            self.tracker
                .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
            self.data = records.iter().map(|r| (r.key, r.value)).collect();
            Ok(())
        }
    }

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n).map(|k| Record::new(3 * k, k)).collect()
    }

    fn drive_per_op(m: &mut ShardedMethod, ops: &[Op]) {
        for &op in ops {
            match op {
                Op::Get(k) => {
                    m.get(k).unwrap();
                }
                Op::Range(lo, hi) => {
                    m.range(lo, hi).unwrap();
                }
                Op::Insert(k, v) => m.insert(k, v).unwrap(),
                Op::Update(k, v) => {
                    m.update(k, v).unwrap();
                }
                Op::Delete(k) => {
                    m.delete(k).unwrap();
                }
            }
        }
    }

    fn mixed_ops(count: u64) -> Vec<Op> {
        (0..count)
            .map(|i| match i % 5 {
                0 => Op::Get(3 * (i % 500)),
                1 => Op::Insert(3 * i + 2, i),
                2 => Op::Update(3 * (i % 500), i),
                3 => Op::Delete(3 * ((i / 5) % 500)),
                _ => Op::Range(3 * (i % 300), 3 * (i % 300) + 90),
            })
            .collect()
    }

    #[test]
    fn routing_covers_every_shard() {
        let sharded = ShardedMethod::new(8, Amp2::boxed);
        let mut hit = [false; 8];
        for k in 0..10_000u64 {
            hit[sharded.shard_of(k)] = true;
        }
        assert!(hit.iter().all(|&h| h), "dense keys must reach all shards");
    }

    #[test]
    fn behaves_like_one_method() {
        let mut sharded = ShardedMethod::new(4, Amp2::boxed);
        sharded.bulk_load(&sample_records(100)).unwrap();
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.get(30).unwrap(), Some(10));
        assert_eq!(sharded.get(31).unwrap(), None);
        assert!(sharded.update(30, 99).unwrap());
        assert_eq!(sharded.get(30).unwrap(), Some(99));
        assert!(sharded.delete(30).unwrap());
        assert!(!sharded.delete(30).unwrap());
        assert_eq!(sharded.len(), 99);
        // Range results merge across shards in ascending order.
        let rs = sharded.range(0, 60).unwrap();
        let keys: Vec<Key> = rs.iter().map(|r| r.key).collect();
        assert_eq!(
            keys,
            vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60]
        );
    }

    #[test]
    fn one_shard_is_cost_transparent() {
        // K=1 routes everything to the single inner instance: reports and
        // contents must match the bare method exactly.
        let records = sample_records(200);
        let ops: Vec<Op> = (0..600u64)
            .map(|i| match i % 4 {
                0 => Op::Get(3 * (i % 200)),
                1 => Op::Insert(3 * i + 1, i),
                2 => Op::Update(3 * (i % 200), i),
                _ => Op::Range(3 * (i % 100), 3 * (i % 100) + 30),
            })
            .collect();

        let mut bare = Amp2::boxed(0);
        let mut sharded = ShardedMethod::new(1, Amp2::boxed);
        bare.bulk_load(&records).unwrap();
        sharded.bulk_load(&records).unwrap();
        for &op in &ops {
            match op {
                Op::Get(k) => {
                    bare.get(k).unwrap();
                }
                Op::Range(lo, hi) => {
                    bare.range(lo, hi).unwrap();
                }
                Op::Insert(k, v) => bare.insert(k, v).unwrap(),
                Op::Update(k, v) => {
                    bare.update(k, v).unwrap();
                }
                Op::Delete(k) => {
                    bare.delete(k).unwrap();
                }
            }
        }
        drive_per_op(&mut sharded, &ops);
        assert_eq!(bare.len(), sharded.len());
        assert_eq!(bare.tracker().snapshot(), sharded.tracker().snapshot());
        let bp = bare.space_profile();
        let sp = sharded.space_profile();
        assert_eq!((bp.base_bytes, bp.aux_bytes), (sp.base_bytes, sp.aux_bytes));
    }

    #[test]
    fn batched_concurrent_costs_match_per_op_serial() {
        // The same op sequence, driven (a) one op at a time through the
        // wrapper and (b) as pooled per-shard batches, must leave both
        // wrappers with bit-identical tracker totals and contents — with
        // full-width pools and with fewer workers than shards.
        let records = sample_records(500);
        let ops = mixed_ops(4000);

        let mut per_op = ShardedMethod::with_threads(4, 1, Amp2::boxed);
        per_op.bulk_load(&records).unwrap();
        drive_per_op(&mut per_op, &ops);
        // Taken once, before any content-equality range below charges the
        // reference instance's tracker.
        let reference_costs = per_op.tracker().snapshot();

        for threads in [2, 4] {
            let mut batched = ShardedMethod::with_threads(4, threads, Amp2::boxed);
            batched.bulk_load(&records).unwrap();
            for chunk in ops.chunks(257) {
                batched.execute_batch(chunk).unwrap();
            }
            assert!(batched.pool_running(), "threads={threads}");
            assert_eq!(per_op.len(), batched.len());
            assert_eq!(
                reference_costs,
                batched.tracker().snapshot(),
                "threads={threads}: pooled batches must not change a single counted byte"
            );
            assert_eq!(
                per_op.range(0, Key::MAX).unwrap(),
                batched.range(0, Key::MAX).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_persists_across_batches_and_stops_on_demand() {
        let mut sharded = ShardedMethod::with_threads(4, 2, Amp2::boxed);
        assert!(!sharded.pool_running(), "pool starts lazily");
        sharded.bulk_load(&sample_records(100)).unwrap();
        assert!(sharded.pool_running(), "bulk load starts the pool");
        for chunk in mixed_ops(1000).chunks(100) {
            sharded.execute_batch(chunk).unwrap();
        }
        assert!(sharded.pool_running(), "pool survives across batches");
        sharded.shutdown_pool();
        assert!(!sharded.pool_running());
        // A later batch restarts it transparently.
        sharded.execute_batch(&[Op::Insert(1, 1)]).unwrap();
        assert!(sharded.pool_running());
    }

    #[test]
    fn timed_batches_return_merged_histograms() {
        for threads in [1, 3] {
            let mut sharded = ShardedMethod::with_threads(4, threads, Amp2::boxed);
            sharded.bulk_load(&sample_records(200)).unwrap();
            let ops: Vec<Op> = (0..300u64).map(|i| Op::Insert(5 * i + 1, i)).collect();
            let pending = sharded.submit_batch(&ops, true).unwrap();
            let hist = sharded
                .finish_batch(pending)
                .unwrap()
                .expect("timed batch returns a histogram");
            // Point ops are timed exactly once each.
            assert_eq!(hist.count(), 300, "threads={threads}");
            // Untimed batches return no histogram.
            let pending = sharded.submit_batch(&ops, false).unwrap();
            assert!(sharded.finish_batch(pending).unwrap().is_none());
        }
    }

    #[test]
    fn heap_merge_matches_linear_scan_reference() {
        // The old O(total×K) selection loop, kept as the reference.
        fn linear_merge(partials: &[Vec<Record>]) -> Vec<Record> {
            let total: usize = partials.iter().map(Vec::len).sum();
            let mut merged = Vec::with_capacity(total);
            let mut cursors = vec![0usize; partials.len()];
            for _ in 0..total {
                let mut best: Option<usize> = None;
                for (shard, &cursor) in cursors.iter().enumerate() {
                    if cursor < partials[shard].len()
                        && best.is_none_or(|b| {
                            partials[shard][cursor].key < partials[b][cursors[b]].key
                        })
                    {
                        best = Some(shard);
                    }
                }
                let shard = best.expect("total counts a remaining record");
                merged.push(partials[shard][cursors[shard]]);
                cursors[shard] += 1;
            }
            merged
        }

        // Deterministic pseudo-random disjoint partials of varying shapes,
        // including empty ones.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in [1usize, 2, 3, 5, 8] {
            let mut partials: Vec<Vec<Record>> = vec![Vec::new(); k];
            for i in 0..500u64 {
                let key = next() % 10_000;
                partials[(key as usize) % k].push(Record::new(key, i));
            }
            for p in partials.iter_mut() {
                p.sort();
                p.dedup_by_key(|r| r.key);
            }
            partials[0].clear(); // one empty partial
            let expected = linear_merge(&partials);
            assert_eq!(merge_sorted_partials(partials), expected, "k={k}");
        }
        assert_eq!(merge_sorted_partials(Vec::new()), Vec::new());
    }

    #[test]
    fn new_caps_threads_at_default_and_shards() {
        let sharded = ShardedMethod::new(8, Amp2::boxed);
        assert!(sharded.threads() <= 8);
        assert!(sharded.threads() >= 1);
        // with_threads clamps to [1, k].
        assert_eq!(
            ShardedMethod::with_threads(4, 100, Amp2::boxed).threads(),
            4
        );
        assert_eq!(ShardedMethod::with_threads(4, 0, Amp2::boxed).threads(), 1);
    }

    #[test]
    fn bulk_load_replaces_contents_on_every_shard() {
        let mut sharded = ShardedMethod::new(4, Amp2::boxed);
        for k in 0..100u64 {
            sharded.insert(k * 7 + 1, 1).unwrap();
        }
        sharded.bulk_load(&sample_records(10)).unwrap();
        assert_eq!(sharded.len(), 10);
        assert_eq!(sharded.get(8).unwrap(), None);
    }

    #[test]
    fn name_and_profile_reflect_k() {
        let sharded = ShardedMethod::new(4, Amp2::boxed);
        assert_eq!(sharded.name(), "amp2-x4");
        assert_eq!(sharded.shards(), 4);
    }

    /// An Amp2 that panics when asked to insert one specific key —
    /// deterministic shard poisoning for the healing tests.
    struct Trip {
        inner: Amp2,
        trigger: Key,
        /// When set, `try_heal` claims self-repair (data preserved).
        self_heals: bool,
    }

    impl Trip {
        fn factory(trigger: Key, self_heals: bool) -> impl Fn(usize) -> Box<dyn AccessMethod> {
            move |_| {
                Box::new(Trip {
                    inner: Amp2 {
                        data: Default::default(),
                        tracker: CostTracker::new(),
                    },
                    trigger,
                    self_heals,
                })
            }
        }
    }

    impl AccessMethod for Trip {
        fn name(&self) -> String {
            "trip".into()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn tracker(&self) -> &Arc<CostTracker> {
            self.inner.tracker()
        }
        fn space_profile(&self) -> SpaceProfile {
            self.inner.space_profile()
        }
        fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
            self.inner.get_impl(key)
        }
        fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
            self.inner.range_impl(lo, hi)
        }
        fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
            assert!(key != self.trigger, "tripwire key inserted");
            self.inner.insert_impl(key, value)
        }
        fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
            self.inner.update_impl(key, value)
        }
        fn delete_impl(&mut self, key: Key) -> Result<bool> {
            self.inner.delete_impl(key)
        }
        fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
            self.inner.bulk_load_impl(records)
        }
        fn try_heal(&mut self) -> Result<bool> {
            Ok(self.self_heals)
        }
    }

    /// Keys deterministically routed to `want`, excluding the tripwire.
    fn keys_on_shard(m: &ShardedMethod, want: usize, trigger: Key, n: usize) -> Vec<Key> {
        (0..100_000u64)
            .filter(|&key| key != trigger && m.shard_of(key) == want)
            .take(n)
            .collect()
    }

    #[test]
    fn heal_rebuilds_a_poisoned_shard_from_the_factory() {
        let trigger: Key = 0xBAD_F00D;
        // threads = 1: batches run inline through the same job runner the
        // pool uses, so poisoning is deterministic and thread-free.
        let mut sharded = ShardedMethod::with_threads(2, 1, Trip::factory(trigger, false));
        let sink = crate::trace::MemorySink::shared();
        sharded.set_trace_sink(Arc::clone(&sink) as _);
        let bad = sharded.shard_of(trigger);
        let doomed = keys_on_shard(&sharded, bad, trigger, 4);
        let healthy = keys_on_shard(&sharded, 1 - bad, trigger, 4);
        for &k in doomed.iter().chain(&healthy) {
            sharded.insert(k, k).unwrap();
        }

        assert!(sharded.execute_batch(&[Op::Insert(trigger, 1)]).is_err());
        assert_eq!(sharded.poisoned_shards(), vec![bad]);
        assert!(sharded.get(doomed[0]).is_err(), "poisoned shard refuses");

        // No self-repair, no factory: healing must refuse too.
        match sharded.heal() {
            Err(RumError::Corrupt(m)) => assert!(m.contains("no replacement factory"), "{m}"),
            other => panic!("heal without a factory must fail, got {other:?}"),
        }
        assert_eq!(sharded.poisoned_shards(), vec![bad], "still poisoned");

        sharded.set_factory(Trip::factory(trigger, false));
        assert_eq!(sharded.heal().unwrap(), 1);
        assert!(sharded.poisoned_shards().is_empty());
        // Service restored: the rebuilt shard starts fresh (volatile inner,
        // nothing to replay), the healthy shard kept its data.
        assert_eq!(sharded.get(doomed[0]).unwrap(), None);
        assert_eq!(sharded.get(healthy[0]).unwrap(), Some(healthy[0]));
        sharded.insert(doomed[0], 7).unwrap();
        assert_eq!(sharded.get(doomed[0]).unwrap(), Some(7));
        let repairs: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::RepairComplete)
            .collect();
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].field("shard"), Some(bad as u64));
        assert_eq!(repairs[0].field("rebuilt"), Some(1));
        // Healing an already-healthy wrapper is a no-op.
        assert_eq!(sharded.heal().unwrap(), 0);
    }

    #[test]
    fn heal_prefers_the_inner_methods_own_repair() {
        let trigger: Key = 0xBAD_F00D;
        let mut sharded = ShardedMethod::with_threads(2, 1, Trip::factory(trigger, true));
        let bad = sharded.shard_of(trigger);
        let doomed = keys_on_shard(&sharded, bad, trigger, 4);
        for &k in &doomed {
            sharded.insert(k, k).unwrap();
        }
        assert!(sharded.execute_batch(&[Op::Insert(trigger, 1)]).is_err());
        assert_eq!(sharded.poisoned_shards(), vec![bad]);
        // try_heal reports success (the durable case: state replayed to
        // the acked prefix), so no factory is needed and data survives.
        assert_eq!(sharded.heal().unwrap(), 1);
        assert_eq!(sharded.get(doomed[0]).unwrap(), Some(doomed[0]));
        // The facade-level try_heal is the same operation behind the trait.
        assert!(sharded.execute_batch(&[Op::Insert(trigger, 1)]).is_err());
        assert!(sharded.try_heal().unwrap());
        assert!(sharded.poisoned_shards().is_empty());
    }
}
