//! # rum-core
//!
//! Core abstractions for the RUM Conjecture reproduction
//! (Athanassoulis et al., *Designing Access Methods: The RUM Conjecture*,
//! EDBT 2016).
//!
//! The paper defines three fundamental overheads of any access method:
//!
//! * **RO** (read overhead / *read amplification*): total bytes read
//!   (auxiliary + base) divided by the bytes of data actually retrieved.
//! * **UO** (update overhead / *write amplification*): bytes physically
//!   written divided by the bytes of the logical update.
//! * **MO** (memory overhead / *space amplification*): bytes occupied by
//!   base plus auxiliary data divided by the bytes of base data.
//!
//! This crate provides the vocabulary every access method in the workspace
//! speaks:
//!
//! * [`types`] — the record model (`u64` key + `u64` value, 16-byte records,
//!   4 KiB pages, `B = 256` records per page), mirroring the paper's
//!   "array of N fixed-sized elements in blocks".
//! * [`tracker`] — [`CostTracker`], the instrumented
//!   counter set from which all three amplifications are computed.
//! * [`access`] — the [`AccessMethod`] trait.
//! * [`workload`] — seeded workload generators (uniform / zipfian /
//!   sequential key distributions, configurable operation mixes).
//! * [`runner`] — drives an access method through a workload and produces a
//!   [`RumReport`](runner::RumReport).
//! * [`triangle`] — barycentric projection of (RO, UO, MO) onto the RUM
//!   triangle of the paper's Figures 1 and 3, with an ASCII renderer.
//! * [`wizard`] — the "access method wizard" envisioned in §5 of the paper:
//!   a cost-model-driven advisor that ranks access methods for a workload.
//! * [`advisor`] — the wizard's empirical counterpart: per-method profiles
//!   built from measured [`RumReport`](runner::RumReport)s, measured
//!   recommendations, and analytic-vs-measured calibration reporting.
//! * [`autotune`] — the closed loop over those pieces: an online
//!   [`AutoTuner`] watching trace trajectories,
//!   detects workload drift, and morphs the live structure when the
//!   predicted win beats the migration bill.
//! * [`trace`] — time-resolved observability: windowed RUM trajectories,
//!   log-bucketed latency histograms, and structured component events
//!   ([`trace::TraceSink`]), strictly opt-in with a
//!   zero-observer-effect guarantee.
//! * [`metrics`] — the live metrics plane: a zero-dependency registry of
//!   counters/gauges/histograms mirroring the event stream, and the
//!   [`DebtLedger`] attributing every background
//!   byte to the op class that causally incurred it, with byte-exact
//!   conservation against the tracker.

pub mod access;
pub mod advisor;
pub mod autotune;
pub mod error;
pub mod metrics;
pub mod runner;
pub mod shard;
pub mod trace;
pub mod tracker;
pub mod triangle;
pub mod types;
pub mod wizard;
pub mod workload;

pub use access::{check_bulk_input, AccessMethod, SpaceProfile};
pub use autotune::{
    AutoTuneConfig, AutoTuneSummary, AutoTuner, MigrationReceipt, Morphable, OpCounts,
    RetuneEstimate, TuneKind, TunePlan,
};
pub use error::{panic_payload_message, Result, RumError};
pub use metrics::{
    ClassAttribution, DebtLedger, DebtSnapshot, MetricKey, MetricsPlane, MetricsRegistry,
    MetricsSink, MetricsSnapshot, OpClass,
};
pub use shard::ShardedMethod;
pub use trace::{
    noop_sink, Event, EventKind, LatencyHistogram, MemorySink, NoopSink, TraceCollector, TraceSink,
    TrajectoryWindow, DEFAULT_TRACE_WINDOW,
};
pub use tracker::{CostSnapshot, CostTracker, DataClass};
pub use types::{Key, Record, Value, PAGE_SIZE, RECORDS_PER_PAGE, RECORD_SIZE};
