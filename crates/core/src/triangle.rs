//! Geometry of the RUM space (Figures 1 and 3 of the paper).
//!
//! The paper visualizes access methods in a triangle whose corners are
//! *Read Optimized* (top), *Write Optimized* (bottom left) and *Space
//! Optimized* (bottom right). A method sits close to a corner when it is
//! good at that overhead. We make the picture quantitative: from a measured
//! triple `(RO, UO, MO)` we compute per-axis *goodness* `g = 1 / overhead`
//! (each overhead has a theoretical minimum of 1.0, so goodness is in
//! (0, 1]) and place the method at the barycentric combination of the three
//! corners weighted by normalized goodness. Log-damping keeps wildly
//! unbalanced methods (e.g. a full scan with RO = N) inside the triangle
//! instead of squashed onto an edge.

/// A point in the RUM triangle, with the measurements that produced it.
#[derive(Clone, Debug)]
pub struct RumPoint {
    pub label: String,
    pub ro: f64,
    pub uo: f64,
    pub mo: f64,
    /// x in [0, 1]: 0 = write corner, 1 = space corner.
    pub x: f64,
    /// y in [0, 1]: 1 = read corner.
    pub y: f64,
}

/// Corner coordinates of the unit triangle.
pub const READ_CORNER: (f64, f64) = (0.5, 1.0);
pub const WRITE_CORNER: (f64, f64) = (0.0, 0.0);
pub const SPACE_CORNER: (f64, f64) = (1.0, 0.0);

/// Damped goodness of one overhead: 1 when the overhead is at its
/// theoretical minimum (1.0), decaying logarithmically as it grows.
fn goodness(overhead: f64) -> f64 {
    let o = if overhead.is_finite() {
        overhead.max(1.0)
    } else {
        1e12
    };
    1.0 / (1.0 + o.ln())
}

/// Project a measured `(ro, uo, mo)` triple to a triangle position.
///
/// The weight on each corner is the method's relative goodness on that
/// axis, so "read optimized" methods drift toward the read corner, and a
/// perfectly balanced method sits at the centroid.
pub fn project(ro: f64, uo: f64, mo: f64) -> (f64, f64) {
    let gr = goodness(ro);
    let gu = goodness(uo);
    let gm = goodness(mo);
    let total = gr + gu + gm;
    let (wr, wu, wm) = (gr / total, gu / total, gm / total);
    let x = wr * READ_CORNER.0 + wu * WRITE_CORNER.0 + wm * SPACE_CORNER.0;
    let y = wr * READ_CORNER.1 + wu * WRITE_CORNER.1 + wm * SPACE_CORNER.1;
    (x, y)
}

/// Build a labeled point from measurements.
pub fn rum_point(label: impl Into<String>, ro: f64, uo: f64, mo: f64) -> RumPoint {
    let (x, y) = project(ro, uo, mo);
    RumPoint {
        label: label.into(),
        ro,
        uo,
        mo,
        x,
        y,
    }
}

/// Render points as an ASCII RUM triangle (Figure 1 style).
///
/// Each point is drawn as a letter `A`, `B`, ... and listed in the legend
/// with its measured overheads.
pub fn render_ascii(points: &[RumPoint], width: usize, height: usize) -> String {
    let width = width.max(24);
    let height = height.max(12);
    let mut grid = vec![vec![' '; width]; height];

    // Triangle outline: apex top-center, base along the bottom row.
    for (row, cells) in grid.iter_mut().enumerate() {
        let t = row as f64 / (height - 1) as f64; // 0 at apex, 1 at base
        let half = t * (width - 1) as f64 / 2.0;
        let cx = (width - 1) as f64 / 2.0;
        let left = (cx - half).round() as usize;
        let right = (cx + half).round() as usize;
        cells[left.min(width - 1)] = '.';
        cells[right.min(width - 1)] = '.';
    }
    for c in grid[height - 1].iter_mut() {
        *c = '.';
    }

    let mut legend = String::new();
    for (i, p) in points.iter().enumerate() {
        let marker = (b'A' + (i % 26) as u8) as char;
        // y = 1 is the apex (row 0); x in [0,1] maps within the row's span.
        let row = ((1.0 - p.y) * (height - 1) as f64).round() as usize;
        let t = row as f64 / (height - 1) as f64;
        let half = t * (width - 1) as f64 / 2.0;
        let cx = (width - 1) as f64 / 2.0;
        let col = (cx - half + p.x * 2.0 * half).round() as usize;
        let row = row.min(height - 1);
        let col = col.min(width - 1);
        grid[row][col] = marker;
        legend.push_str(&format!(
            "  {} = {:<26} RO={:<10.3} UO={:<10.3} MO={:<10.3}\n",
            marker,
            p.label,
            cap(p.ro),
            cap(p.uo),
            cap(p.mo)
        ));
    }

    let mut out = String::new();
    out.push_str(&format!("{:^w$}\n", "READ OPTIMIZED", w = width));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:<w2$}{:>w2$}\n",
        "WRITE OPTIMIZED",
        "SPACE OPTIMIZED",
        w2 = width / 2
    ));
    out.push_str(&legend);
    out
}

fn cap(x: f64) -> f64 {
    if x.is_finite() {
        x.min(1e9)
    } else {
        1e9
    }
}

/// CSV with header for a set of points.
pub fn to_csv(points: &[RumPoint]) -> String {
    let mut s = String::from("label,ro,uo,mo,x,y\n");
    for p in points {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            p.label, p.ro, p.uo, p.mo, p.x, p.y
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inside_triangle(x: f64, y: f64) -> bool {
        // Barycentric test for triangle (0,0) (1,0) (0.5,1).
        if !(0.0..=1.0).contains(&y) {
            return false;
        }
        let half = (1.0 - y) / 2.0;
        (0.5 - half - 1e-9..=0.5 + half + 1e-9).contains(&x)
    }

    #[test]
    fn balanced_method_sits_at_centroid() {
        let (x, y) = project(2.0, 2.0, 2.0);
        assert!((x - 0.5).abs() < 1e-9);
        assert!((y - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn read_optimized_drifts_up() {
        let (_, y_read) = project(1.0, 50.0, 50.0);
        let (_, y_bal) = project(10.0, 10.0, 10.0);
        assert!(y_read > y_bal);
    }

    #[test]
    fn write_optimized_drifts_left() {
        let (x, y) = project(100.0, 1.0, 100.0);
        assert!(x < 0.5);
        assert!(y < 0.5);
    }

    #[test]
    fn space_optimized_drifts_right() {
        let (x, y) = project(100.0, 100.0, 1.0);
        assert!(x > 0.5);
        assert!(y < 0.5);
    }

    #[test]
    fn all_projections_stay_inside() {
        for &ro in &[1.0, 2.0, 1e3, 1e9, f64::INFINITY] {
            for &uo in &[1.0, 3.0, 1e6] {
                for &mo in &[1.0, 1.5, 1e2] {
                    let (x, y) = project(ro, uo, mo);
                    assert!(inside_triangle(x, y), "({ro},{uo},{mo}) -> ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn ascii_render_contains_markers_and_labels() {
        let pts = vec![
            rum_point("btree", 3.0, 8.0, 1.4),
            rum_point("lsm", 9.0, 1.8, 1.6),
        ];
        let s = render_ascii(&pts, 60, 20);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains("btree"));
        assert!(s.contains("READ OPTIMIZED"));
    }

    #[test]
    fn csv_shape() {
        let pts = vec![rum_point("x", 1.0, 2.0, 3.0)];
        let csv = to_csv(&pts);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("label,ro,uo,mo,x,y"));
    }

    #[test]
    fn infinite_overheads_do_not_panic() {
        let p = rum_point("scan", f64::INFINITY, 1.0, 1.0);
        assert!(p.x.is_finite() && p.y.is_finite());
    }
}
