//! Property-based tests for the measured-profile advisor
//! ([`rum_core::advisor`]): determinism, measured-value constraint
//! enforcement, and graceful analytic fallback.

use proptest::prelude::*;
use rum_core::advisor::{normalize_mix, ProfilePoint, ProfileStore};
use rum_core::wizard::{recommend, Constraints, Environment, Family};
use rum_core::workload::OpMix;

/// Deterministically expand a seed into a synthetic profile store covering
/// `families` (a bitmask over [`Family::ALL`]) with a handful of plausible
/// points per method. Building stores from a seed keeps each proptest case
/// cheap while still exploring many store shapes.
fn synth_store(seed: u64, families: u8) -> ProfileStore {
    let mut store = ProfileStore::new();
    let mut state = seed | 1;
    // xorshift64* — plenty for synthetic fixtures.
    fn next(state: &mut u64) -> u64 {
        *state ^= *state >> 12;
        *state ^= *state << 25;
        *state ^= *state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn unit(state: &mut u64, lo: f64, hi: f64) -> f64 {
        lo + (next(state) % 10_000) as f64 / 10_000.0 * (hi - lo)
    }
    for (i, family) in Family::ALL.iter().enumerate() {
        if families & (1 << i) == 0 {
            continue;
        }
        for scale in [1_000usize, 10_000] {
            for mix in [OpMix::READ_HEAVY, OpMix::WRITE_HEAVY, OpMix::RANGE_HEAVY] {
                store.add_point(
                    family.suite_method(),
                    ProfilePoint {
                        scale,
                        operations: 2 * scale,
                        mix: normalize_mix(&mix),
                        dist: "uniform".to_string(),
                        ro: unit(&mut state, 1.0, 50.0),
                        uo: unit(&mut state, 1.0, 50.0),
                        mo: unit(&mut state, 1.0, 8.0),
                        read_cost: unit(&mut state, 0.01, 20.0),
                        write_cost: unit(&mut state, 0.01, 20.0),
                        read_ops: 1 + next(&mut state) % 10_000,
                        write_ops: 1 + next(&mut state) % 10_000,
                    },
                );
            }
        }
    }
    store
}

fn any_mix(g: u64, i: u64, u: u64, d: u64, r: u64) -> OpMix {
    OpMix {
        get: g as f64,
        insert: i as f64,
        update: u as f64,
        delete: d as f64,
        range: r as f64,
    }
}

proptest! {
    /// Same report set, same query → bit-identical ranking. The Debug
    /// rendering covers every field (costs, violations, deviations), so
    /// string equality is the strictest practical comparison.
    #[test]
    fn recommend_measured_is_deterministic(
        seed in any::<u64>(),
        families in 0u8..128,
        g in 0u64..10, i in 0u64..10, u in 0u64..10, d in 0u64..10, r in 0u64..10,
    ) {
        let store_a = synth_store(seed, families);
        let store_b = synth_store(seed, families);
        prop_assert_eq!(&store_a, &store_b);
        let mix = any_mix(g, i, u, d, r);
        let env = Environment::default();
        let cons = Constraints::default();
        let ra = store_a.recommend_measured(&mix, &env, &cons);
        let rb = store_b.recommend_measured(&mix, &env, &cons);
        prop_assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    }

    /// Every cap in `Constraints` binds on the *measured* amplification of
    /// calibrated entries: feasibility must equal "measured values within
    /// caps", whatever the analytic model claims.
    #[test]
    fn constraint_caps_bind_on_measured_values(
        seed in any::<u64>(),
        cap_ro in 1.0f64..60.0,
        cap_uo in 1.0f64..60.0,
        cap_mo in 1.0f64..10.0,
    ) {
        let store = synth_store(seed, 0x7F); // all seven families measured
        let cons = Constraints {
            max_read_amp: Some(cap_ro),
            max_write_amp: Some(cap_uo),
            max_space_amp: Some(cap_mo),
            needs_ranges: false,
        };
        let ranking =
            store.recommend_measured(&OpMix::BALANCED, &Environment::default(), &cons);
        for rec in &ranking.recs {
            prop_assert!(rec.calibrated, "{:?} lacks measurements", rec.family);
            let m = rec.measured.expect("calibrated entries carry a profile");
            let within = m.ro <= cap_ro && m.uo <= cap_uo && m.mo <= cap_mo;
            prop_assert_eq!(
                rec.feasible, within,
                "{:?}: measured ({}, {}, {}) vs caps ({cap_ro}, {cap_uo}, {cap_mo}) \
                 but feasible={}",
                rec.family, m.ro, m.uo, m.mo, rec.feasible
            );
            for v in &rec.violations {
                prop_assert!(
                    v.contains("measured"),
                    "violation `{v}` not charged against measured values"
                );
            }
        }
    }

    /// An empty store must not panic: every family falls back to the
    /// analytic wizard, is flagged `calibrated: false`, and the ranking
    /// reproduces the analytic order exactly.
    #[test]
    fn empty_store_falls_back_to_the_analytic_wizard(
        g in 0u64..10, i in 0u64..10, u in 0u64..10, d in 0u64..10, r in 0u64..10,
        needs_ranges in any::<bool>(),
    ) {
        let mix = any_mix(g, i, u, d, r);
        let env = Environment::default();
        let cons = Constraints { needs_ranges, ..Constraints::default() };
        let ranking = ProfileStore::new().recommend_measured(&mix, &env, &cons);
        prop_assert!(!ranking.calibrated);
        let analytic = recommend(&mix, &env, &cons);
        prop_assert_eq!(ranking.recs.len(), analytic.len());
        for (m, a) in ranking.recs.iter().zip(&analytic) {
            prop_assert!(!m.calibrated);
            prop_assert!(m.measured.is_none());
            prop_assert!(m.deviation.is_none());
            prop_assert_eq!(m.family, a.family);
            prop_assert_eq!(m.feasible, a.feasible);
            prop_assert_eq!(m.expected_cost, a.expected_cost);
        }
    }

    /// The range-heavy canonical mix is first-class: a fully-measured
    /// store answers it calibrated, rankings are deterministic, and the
    /// `needs_ranges` constraint composes with the measured profiles
    /// (every recommended-feasible family must support ranges).
    #[test]
    fn range_heavy_mix_is_served_measured(
        seed in any::<u64>(),
        needs_ranges in any::<bool>(),
    ) {
        let store = synth_store(seed, 0x7F);
        let cons = Constraints { needs_ranges, ..Constraints::default() };
        let env = Environment::default();
        let ranking = store.recommend_measured(&OpMix::RANGE_HEAVY, &env, &cons);
        prop_assert!(ranking.calibrated);
        prop_assert_eq!(ranking.recs.len(), Family::ALL.len());
        for rec in &ranking.recs {
            prop_assert!(rec.calibrated, "{:?} lacks measurements", rec.family);
            prop_assert!(rec.measured.is_some());
        }
        let again = store.recommend_measured(&OpMix::RANGE_HEAVY, &env, &cons);
        prop_assert_eq!(format!("{ranking:?}"), format!("{again:?}"));
        if needs_ranges {
            for rec in ranking.recs.iter().filter(|r| r.feasible) {
                prop_assert!(
                    rum_core::wizard::profile(rec.family, &env).supports_ranges,
                    "{:?} feasible despite needs_ranges",
                    rec.family
                );
            }
        }
    }

    /// A partial store never panics either: measured families are
    /// calibrated, the rest fall back analytic, and the ranking-level
    /// `calibrated` flag is true only when all seven are measured.
    #[test]
    fn partial_store_mixes_measured_and_analytic_entries(
        seed in any::<u64>(),
        families in 0u8..128,
    ) {
        let store = synth_store(seed, families);
        let ranking = store.recommend_measured(
            &OpMix::BALANCED,
            &Environment::default(),
            &Constraints::default(),
        );
        prop_assert_eq!(ranking.recs.len(), Family::ALL.len());
        for rec in &ranking.recs {
            let bit = Family::ALL.iter().position(|&f| f == rec.family).unwrap();
            let measured = families & (1 << bit) != 0;
            prop_assert_eq!(rec.calibrated, measured, "family {:?}", rec.family);
            prop_assert_eq!(rec.measured.is_some(), measured);
        }
        prop_assert_eq!(ranking.calibrated, families == 0x7F);
    }
}
