//! Property-based tests for the metrics plane ([`rum_core::metrics`]):
//! snapshot merge is a commutative monoid, per-shard registries merge to
//! exactly what one registry would have recorded, and the debt ledger's
//! causal re-attribution conserves bytes under arbitrary charge/event
//! interleavings.

use proptest::prelude::*;
use rum_core::metrics::{DebtLedger, MetricsRegistry, MetricsSnapshot, OpClass};
use rum_core::trace::EventKind;
use rum_core::{CostSnapshot, CostTracker};

/// xorshift64* — deterministic synthetic sequences from one seed.
fn next(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

const NAMES: [&str; 3] = ["rum_ops_total", "rum_bytes_total", "rum_latency_ns"];
const LABELS: [&[(&str, &str)]; 3] = [
    &[],
    &[("kind", "flush")],
    &[("kind", "sync"), ("level", "2")],
];

/// One synthetic registry operation: counter bump, or histogram sample.
/// Gauges are deliberately absent — they are plane-level last-write-wins
/// values, not shardable streams (merging sums them), so the shard-merge
/// law below is stated for the shardable metric kinds.
#[derive(Clone, Copy)]
struct SynthOp {
    name: usize,
    labels: usize,
    value: u64,
    histogram: bool,
}

fn synth_ops(seed: u64, n: usize) -> Vec<SynthOp> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| SynthOp {
            name: (next(&mut state) % NAMES.len() as u64) as usize,
            labels: (next(&mut state) % LABELS.len() as u64) as usize,
            value: next(&mut state) % 100_000,
            histogram: next(&mut state).is_multiple_of(3),
        })
        .collect()
}

fn apply(reg: &MetricsRegistry, op: SynthOp) {
    if op.histogram {
        reg.observe(NAMES[op.name], LABELS[op.labels], op.value);
    } else {
        reg.counter_add(NAMES[op.name], LABELS[op.labels], op.value);
    }
}

fn synth_snapshot(seed: u64, n: usize) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for op in synth_ops(seed, n) {
        apply(&reg, op);
    }
    reg.snapshot()
}

/// A synthetic cost delta whose fields stay small enough that repeated
/// accumulation cannot overflow u64.
fn synth_delta(state: &mut u64) -> CostSnapshot {
    CostSnapshot {
        base_read_bytes: next(state) % 100_000,
        aux_read_bytes: next(state) % 100_000,
        base_write_bytes: next(state) % 100_000,
        aux_write_bytes: next(state) % 100_000,
        logical_read_bytes: next(state) % 50_000,
        logical_write_bytes: next(state) % 50_000,
        page_reads: next(state) % 64,
        page_writes: next(state) % 64,
        sim_time_ns: next(state) % 10_000,
    }
}

const KINDS: [EventKind; 8] = [
    EventKind::LsmFlush,
    EventKind::LsmCompaction,
    EventKind::WalSync,
    EventKind::WalCheckpoint,
    EventKind::WalRecovery,
    EventKind::BufferEviction,
    EventKind::LsmViewBuild,
    EventKind::MigrationComplete,
];

proptest! {
    /// Snapshot merge is commutative and associative — the algebraic
    /// property that makes per-worker sharding sound in any merge order.
    #[test]
    fn snapshot_merge_is_commutative_and_associative(
        sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>(),
        n in 1usize..80,
    ) {
        let (a, b, c) = (synth_snapshot(sa, n), synth_snapshot(sb, n), synth_snapshot(sc, n));

        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(&ab, &ba);

        let ab_c = ab.add(&c);
        let a_bc = a.add(&b.add(&c));
        prop_assert_eq!(&ab_c, &a_bc);

        // Identity: merging the empty snapshot changes nothing.
        prop_assert_eq!(&a.add(&MetricsSnapshot::default()), &a);
    }

    /// Sharding law: split one op sequence across K per-worker registries
    /// in round-robin, merge the shards, and the result is bit-identical
    /// to a single registry that saw every op.
    #[test]
    fn shard_merge_equals_single_registry(
        seed in any::<u64>(),
        n in 1usize..200,
        shards in 1usize..6,
    ) {
        let ops = synth_ops(seed, n);

        let single = MetricsRegistry::new();
        let workers: Vec<MetricsRegistry> =
            (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&single, *op);
            apply(&workers[i % shards], *op);
        }

        let mut merged = MetricsSnapshot::default();
        for w in &workers {
            merged.absorb(&w.snapshot());
        }
        prop_assert_eq!(&merged, &single.snapshot());
    }

    /// Conservation is structural: whatever interleaving of class
    /// switches, foreground charges, and background events the ledger
    /// sees, per-class attributed bytes always sum bit-equal to the
    /// tracker totals, and every re-attribution is zero-sum.
    #[test]
    fn ledger_conserves_under_arbitrary_interleavings(
        seed in any::<u64>(),
        steps in 1usize..120,
    ) {
        let mut state = seed | 1;
        let ledger = DebtLedger::new();
        let tracker = CostTracker::new();
        // The load phase always runs first, as in the real runner.
        ledger.begin_class(OpClass::Load);

        for _ in 0..steps {
            match next(&mut state) % 4 {
                0 => {
                    let class = match next(&mut state) % 3 {
                        0 => OpClass::Load,
                        1 => OpClass::Read,
                        _ => OpClass::Write,
                    };
                    ledger.begin_class(class);
                }
                1 | 2 => {
                    // A foreground charge mirrors a settled phase delta:
                    // the tracker absorbs exactly what the ledger charges.
                    let class = if next(&mut state).is_multiple_of(2) {
                        OpClass::Read
                    } else {
                        OpClass::Write
                    };
                    let d = synth_delta(&mut state);
                    tracker.absorb(&d);
                    ledger.charge(class, &d);
                }
                _ => {
                    // A background event re-attributes already-charged
                    // bytes between classes; it must never create or
                    // destroy any.
                    let kind = KINDS[(next(&mut state) % KINDS.len() as u64) as usize];
                    let detail: Vec<(&'static str, u64)> = vec![
                        ("bytes", next(&mut state) % 20_000),
                        ("read_bytes", next(&mut state) % 20_000),
                        ("bytes_read", next(&mut state) % 20_000),
                        ("bytes_written", next(&mut state) % 20_000),
                    ];
                    ledger.on_event(kind, &detail);
                }
            }
        }

        let totals = tracker.snapshot();
        let debt = ledger.snapshot();
        prop_assert!(debt.conserves(&totals), "attribution must conserve: {debt:?} vs {totals:?}");
        // Zero-sum across classes, directly.
        prop_assert_eq!(
            debt.attributed_read_total(),
            totals.total_read_bytes() as i128
        );
        prop_assert_eq!(
            debt.attributed_write_total(),
            totals.total_write_bytes() as i128
        );
    }
}
