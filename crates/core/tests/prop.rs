//! Property-based tests for rum-core invariants.

use proptest::prelude::*;
use rum_core::triangle::project;
use rum_core::workload::{
    Drift, KeyDist, KeySpace, Op, OpMix, OpStream, Workload, WorkloadSpec, Zipfian,
};
use rum_core::{CostSnapshot, Record};

fn inside_triangle(x: f64, y: f64) -> bool {
    if !(-1e-9..=1.0 + 1e-9).contains(&y) {
        return false;
    }
    let half = (1.0 - y) / 2.0;
    (0.5 - half - 1e-9..=0.5 + half + 1e-9).contains(&x)
}

proptest! {
    #[test]
    fn projection_always_lands_inside_the_triangle(
        ro in 1.0f64..1e12,
        uo in 1.0f64..1e12,
        mo in 1.0f64..1e6,
    ) {
        let (x, y) = project(ro, uo, mo);
        prop_assert!(inside_triangle(x, y), "({ro},{uo},{mo}) -> ({x},{y})");
    }

    #[test]
    fn projection_is_scale_monotone_toward_read_corner(
        base in 1.5f64..100.0,
        factor in 1.1f64..50.0,
    ) {
        // Making RO strictly better (smaller) while UO/MO stay put must not
        // move the point away from the read corner.
        let (_, y_worse) = project(base * factor, base, base);
        let (_, y_better) = project(base, base, base);
        prop_assert!(y_better >= y_worse - 1e-12);
    }

    #[test]
    fn record_encoding_roundtrips(key in any::<u64>(), value in any::<u64>()) {
        let r = Record::new(key, value);
        prop_assert_eq!(Record::decode(&r.encode()), r);
    }

    #[test]
    fn snapshot_delta_add_roundtrip(
        a in 0u64..1_000_000, b in 0u64..1_000_000,
        c in 0u64..1_000_000, d in 0u64..1_000_000,
    ) {
        let early = CostSnapshot { base_read_bytes: a, aux_read_bytes: b, ..Default::default() };
        let delta = CostSnapshot { base_read_bytes: c, aux_read_bytes: d, ..Default::default() };
        let later = early.add(&delta);
        prop_assert_eq!(later.delta(&early), delta);
    }

    #[test]
    fn zipfian_stays_in_domain(n in 2usize..5000, theta in 0.0f64..0.999, seed in any::<u64>()) {
        let z = Zipfian::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn workload_generation_invariants(
        initial in 1usize..2000,
        operations in 1usize..2000,
        seed in any::<u64>(),
        sparse in any::<bool>(),
    ) {
        let spec = WorkloadSpec {
            initial_records: initial,
            operations,
            mix: OpMix::BALANCED,
            dist: KeyDist::Uniform,
            key_space: if sparse {
                KeySpace::Sparse { universe_factor: 4 }
            } else {
                KeySpace::Dense { spacing: 1 }
            },
            range_len: 16,
            miss_fraction: 0.0,
            seed,
            drift: Drift::None,
        };
        let w = Workload::generate(&spec);
        // Initial is sorted and unique.
        prop_assert!(w.initial.windows(2).all(|p| p[0].key < p[1].key));
        prop_assert_eq!(w.initial.len(), initial);
        // Replaying the stream against a model never violates liveness.
        let mut live: std::collections::HashSet<u64> =
            w.initial.iter().map(|r| r.key).collect();
        for op in &w.ops {
            match *op {
                Op::Insert(k, _) => {
                    prop_assert!(!live.contains(&k));
                    live.insert(k);
                }
                Op::Update(k, _) => prop_assert!(live.contains(&k)),
                Op::Delete(k) => {
                    prop_assert!(live.contains(&k));
                    live.remove(&k);
                }
                Op::Range(lo, hi) => prop_assert!(lo <= hi),
                Op::Get(_) => {}
            }
        }
    }
}

/// Every drifting-workload scenario the generator supports, with
/// scenario-relative knobs (period, flip point) drawn by the runner.
fn drift_strategy() -> impl Strategy<Value = Drift> {
    prop_oneof![
        Just(Drift::None),
        (64usize..4096).prop_map(|period| Drift::Diurnal { period }),
        (64usize..4096).prop_map(|period| Drift::FlashCrowd { period }),
        (64usize..4096).prop_map(|period| Drift::ScanStorm { period }),
        (1usize..4096).prop_map(|at| Drift::Flip {
            at,
            mix: OpMix::WRITE_HEAVY,
        }),
    ]
}

proptest! {
    #[test]
    fn drifting_streams_are_exact_and_deterministic(
        initial in 64usize..1024,
        operations in 1usize..4096,
        seed in any::<u64>(),
        drift in drift_strategy(),
    ) {
        let spec = WorkloadSpec {
            initial_records: initial,
            operations,
            mix: OpMix::BALANCED,
            range_len: 8,
            seed,
            drift,
            ..Default::default()
        };
        // Every drift scenario yields exactly the requested op count —
        // no slot is lost when the active mix rotates mid-stream.
        let a: Vec<Op> = OpStream::new(&spec).collect();
        prop_assert_eq!(a.len(), operations);
        // Same seed ⇒ bit-identical stream, and the materialized
        // workload is that same stream op for op.
        let b: Vec<Op> = OpStream::new(&spec).collect();
        prop_assert_eq!(&a, &b);
        let w = Workload::generate(&spec);
        prop_assert_eq!(&w.ops, &a);
        // The initial dataset is drift-independent: a drifting spec
        // loads the same records as its static twin.
        let static_spec = WorkloadSpec { drift: Drift::None, ..spec };
        prop_assert_eq!(&w.initial, &Workload::generate(&static_spec).initial);
    }
}
