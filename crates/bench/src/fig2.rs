//! Figure 2 of the paper: "RUM overheads in memory hierarchies."
//!
//! "The RO_n read and the UO_n update overheads at memory level n can be
//! reduced by storing more data, updates, or meta-data, at the previous
//! level n−1, which results, at least, in a higher MO_{n−1}."
//!
//! A B+-tree runs over a two-level hierarchy (DRAM buffer above a storage
//! device). The buffer's capacity — its MO at level n−1 — is swept; the
//! storage level's reads (RO_n) and writes (UO_n) fall monotonically as
//! the buffer grows.

use rum_btree::{BTree, BTreeConfig};
use rum_core::runner::{default_threads, parallel_map};
use rum_core::workload::{KeyDist, KeySpace, Op, OpMix, OpStream, WorkloadSpec};
use rum_core::AccessMethod;
use rum_storage::{BlockDevice, DeviceProfile, HierarchySpec, MemoryHierarchy};

/// One measured hierarchy configuration.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Buffer capacity in pages — MO spent at level n−1.
    pub buffer_pages: usize,
    /// Level n−1 (buffer) reads absorbed.
    pub buffer_reads: u64,
    /// Level n (storage) reads — RO_n.
    pub storage_reads: u64,
    /// Level n (storage) writes — UO_n.
    pub storage_writes: u64,
    /// Total simulated time, milliseconds.
    pub sim_ms: f64,
}

/// Run the sweep: `n` records, a zipfian read/update workload of
/// `operations` ops, buffer capacity swept over `buffer_sweep`.
///
/// Each buffer configuration builds its own hierarchy and tree, so the
/// sweep entries are independent and run one per worker; `parallel_map`
/// keeps the rows in sweep order.
pub fn run(
    n: usize,
    operations: usize,
    buffer_sweep: &[usize],
    storage: DeviceProfile,
) -> Vec<Fig2Row> {
    // A seeded zipfian 90/10 read/update stream over the dense even-key
    // dataset. The spec-driven `OpStream` replaces the old hand-rolled
    // zipf loop: same skew and mix, O(live-set) memory, and every sweep
    // entry replays the identical sequence.
    let spec = WorkloadSpec {
        initial_records: n,
        operations,
        mix: OpMix {
            get: 0.9,
            insert: 0.0,
            update: 0.1,
            delete: 0.0,
            range: 0.0,
        },
        dist: KeyDist::Zipf { theta: 0.9 },
        key_space: KeySpace::Dense { spacing: 2 },
        seed: 0x0F16_0002,
        ..Default::default()
    };
    parallel_map(buffer_sweep.to_vec(), default_threads(), |buffer_pages| {
        let mut stream = OpStream::new(&spec);
        let records = stream.take_initial();
        let hierarchy =
            MemoryHierarchy::new(HierarchySpec::buffer_and_storage(buffer_pages, storage));
        let mut tree = BTree::with_device(hierarchy, BTreeConfig::default());
        tree.bulk_load(&records).expect("load");
        drop(records);
        // Quiesce load traffic so the measurement is the workload's.
        tree.device_mut().sync().expect("sync");
        for lvl in 0..tree.device().levels() {
            tree.device().level_stats(lvl).reset();
        }

        for op in stream {
            match op {
                Op::Get(key) => {
                    tree.get(key).expect("get");
                }
                Op::Update(key, value) => {
                    tree.update(key, value).expect("update");
                }
                other => unreachable!("mix generates only gets and updates, got {other:?}"),
            }
        }
        tree.device_mut().sync().expect("sync");

        let h = tree.device();
        Fig2Row {
            buffer_pages,
            buffer_reads: h.level_stats(0).reads(),
            storage_reads: h.level_stats(1).reads(),
            storage_writes: h.level_stats(1).writes(),
            sim_ms: h.total_sim_ns() as f64 / 1e6,
        }
    })
}

/// Render the sweep as a table.
pub fn render(rows: &[Fig2Row], n: usize, operations: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 2: two-level hierarchy, B+-tree of N={n}, {operations} zipfian ops (90% read / 10% update) ===\n"
    ));
    out.push_str(&format!(
        "{:>12} {:>14} {:>14} {:>15} {:>10}\n",
        "buffer(pg)", "buffer reads", "storage reads", "storage writes", "sim(ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>14} {:>14} {:>15} {:>10.2}\n",
            r.buffer_pages, r.buffer_reads, r.storage_reads, r.storage_writes, r.sim_ms
        ));
    }
    out
}

/// Figure 2's claim, checked: storage-level reads and writes fall
/// monotonically (within tolerance) as the buffer grows.
pub fn shape_checks(rows: &[Fig2Row]) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    let reads_monotone = rows
        .windows(2)
        .all(|w| w[1].storage_reads <= w[0].storage_reads);
    let writes_monotone = rows
        .windows(2)
        .all(|w| w[1].storage_writes <= w[0].storage_writes + w[0].storage_writes / 10);
    checks.push((
        "MO at level n−1 buys down RO at level n (storage reads fall)".into(),
        reads_monotone,
    ));
    checks.push((
        "MO at level n−1 buys down UO at level n (storage writes fall)".into(),
        writes_monotone,
    ));
    checks.push((
        "the largest buffer absorbs ≥90% of the smallest buffer's storage reads".into(),
        (rows.last().expect("rows").storage_reads as f64)
            < 0.1 * rows.first().expect("rows").storage_reads.max(1) as f64,
    ));
    checks.push((
        "simulated time falls as the buffer grows".into(),
        rows.last().unwrap().sim_ms < rows.first().unwrap().sim_ms,
    ));
    checks
}
