//! Scale sweep: streaming workload generation + sharded concurrent
//! execution, at op counts the materialized harness cannot reach.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin scale_sweep [--quick | --smoke]
//!
//! Default sweep: n ∈ {10^5, 10^6, 10^7} ops × K ∈ {1, 2, 4, 8} shards.
//! `--quick` caps n at 10^6; `--smoke` is the CI job (n = 10^5,
//! K ∈ {1, 2, 8}) and exits non-zero on any non-finite value, any
//! serial≠streamed mismatch, or any K>1 cell falling below the
//! throughput ratio floor (ops/s within 3× of K=1, widened to 6× on
//! single-core hosts where the pool is oversubscribed — the guard
//! against dispatch-overhead regressions). Results land in
//! `results/scale_sweep.csv` and `results/scale_sweep.txt`.

use rum_bench::scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        scale::ScaleConfig::smoke()
    } else if quick {
        scale::ScaleConfig {
            ns: vec![100_000, 1_000_000],
            ..Default::default()
        }
    } else {
        scale::ScaleConfig::default()
    };

    let rows = scale::run(&config);
    let rendered = scale::render(&rows);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in scale::checks(&rows) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/scale_sweep.csv", scale::to_csv(&rows)).expect("write csv");
        std::fs::write("results/scale_sweep.txt", &rendered).expect("write txt");
        println!("wrote results/scale_sweep.csv and results/scale_sweep.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
