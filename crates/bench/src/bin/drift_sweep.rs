//! Drift suite: the online AutoTuner versus every static configuration.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin drift_sweep [--smoke]
//!
//! Default grid: three drifting scenarios (diurnal rotation, flash-crowd
//! spike, scan-storm interlude) × six arms (four static LSM shapes, the
//! AutoTuner, the cross-family swapper). Checks: the tuner triggers a
//! priced migration somewhere in the suite, beats the worst static arm
//! per scenario, stays within the configured corridor of the best,
//! strictly beats every static arm on the suite total, and replays
//! bit-identically to its untuned twin. `--smoke` is the CI job: a
//! reduced grid with a small corridor. The full run writes
//! `results/drift_sweep.csv` and `results/drift_sweep.txt`.

use rum_bench::drift_sweep;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        drift_sweep::DriftSweepConfig::smoke()
    } else {
        drift_sweep::DriftSweepConfig::default()
    };

    let rows = drift_sweep::run(&config);
    let rendered = drift_sweep::render(&rows);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in drift_sweep::checks(&config, &rows) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/drift_sweep.csv", drift_sweep::to_csv(&rows)).expect("write csv");
        std::fs::write("results/drift_sweep.txt", &rendered).expect("write txt");
        println!("wrote results/drift_sweep.csv and results/drift_sweep.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
