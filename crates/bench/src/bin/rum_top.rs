//! Live terminal dashboard over the `rum-obs` Prometheus exporter.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin rum_top \
//!       \[METHOD\] \[--mix MIX\] \[--n OPS\] \[--window W\] \
//!       \[--addr HOST:PORT\] \[--refresh MS\] \[--smoke\]
//!
//! The live mode runs `METHOD` (default `lsm-tree+wal`) under the full
//! metrics plane on a driver thread, serves the registry over HTTP, and
//! *scrapes its own exporter* — everything on screen travelled through
//! the Prometheus text format, so the dashboard doubles as an end-to-end
//! test of the wire path. Each frame shows per-op-class amortized RO/UO,
//! the causal debt table, sparklined gauge histories, event counters,
//! and latency quantiles. `--addr 127.0.0.1:9184` pins the port so an
//! external Prometheus can scrape the same run.
//!
//! `--smoke` is the CI obs leg, in three acts:
//!   1. conservation — every `ObsConfig::smoke()` method's attributed
//!      bytes sum bit-equal to its tracker totals;
//!   2. exporter round-trip — serve a finished plane on an ephemeral
//!      port, scrape `/metrics`, validate it with the strict parser, and
//!      check the key series exist (including `rum_conservation_ok 1`);
//!   3. observer-freedom — every standard-suite method measures
//!      bit-identical RO/UO/MO with the metrics plane on vs off.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rum::prelude::*;
use rum_bench::{baseline, obs, trace};
use rum_core::metrics::{MetricsPlane, OpClass};
use rum_core::runner::run_stream_metered;
use rum_core::trace::TraceCollector;
use rum_obs::{http_get, parse_prometheus, serve, PromSample};

fn fail(msg: &str) -> ! {
    eprintln!("rum_top: {msg}");
    std::process::exit(1)
}

/// Gauge lookup in one scrape: exact name + optional `class` label.
fn gauge(samples: &[PromSample], name: &str, class: Option<&str>) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.label("class") == class)
        .map(|s| s.value)
}

/// Sum of a counter family across all label sets (e.g. every `kind`).
fn counter_sum(samples: &[PromSample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Render `history` as a fixed-width sparkline, scaled to its own range.
fn sparkline(history: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail: Vec<f64> = history
        .iter()
        .rev()
        .take(width)
        .rev()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if tail.is_empty() {
        return String::new();
    }
    let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    tail.iter()
        .map(|v| BARS[(((v - lo) / span) * 7.0).round() as usize % 8])
        .collect()
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Per-series gauge histories for the sparklines.
#[derive(Default)]
struct Histories {
    series: BTreeMap<String, Vec<f64>>,
}

impl Histories {
    fn push(&mut self, key: &str, value: Option<f64>) {
        if let Some(v) = value {
            self.series.entry(key.to_string()).or_default().push(v);
        }
    }

    fn line(&self, key: &str, width: usize) -> String {
        self.series
            .get(key)
            .map(|h| sparkline(h, width))
            .unwrap_or_default()
    }
}

/// One dashboard frame, rendered entirely from a parsed scrape.
fn render_frame(title: &str, scrape_no: u64, samples: &[PromSample], hist: &Histories) -> String {
    const W: usize = 32;
    let mut out = String::new();
    out.push_str(&format!("rum_top — {title}  (scrape #{scrape_no})\n\n"));

    out.push_str(&format!("  {:<28} {:>12}  {}\n", "gauge", "now", "history"));
    for (label, key) in [
        ("RO read (amortized)", "ro_read"),
        ("UO write (amortized)", "uo_write"),
        ("MO (space amp)", "mo"),
        ("debt outstanding (bytes)", "debt_out"),
        ("live records", "live"),
    ] {
        let now = hist
            .series
            .get(key)
            .and_then(|h| h.last().copied())
            .unwrap_or(0.0);
        let shown = if key == "debt_out" {
            fmt_bytes(now)
        } else if key == "live" {
            format!("{now:.0}")
        } else {
            format!("{now:.3}")
        };
        out.push_str(&format!(
            "  {label:<28} {shown:>12}  {}\n",
            hist.line(key, W)
        ));
    }

    out.push_str("\n  causal debt attribution\n");
    out.push_str(&format!(
        "  {:<7} {:>10} {:>10} {:>12} {:>12}\n",
        "class", "RO", "UO", "attr rd", "attr wr"
    ));
    for class in OpClass::ALL {
        let c = Some(class.as_str());
        out.push_str(&format!(
            "  {:<7} {:>10.3} {:>10.3} {:>12} {:>12}\n",
            class.as_str(),
            gauge(samples, "rum_class_read_amplification", c).unwrap_or(0.0),
            gauge(samples, "rum_class_write_amplification", c).unwrap_or(0.0),
            fmt_bytes(gauge(samples, "rum_class_attributed_read_bytes", c).unwrap_or(0.0)),
            fmt_bytes(gauge(samples, "rum_class_attributed_write_bytes", c).unwrap_or(0.0)),
        ));
    }
    out.push_str(&format!(
        "  debt: accrued {} / settled {} / outstanding {}   reattributed rd {} wr {}\n",
        fmt_bytes(gauge(samples, "rum_debt_accrued_bytes", None).unwrap_or(0.0)),
        fmt_bytes(gauge(samples, "rum_debt_settled_bytes", None).unwrap_or(0.0)),
        fmt_bytes(gauge(samples, "rum_debt_outstanding_bytes", None).unwrap_or(0.0)),
        fmt_bytes(gauge(samples, "rum_reattributed_read_bytes", None).unwrap_or(0.0)),
        fmt_bytes(gauge(samples, "rum_reattributed_write_bytes", None).unwrap_or(0.0)),
    ));

    out.push_str("\n  latency (ns)        p50        p99\n");
    for class in ["read", "write"] {
        out.push_str(&format!(
            "  {:<14} {:>10.0} {:>10.0}\n",
            class,
            gauge(samples, "rum_op_latency_p50_ns", Some(class)).unwrap_or(0.0),
            gauge(samples, "rum_op_latency_p99_ns", Some(class)).unwrap_or(0.0),
        ));
    }

    let mut kinds: Vec<(&str, f64)> = samples
        .iter()
        .filter(|s| s.name == "rum_events_total")
        .filter_map(|s| s.label("kind").map(|k| (k, s.value)))
        .collect();
    kinds.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out.push_str(&format!(
        "\n  events ({} total)\n",
        counter_sum(samples, "rum_events_total") as u64
    ));
    for chunk in kinds.chunks(3) {
        out.push_str("  ");
        for (kind, n) in chunk {
            out.push_str(&format!("{kind:<18} {:>8}   ", *n as u64));
        }
        out.push('\n');
    }
    out
}

fn smoke() {
    // Act 1: conservation across the obs smoke methods.
    eprintln!("[obs] smoke: causal attribution + conservation ...");
    let cfg = obs::ObsConfig::smoke();
    let rows = obs::run(&cfg);
    print!("{}", obs::render(&rows));
    for r in &rows {
        if !r.conserved {
            fail(&format!("{}: attribution does not conserve", r.name));
        }
    }
    println!(
        "  [PASS] conservation: {} methods, attributed bytes sum bit-equal to tracker totals",
        rows.len()
    );

    // Act 2: exporter round-trip on an ephemeral port. The scrape must
    // survive the strict parser and carry the key series.
    eprintln!("[obs] smoke: exporter round-trip ...");
    let lsm = rows
        .iter()
        .find(|r| r.name == "lsm-tree")
        .unwrap_or_else(|| fail("lsm-tree missing from smoke rows"));
    let mut server = serve(lsm.plane.registry().clone(), "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("exporter bind failed: {e}")));
    let addr = server.local_addr();
    let (status, body) =
        http_get(addr, "/metrics").unwrap_or_else(|e| fail(&format!("scrape failed: {e}")));
    if status != 200 {
        fail(&format!("/metrics returned HTTP {status}"));
    }
    let samples =
        parse_prometheus(&body).unwrap_or_else(|e| fail(&format!("exposition invalid: {e}")));
    for series in [
        "rum_events_total",
        "rum_debt_outstanding_bytes",
        "rum_op_latency_ns_bucket",
    ] {
        if !samples.iter().any(|s| s.name == series) {
            fail(&format!("scrape missing series {series}"));
        }
    }
    if gauge(&samples, "rum_class_read_amplification", Some("read")).is_none() {
        fail("scrape missing rum_class_read_amplification{class=\"read\"}");
    }
    if gauge(&samples, "rum_conservation_ok", None) != Some(1.0) {
        fail("rum_conservation_ok != 1 over the wire");
    }
    let (status, json) = http_get(addr, "/snapshot.json")
        .unwrap_or_else(|e| fail(&format!("/snapshot.json failed: {e}")));
    if status != 200 || !json.contains("\"counters\"") {
        fail("/snapshot.json malformed");
    }
    server.shutdown();
    println!(
        "  [PASS] exporter: {} samples scraped from {addr}, parsed strictly, key series live",
        samples.len()
    );

    // Act 3: the plane must be a pure observer — bit-identical RUM
    // measurements with metrics on vs off, for the entire suite.
    eprintln!("[obs] smoke: metrics-on ≡ metrics-off across the standard suite ...");
    let spec = baseline::smoke_spec();
    let verdicts = obs::metrics_equivalence(spec.initial_records, spec.operations, spec.seed);
    let broken: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.identical)
        .map(|v| v.method.as_str())
        .collect();
    if !broken.is_empty() {
        fail(&format!("metrics plane perturbed: {}", broken.join(", ")));
    }
    println!(
        "  [PASS] observer-freedom: {} suite methods bit-identical with the plane on vs off",
        verdicts.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let mut method_name = "lsm-tree+wal".to_string();
    let mut mix_name = "balanced".to_string();
    let mut operations = 400_000usize;
    let mut window = 2048usize;
    let mut addr = "127.0.0.1:0".to_string();
    let mut refresh_ms = 250u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mix" => {
                mix_name = it
                    .next()
                    .unwrap_or_else(|| fail("--mix needs a value"))
                    .clone()
            }
            "--n" => {
                operations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--n needs a positive integer"))
            }
            "--window" => {
                window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--window needs a positive integer"))
            }
            "--addr" => {
                addr = it
                    .next()
                    .unwrap_or_else(|| fail("--addr needs HOST:PORT"))
                    .clone()
            }
            "--refresh" => {
                refresh_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--refresh needs milliseconds"))
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => method_name = other.to_string(),
        }
    }

    let mut method = trace::find_method(&method_name).unwrap_or_else(|| {
        fail(&format!(
            "unknown method {:?}; suite: {}",
            method_name,
            trace::suite_names().join(", ")
        ))
    });
    let mix =
        trace::mix_by_name(&mix_name).unwrap_or_else(|| fail(&format!("unknown mix {mix_name:?}")));
    let spec = WorkloadSpec {
        initial_records: (operations / 10).max(1),
        operations,
        mix,
        seed: 0x70_D0 + operations as u64,
        ..Default::default()
    };

    let plane = MetricsPlane::shared();
    let server = serve(plane.registry().clone(), &addr)
        .unwrap_or_else(|e| fail(&format!("exporter bind on {addr} failed: {e}")));
    let bound = server.local_addr();
    eprintln!(
        "[obs] {method_name} × {mix_name}, {operations} ops; exporter on http://{bound}/metrics"
    );

    // The driver owns the method and runs the metered stream; the main
    // thread only ever sees the run through its own exporter scrapes.
    let (tx, rx) = mpsc::channel();
    let driver_plane = Arc::clone(&plane);
    let driver = std::thread::Builder::new()
        .name("rum-top-driver".into())
        .spawn(move || {
            let sink = driver_plane.sink();
            method.set_trace_sink(sink.clone());
            let mut collector = TraceCollector::new(window, sink);
            let report = run_stream_metered(
                method.as_mut(),
                OpStream::new(&spec),
                &mut collector,
                &driver_plane,
            );
            let _ = tx.send(report);
        })
        .unwrap_or_else(|e| fail(&format!("driver thread: {e}")));

    let title = format!("{method_name} × {mix_name} @ {bound}");
    let mut hist = Histories::default();
    let mut scrape_no = 0u64;
    let mut finished: Option<Result<RumReport>> = None;
    loop {
        if finished.is_none() {
            finished = rx.try_recv().ok();
        }
        match http_get(bound, "/metrics") {
            Ok((200, body)) => match parse_prometheus(&body) {
                Ok(samples) => {
                    scrape_no += 1;
                    hist.push(
                        "ro_read",
                        gauge(&samples, "rum_class_read_amplification", Some("read")),
                    );
                    hist.push(
                        "uo_write",
                        gauge(&samples, "rum_class_write_amplification", Some("write")),
                    );
                    hist.push("mo", gauge(&samples, "rum_space_amplification", None));
                    hist.push(
                        "debt_out",
                        gauge(&samples, "rum_debt_outstanding_bytes", None),
                    );
                    hist.push("live", gauge(&samples, "rum_live_records", None));
                    // ANSI: clear screen, home cursor, redraw.
                    print!(
                        "\x1b[2J\x1b[H{}",
                        render_frame(&title, scrape_no, &samples, &hist)
                    );
                }
                Err(e) => eprintln!("[obs] scrape #{scrape_no} unparseable: {e}"),
            },
            Ok((status, _)) => eprintln!("[obs] scrape returned HTTP {status}"),
            Err(e) => eprintln!("[obs] scrape failed: {e}"),
        }
        if finished.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }
    driver
        .join()
        .unwrap_or_else(|_| fail("driver thread panicked"));

    let report = match finished.expect("driver result") {
        Ok(r) => r,
        Err(e) => fail(&format!("metered run failed: {e}")),
    };
    println!("\n{}", RumReport::table_header());
    println!("{}", report.table_row());
    let debt = plane.ledger().snapshot();
    println!(
        "debt: accrued {} / settled {} / outstanding {}; conservation gauge {}",
        debt.debt_accrued_bytes,
        debt.debt_settled_bytes,
        debt.debt_outstanding_bytes(),
        plane
            .registry()
            .gauge("rum_conservation_ok", &[])
            .unwrap_or(-1.0),
    );
    println!("exporter stayed live through {scrape_no} scrapes on {bound}");
}
