//! Regenerates Figure 2 of the paper: the vertical RUM tradeoff across a
//! memory hierarchy — buffer capacity (MO at level n−1) against storage
//! traffic (RO/UO at level n).
//!
//! Usage: `cargo run --release -p rum-bench --bin fig2_hierarchy [--quick]`

use rum_bench::fig2;
use rum_storage::DeviceProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, ops) = if quick {
        (1 << 14, 20_000)
    } else {
        (1 << 17, 100_000)
    };
    let sweep: &[usize] = &[16, 64, 256, 1024, 4096, 16384];
    let rows = fig2::run(n, ops, sweep, DeviceProfile::SSD);
    println!("{}", fig2::render(&rows, n, ops));
    println!("=== Shape checks ===");
    let mut all_ok = true;
    for (desc, ok) in fig2::shape_checks(&rows) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
