//! Crash matrix: WAL durability cost (folded into UO) and recovery
//! exactness under deterministic fault injection.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin crash_matrix [--smoke]
//!
//! Default: 2 methods (LSM tree, append log — both WAL-wrapped) × 2 op
//! mixes × 12 seeded crash points (clean crash / torn write / failed
//! flush). Every cell recovers and is compared bit-for-bit against a
//! reference structure fed only the acknowledged operation prefix.
//! `--smoke` is the CI job (smaller workloads, 6 points) and writes no
//! files. Results land in `results/crash_matrix.{txt,csv}`. Exits
//! non-zero if any check fails.

use rum_bench::crash;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        crash::CrashConfig::smoke()
    } else {
        crash::CrashConfig::default()
    };

    let matrix = crash::run(&config);
    let rendered = crash::render(&matrix);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in crash::checks(&matrix) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/crash_matrix.csv", crash::to_csv(&matrix)).expect("write csv");
        std::fs::write("results/crash_matrix.txt", &rendered).expect("write txt");
        println!("wrote results/crash_matrix.csv and results/crash_matrix.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
