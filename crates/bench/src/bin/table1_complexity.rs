//! Regenerates Table 1 of the paper: empirical page-access costs of the
//! six access methods, swept over dataset sizes, with the analytic
//! expectations printed beside the measurements and the paper's
//! qualitative claims checked at the end.
//!
//! Usage: `cargo run --release -p rum-bench --bin table1_complexity [--quick]`

use rum_bench::table1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ns: &[usize] = if quick {
        &[1 << 12, 1 << 16]
    } else {
        &[1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
    };
    let params = table1::Table1Params::default();
    let rows = table1::run(ns, params);
    println!("{}", table1::render(&rows, &params));
    println!("=== Shape checks (the paper's qualitative claims) ===");
    let mut all_ok = true;
    for (desc, ok) in table1::shape_checks(&rows) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
