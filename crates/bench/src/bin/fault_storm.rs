//! Fault storm: corruption resilience under recurring injected faults.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin fault_storm [--smoke]
//!
//! B+-tree and LSM tree over checksum-sealed faulty devices, crossed with
//! seeded fault profiles (clean / transient / bursty / bit-flip) and
//! retry policies, plus a WAL-wrapped LSM tree that heals bit flips
//! transparently. Every cell is replayed op-for-op against a fault-free
//! twin: converge cells must end bit-identical with retry traffic priced
//! exactly, detect cells must surface corruption before any wrong answer,
//! heal cells must hide the flips entirely. `--smoke` is the CI job
//! (smaller workload) and writes no files. Results land in
//! `results/fault_storm.{txt,csv}`. Exits non-zero if any check fails.

use rum_bench::fault_storm;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        fault_storm::FaultStormConfig::smoke()
    } else {
        fault_storm::FaultStormConfig::default()
    };

    let matrix = fault_storm::run(&config);
    let rendered = fault_storm::render(&matrix);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in fault_storm::checks(&matrix) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/fault_storm.csv", fault_storm::to_csv(&matrix)).expect("write csv");
        std::fs::write("results/fault_storm.txt", &rendered).expect("write txt");
        println!("wrote results/fault_storm.csv and results/fault_storm.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
