//! Regenerates Figure 1 of the paper: every access method in the standard
//! suite, measured on one mixed workload and placed in the RUM triangle.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin fig1_rum_space [--quick] [--serial]
//!
//! By default the suite runs serially once and in parallel (one worker
//! per core) once, prints the parallel run's figure, and reports the
//! harness speedup; `--serial` skips the parallel run.

use std::time::Instant;

use rum_bench::fig1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let serial_only = std::env::args().any(|a| a == "--serial");
    let (n, ops) = if quick {
        (1 << 13, 1 << 11)
    } else {
        (1 << 15, 1 << 13)
    };
    let seed = 0x0F16_0001;

    let started = Instant::now();
    let serial = fig1::run_with_threads(n, ops, seed, 1);
    let serial_ms = started.elapsed().as_secs_f64() * 1e3;

    let threads = rum::core::runner::default_threads();
    let (placements, harness_line) = if serial_only || threads <= 1 {
        (
            serial,
            format!("harness: serial {serial_ms:.0} ms ({threads} core(s) available)"),
        )
    } else {
        let started = Instant::now();
        let parallel = fig1::run_with_threads(n, ops, seed, threads);
        let parallel_ms = started.elapsed().as_secs_f64() * 1e3;
        // Identical measurements are the parallel harness's contract;
        // enforce it on every regeneration, not just in the test suite.
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.report.method, p.report.method, "method order diverged");
            assert!(
                s.report.ro == p.report.ro
                    && s.report.uo == p.report.uo
                    && s.report.mo == p.report.mo,
                "{}: serial and parallel measurements diverged",
                s.report.method
            );
        }
        let speedup = serial_ms / parallel_ms.max(1e-9);
        (
            parallel,
            format!(
                "harness: serial {serial_ms:.0} ms, parallel {parallel_ms:.0} ms \
                 on {threads} workers — {speedup:.2}x speedup"
            ),
        )
    };

    println!("{}", fig1::render(&placements));
    println!("{harness_line}");
    println!("=== Shape checks (the paper's qualitative placement) ===");
    let mut all_ok = true;
    for (desc, ok) in fig1::shape_checks(&placements) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
