//! Regenerates Figure 1 of the paper: every access method in the standard
//! suite, measured on one mixed workload and placed in the RUM triangle.
//!
//! Usage: `cargo run --release -p rum-bench --bin fig1_rum_space [--quick]`

use rum_bench::fig1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, ops) = if quick { (1 << 13, 1 << 11) } else { (1 << 15, 1 << 13) };
    let placements = fig1::run(n, ops, 0x0F16_0001);
    println!("{}", fig1::render(&placements));
    println!("=== Shape checks (the paper's qualitative placement) ===");
    let mut all_ok = true;
    for (desc, ok) in fig1::shape_checks(&placements) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
