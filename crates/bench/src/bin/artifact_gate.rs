//! Artifact-freshness gate: regenerate every committed smoke CSV and
//! fail if the checked-in copy drifted.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin artifact_gate
//!   UPDATE_ARTIFACTS=1 cargo run --release -p rum-bench --bin artifact_gate
//!
//! Runs every experiment module's `--smoke` configuration in-process,
//! strips the wall-clock columns (the only nondeterministic values), and
//! byte-compares each result against its committed twin under
//! `results/smoke/`. Exits non-zero on any drift or missing twin.
//! `UPDATE_ARTIFACTS=1` rewrites the twins instead — rerun after an
//! intentional cost-model change and commit the diff. Full-scale
//! `results/*.csv` stay documentation (too expensive for CI);
//! `results/baseline_rum.json` is gated separately by `baseline_gate`.

use rum_bench::artifact_gate;

fn main() {
    let update = std::env::var("UPDATE_ARTIFACTS").is_ok_and(|v| v == "1");
    let artifacts = artifact_gate::regenerate();

    if update {
        std::fs::create_dir_all(artifact_gate::SMOKE_DIR).expect("smoke dir");
        for a in &artifacts {
            std::fs::write(a.path(), &a.csv).expect("write artifact");
            println!("wrote {}", a.path());
        }
        return;
    }

    println!("=== Checks ===");
    let mut all_ok = true;
    for a in &artifacts {
        let committed = std::fs::read_to_string(a.path()).ok();
        match artifact_gate::diff_against_committed(a, committed.as_deref()) {
            None => println!("  [PASS] {} is fresh", a.path()),
            Some(why) => {
                println!("  [FAIL] {why}");
                all_ok = false;
            }
        }
    }

    if !all_ok {
        eprintln!(
            "artifact drift: regenerate with `UPDATE_ARTIFACTS=1 cargo run --release -p \
             rum-bench --bin artifact_gate` and commit the diff"
        );
        std::process::exit(1);
    }
}
