//! §5 of the paper — "Building RUM access methods" — demonstrated:
//!
//! 1. **Adaptive indexing** (database cracking, plain vs. stochastic vs.
//!    the static extremes): read cost converges query by query while
//!    update cost and memory creep up.
//! 2. **Update-friendly bitmap indexes**: "updates are absorbed using
//!    additional, highly compressible, bitvectors which are gradually
//!    merged" — sweep the merge threshold.
//! 3. **Dynamic RUM balance for the LSM-tree**: re-tune the merge
//!    hierarchy when the workload flips from write-heavy to read-heavy.
//! 4. **Approximate indexing with an updatable filter**: a quotient
//!    filter (supports deletes, unlike Bloom) in front of a heap file.
//!
//! Usage: `cargo run --release -p rum-bench --bin roadmap_adaptive`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rum_adaptive::CrackedColumn;
use rum_bench::dataset;
use rum_bitmap::UpdateFriendlyBitmap;
use rum_core::workload::value_for;
use rum_core::{AccessMethod, Record};
use rum_lsm::{advise, retune, CompactionPolicy, LsmConfig, LsmTree, TuningGoal};
use rum_sketch::QuotientFilter;

fn section_cracking() {
    println!("=== §5.1 Adaptive indexing: cracking converges ===");
    let n = 1 << 18;
    let mut recs = dataset(n);
    use rand::seq::SliceRandom;
    recs.sort_unstable();
    let sorted = recs.clone();
    recs.shuffle(&mut StdRng::seed_from_u64(1));
    // Load *shuffled* physical order via per-record inserts.
    let build = |stochastic: bool| -> CrackedColumn {
        let mut c = if stochastic {
            CrackedColumn::stochastic(3)
        } else {
            CrackedColumn::new()
        };
        c.bulk_load(&sorted).unwrap();
        c
    };
    let mut plain = build(false);
    let mut stoch = build(true);
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>10}",
        "query#", "plain rd(bytes)", "stoch rd(bytes)", "pieces", "MO"
    );
    let mut rng = StdRng::seed_from_u64(5);
    for q in 0..200 {
        let lo = 2 * rng.gen_range(0..(n as u64 - 200));
        let cost = |c: &mut CrackedColumn| {
            let before = c.tracker().snapshot();
            c.range(lo, lo + 256).unwrap();
            c.tracker().since(&before).total_read_bytes()
        };
        let cp = cost(&mut plain);
        let cs = cost(&mut stoch);
        if q % 25 == 0 || q == 199 {
            println!(
                "{:>8} {:>16} {:>16} {:>10} {:>10.5}",
                q,
                cp,
                cs,
                plain.pieces(),
                plain.space_profile().space_amplification()
            );
        }
    }
    println!("  -> read cost falls by orders of magnitude as the cracker index forms;\n     MO creeps up by the pivot table only.\n");
}

fn section_bitmaps() {
    println!("=== §5.2 Update-friendly bitmaps: delta merge threshold sweep ===");
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "threshold", "merges", "size(bytes)", "ones"
    );
    for threshold in [16usize, 256, 4096, 65536] {
        let mut b = UpdateFriendlyBitmap::new(1 << 20, threshold);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20_000 {
            let pos = rng.gen_range(0..1 << 20);
            if rng.gen_bool(0.7) {
                b.set(pos);
            } else {
                b.clear(pos);
            }
        }
        println!(
            "{:>12} {:>12} {:>12} {:>12}",
            threshold,
            b.merges(),
            b.size_bytes(),
            b.count_ones()
        );
    }
    println!("  -> small thresholds merge constantly (UO high, MO low);\n     large thresholds defer work into deltas (UO low, MO higher).\n");
}

fn section_lsm_retune() {
    println!("=== §5.3 Dynamic RUM balance: LSM retunes on workload shift ===");
    let run = |adapt: bool| -> (u64, u64) {
        let mut t = LsmTree::with_config(LsmConfig {
            memtable_records: 1024,
            size_ratio: 4,
            policy: CompactionPolicy::Tiering, // start write-optimized
            bloom_bits_per_key: 4.0,
            ..Default::default()
        });
        // Phase 1: heavy ingest with scattered keys (runs overlap).
        for k in 0..60_000u64 {
            let key = (k.wrapping_mul(7919)) % 60_000;
            t.insert(2 * key, value_for(key, 0)).unwrap();
        }
        let write_phase = t.tracker().snapshot();
        // The workload flips to reads; optionally re-tune.
        if adapt {
            let cfg = advise(&rum_core::workload::OpMix::READ_HEAVY, TuningGoal::Balanced);
            retune(&mut t, cfg).unwrap();
        }
        t.tracker().reset();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30_000 {
            let k = rng.gen_range(0..120_000u64); // ~50% misses
            t.get(k).unwrap();
        }
        let read_phase = t.tracker().snapshot();
        (write_phase.page_writes, read_phase.page_reads)
    };
    let (w_fixed, r_fixed) = run(false);
    let (w_adapt, r_adapt) = run(true);
    println!("{:>24} {:>14} {:>14}", "", "ingest pg-wr", "read pg-rd");
    println!(
        "{:>24} {:>14} {:>14}",
        "fixed (tiered, 4b/key)", w_fixed, r_fixed
    );
    println!(
        "{:>24} {:>14} {:>14}",
        "retuned at the shift", w_adapt, r_adapt
    );
    println!(
        "  -> identical ingest cost; re-tuning cuts the read phase by {:.1}x.\n",
        r_fixed as f64 / r_adapt.max(1) as f64
    );
}

fn section_quotient_index() {
    println!("=== §5.4 Approximate indexing with an updatable filter ===");
    // A heap file guarded by a quotient filter: point misses are answered
    // by the filter; deletes REMOVE from the filter (a Bloom filter
    // cannot), so miss performance survives churn.
    let n = 40_000usize;
    let recs: Vec<Record> = dataset(n);
    let mut heap = rum_columns::UnsortedColumn::new();
    heap.bulk_load(&recs).unwrap();
    let mut qf = QuotientFilter::with_capacity(n, 12);
    for r in &recs {
        qf.insert(r.key);
    }
    // Churn: delete half the keys, from the heap AND the filter.
    for i in (0..n as u64).step_by(2) {
        heap.delete(2 * i).unwrap();
        qf.remove(2 * i);
    }
    // Misses on deleted keys: the filter prunes them.
    let mut rng = StdRng::seed_from_u64(4);
    let mut filtered_reads = 0u64;
    let mut raw_reads = 0u64;
    for _ in 0..2000 {
        let key = 2 * 2 * rng.gen_range(0..(n as u64 / 2)); // a deleted key
        let before = heap.tracker().snapshot();
        if qf.may_contain(key) {
            heap.get(key).unwrap();
        }
        filtered_reads += heap.tracker().since(&before).page_reads;
        let before = heap.tracker().snapshot();
        heap.get(key).unwrap();
        raw_reads += heap.tracker().since(&before).page_reads;
    }
    println!(
        "  2000 point misses on deleted keys: {} page reads with the quotient filter, {} without ({}x saved)",
        filtered_reads,
        raw_reads,
        raw_reads / filtered_reads.max(1)
    );
    println!(
        "  filter: {} bytes for {} live keys ({:.2} bytes/key), load {:.2}",
        qf.size_bytes(),
        qf.len(),
        qf.size_bytes() as f64 / qf.len().max(1) as f64,
        qf.load()
    );
    println!(
        "  -> deletes kept the filter accurate — the updatable-filter property §5 asks for.\n"
    );
}

fn main() {
    section_cracking();
    section_bitmaps();
    section_lsm_retune();
    section_quotient_index();
}
