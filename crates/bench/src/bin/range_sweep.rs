//! Range-read acceleration sweep: the sorted view's RO-vs-MO trade.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin range_sweep [--smoke]
//!
//! Default grid: n = 10^5 records, 3·10^4 ops, three range-carrying mixes
//! × {bloom, quotient} × {view off, view on}; every view-on cell is
//! differentially replayed against its view-off twin (results must be
//! bit-identical) and scan-heavy must show the headline ≥2× RO win.
//! `--smoke` is the CI job: a reduced grid that still checks equality
//! and a strict RO win, exiting non-zero on any failure. The full run
//! writes `results/range_sweep.csv` and `results/range_sweep.txt`.

use rum_bench::range_sweep;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        range_sweep::RangeSweepConfig::smoke()
    } else {
        range_sweep::RangeSweepConfig::default()
    };

    let rows = range_sweep::run(&config);
    let rendered = range_sweep::render(&rows);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in range_sweep::checks(&config, &rows) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/range_sweep.csv", range_sweep::to_csv(&rows)).expect("write csv");
        std::fs::write("results/range_sweep.txt", &rendered).expect("write txt");
        println!("wrote results/range_sweep.csv and results/range_sweep.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
