//! Regenerates §2 of the paper: Propositions 1–3.
//!
//! Usage: `cargo run --release -p rum-bench --bin props_extremes`

fn main() {
    println!("{}", rum_bench::props::report());
    println!("=== Verdicts ===");
    let mut all_ok = true;
    for (desc, ok) in rum_bench::props::verdicts() {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
