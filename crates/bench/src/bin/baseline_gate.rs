//! RUM baseline regression gate: re-measure smoke-scale RO/UO/MO for every
//! standard-suite method and fail on any drift from the committed baseline.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin baseline_gate
//!   UPDATE_BASELINE=1 cargo run --release -p rum-bench --bin baseline_gate
//!
//! The gate reads `results/baseline_rum.json`; amplifications are
//! deterministic given the workload seed, so the drift tolerance is tight
//! (1e-9 relative — see `rum_bench::baseline::DRIFT_TOLERANCE`). After an
//! *intentional* cost change, regenerate the baseline with
//! `UPDATE_BASELINE=1` and commit the diff; the diff itself documents the
//! cost-model change for review.

use rum_bench::baseline;

const BASELINE_PATH: &str = "results/baseline_rum.json";

fn main() {
    let threads = rum::core::runner::default_threads();
    eprintln!("[baseline] measuring standard suite ({threads} threads) ...");
    let current = baseline::measure(threads);

    let update = std::env::var("UPDATE_BASELINE")
        .map(|v| v == "1")
        .unwrap_or(false);
    if update {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write(BASELINE_PATH, current.to_json()).expect("write baseline");
        println!(
            "wrote {} ({} methods)",
            BASELINE_PATH,
            current.methods.len()
        );
        return;
    }

    let text = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {BASELINE_PATH}: {e}\n\
             run with UPDATE_BASELINE=1 to create it"
        );
        std::process::exit(1);
    });
    let committed = baseline::Baseline::from_json(&text)
        .unwrap_or_else(|e| panic!("corrupt {BASELINE_PATH}: {e}"));

    let drifts = baseline::compare(&committed, &current, baseline::DRIFT_TOLERANCE);
    println!("{}", baseline::render(&committed, &current, &drifts));
    if !drifts.is_empty() {
        eprintln!(
            "{} drift(s) beyond tolerance; if intentional, regenerate with \
             UPDATE_BASELINE=1 and commit the diff",
            drifts.len()
        );
        std::process::exit(1);
    }
}
