//! Time-resolved RUM tracing: windowed amplification trajectories, latency
//! histograms, and structured event export for one suite method × one mix.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin rum_trace \
//!       \[METHOD\] \[--mix MIX\] \[--n OPS\] \[--window W\] \[--smoke\]
//!
//! `METHOD` is any `standard_suite` name (default `lsm-tree+wal`); `MIX`
//! is one of balanced / read-heavy / write-heavy / scan-heavy / read-only /
//! insert-only. The window defaults to `RUM_TRACE_WINDOW` (4096). Results
//! land in `results/trace_<method>.jsonl` (structured events),
//! `results/trajectory_<method>.csv` (windowed RO/UO/MO curves), and
//! `results/trace_<method>.folded` (flamegraph-compatible stacks).
//!
//! Every run self-checks the windowed-sum invariant: the per-window cost
//! deltas must sum **byte-exactly** to the aggregate report.
//!
//! `--smoke` is the CI trace leg: it traces `lsm-tree+wal` and `b+tree` at
//! the baseline smoke scale, asserts the sum invariant and that the traced
//! run reproduces the untraced one bit-for-bit, then re-runs the full
//! baseline gate with tracing disabled to prove the observability layer
//! changes nothing when off.

use rum_bench::{baseline, trace};

use rum::prelude::*;
use rum_core::runner::run_stream;
use rum_core::trace::env_trace_window;

const BASELINE_PATH: &str = "results/baseline_rum.json";

fn fail(msg: &str) -> ! {
    eprintln!("rum_trace: {msg}");
    std::process::exit(1)
}

/// Bit-for-bit equality of everything the cost model determines (the
/// traced report additionally carries latency quantiles, which wall-clock
/// timing makes non-deterministic — excluded by construction).
fn same_measurements(a: &RumReport, b: &RumReport) -> bool {
    a.method == b.method
        && a.n_final == b.n_final
        && a.read_ops == b.read_ops
        && a.write_ops == b.write_ops
        && a.read_costs == b.read_costs
        && a.write_costs == b.write_costs
        && a.load_costs == b.load_costs
        && a.ro.to_bits() == b.ro.to_bits()
        && a.uo.to_bits() == b.uo.to_bits()
        && a.mo.to_bits() == b.mo.to_bits()
}

fn smoke() {
    let spec = baseline::smoke_spec();
    let window = 512; // several windows at smoke scale
    for name in ["lsm-tree+wal", "b+tree"] {
        eprintln!("[trace] smoke: {name} ...");
        let mut traced_method =
            trace::find_method(name).unwrap_or_else(|| fail(&format!("{name} not in suite")));
        let run = trace::run_traced(traced_method.as_mut(), &spec, window)
            .unwrap_or_else(|e| fail(&format!("{name}: traced run failed: {e}")));
        if !run.windows_sum_exact {
            fail(&format!("{name}: windowed deltas do not sum to aggregate"));
        }
        let mut untraced_method = trace::find_method(name).expect("suite name");
        let untraced = run_stream(untraced_method.as_mut(), OpStream::new(&spec))
            .unwrap_or_else(|e| fail(&format!("{name}: untraced run failed: {e}")));
        if !same_measurements(&run.report, &untraced) {
            fail(&format!("{name}: traced run diverged from untraced run"));
        }
        println!(
            "  [PASS] {name}: {} windows sum byte-exactly; traced == untraced bit-for-bit",
            run.windows.len()
        );
    }

    // Tracing disabled (the compiled-in NoopSink default) must leave the
    // committed baseline untouched.
    eprintln!("[trace] smoke: baseline gate with tracing disabled ...");
    let current = baseline::measure(rum::core::runner::default_threads());
    let text = std::fs::read_to_string(BASELINE_PATH)
        .unwrap_or_else(|e| fail(&format!("cannot read {BASELINE_PATH}: {e}")));
    let committed = baseline::Baseline::from_json(&text)
        .unwrap_or_else(|e| fail(&format!("corrupt {BASELINE_PATH}: {e}")));
    let drifts = baseline::compare(&committed, &current, baseline::DRIFT_TOLERANCE);
    if !drifts.is_empty() {
        println!("{}", baseline::render(&committed, &current, &drifts));
        fail("baseline drifted with tracing disabled");
    }
    println!(
        "  [PASS] baseline gate: all {} methods within {:.0e} with tracing off",
        current.methods.len(),
        baseline::DRIFT_TOLERANCE
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let mut method_name = "lsm-tree+wal".to_string();
    let mut mix_name = "balanced".to_string();
    let mut operations = 100_000usize;
    let mut window = env_trace_window();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mix" => {
                mix_name = it
                    .next()
                    .unwrap_or_else(|| fail("--mix needs a value"))
                    .clone()
            }
            "--n" => {
                operations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--n needs a positive integer"))
            }
            "--window" => {
                window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--window needs a positive integer"))
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => method_name = other.to_string(),
        }
    }

    let mut method = trace::find_method(&method_name).unwrap_or_else(|| {
        fail(&format!(
            "unknown method {:?}; suite: {}",
            method_name,
            trace::suite_names().join(", ")
        ))
    });
    let mix =
        trace::mix_by_name(&mix_name).unwrap_or_else(|| fail(&format!("unknown mix {mix_name:?}")));
    let spec = WorkloadSpec {
        initial_records: (operations / 10).max(1),
        operations,
        mix,
        seed: 0x7ACE_D000 + operations as u64,
        ..Default::default()
    };

    eprintln!("[trace] {method_name} × {mix_name}, {operations} ops, window {window} ...");
    let run = trace::run_traced(method.as_mut(), &spec, window)
        .unwrap_or_else(|e| fail(&format!("traced run failed: {e}")));

    println!(
        "{}",
        trace::render_trajectory(&method_name, window, &run.windows)
    );
    println!("{}", trace::render_latency(&run));
    println!("events:");
    for (kind, count) in trace::event_counts(&run.events) {
        println!("  {kind:<16} {count:>7}");
    }
    println!("\n{}", RumReport::table_header());
    println!("{}", run.report.table_row());

    if !run.windows_sum_exact {
        fail("windowed deltas do not sum byte-exactly to the aggregate report");
    }
    println!(
        "\n[PASS] {} windowed deltas sum byte-exactly to the aggregate report",
        run.windows.len()
    );

    let tag = trace::sanitize_name(&method_name);
    std::fs::create_dir_all("results").expect("results dir");
    let jsonl_path = format!("results/trace_{tag}.jsonl");
    let csv_path = format!("results/trajectory_{tag}.csv");
    let folded_path = format!("results/trace_{tag}.folded");
    std::fs::write(&jsonl_path, trace::to_jsonl(&run.events)).expect("write jsonl");
    std::fs::write(&csv_path, trace::trajectory_csv(&run.windows)).expect("write csv");
    std::fs::write(&folded_path, trace::to_folded(&run.events)).expect("write folded");
    println!("wrote {jsonl_path}, {csv_path}, {folded_path}");
}
