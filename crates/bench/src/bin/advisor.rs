//! The calibrated access-method wizard (§5): measure empirical method
//! profiles over a mix × distribution × scale grid, rank families from the
//! measurements, and hold the ranking against the analytic Table 1 model.
//!
//! Usage:
//!   cargo run --release -p rum-bench --bin advisor [--smoke]
//!
//! Default: scales {2k, 8k, 32k} × {uniform, zipf 0.99} × the five
//! canonical mixes; writes `results/advisor_profiles.csv` (the persistent
//! profile store) and `results/advisor.txt` (the ranking tables).
//! `--smoke` is the CI job (two scales, uniform keys, no files) and exits
//! non-zero when any check fails — in particular when the measured and
//! analytic rankings disagree on the top feasible family beyond the
//! declared tolerance on any unconstrained canonical mix; the failure
//! message names the disagreeing Table 1 term.

use rum_bench::advisor;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        advisor::AdvisorConfig::smoke()
    } else {
        advisor::AdvisorConfig::default()
    };
    eprintln!("[advisor] {}", advisor::grid_summary(&config));

    let run = advisor::run(&config);
    let rendered = advisor::render(&run);
    println!("{rendered}");

    println!("=== Checks ===");
    let mut all_ok = true;
    for (desc, ok) in advisor::checks(&run) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }

    if !smoke {
        std::fs::create_dir_all("results").expect("results dir");
        std::fs::write("results/advisor_profiles.csv", advisor::to_csv(&run))
            .expect("write profiles");
        std::fs::write("results/advisor.txt", &rendered).expect("write txt");
        println!("wrote results/advisor_profiles.csv and results/advisor.txt");
    }

    if !all_ok {
        std::process::exit(1);
    }
}
