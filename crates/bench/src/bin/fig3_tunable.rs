//! Regenerates Figure 3 of the paper: tunable access methods tracing
//! curves through the RUM space as their parameters sweep.
//!
//! Usage: `cargo run --release -p rum-bench --bin fig3_tunable [--quick]`

use rum_bench::fig3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, ops) = if quick {
        (1 << 13, 1 << 11)
    } else {
        (1 << 16, 1 << 13)
    };
    let points = fig3::run(n, ops);
    println!("{}", fig3::render(&points));
    println!("=== Shape checks (each knob moves the method as the paper predicts) ===");
    let mut all_ok = true;
    for (desc, ok) in fig3::shape_checks(&points) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
