//! Time-resolved RUM tracing: one suite method × one mix, run with a live
//! [`TraceCollector`] and a [`MemorySink`], exported three ways —
//!
//! * **trajectory CSV** — one row per window of `RUM_TRACE_WINDOW` ops
//!   (default 4096): windowed and cumulative RO/UO plus MO at the window
//!   close, the amplification curves the aggregate report averages away;
//! * **events JSONL** — every structured event the run emitted (LSM
//!   flushes and compactions, WAL syncs/checkpoints, buffer evictions,
//!   shard dispatches, window closes), one JSON object per line;
//! * **folded stacks** — `rum;component;kind bytes` lines, the input
//!   format of `flamegraph.pl` / `inferno-flamegraph`, weighting each
//!   event class by the physical bytes it moved.
//!
//! The module also carries the self-check the `rum_trace` binary and the
//! CI trace leg enforce: the windowed deltas must sum **byte-exactly** to
//! the aggregate report — every op-phase byte lands in exactly one window.

use rum::prelude::*;
use rum_core::runner::run_stream_traced;
use rum_core::trace::{
    events_to_jsonl, fold_events, Event, LatencyHistogram, MemorySink, TraceCollector,
};

/// Everything one traced run produces.
pub struct TraceRun {
    pub report: RumReport,
    /// Closed trajectory windows, in execution order.
    pub windows: Vec<rum_core::trace::TrajectoryWindow>,
    /// Structured events in emission order.
    pub events: Vec<Event>,
    pub read_latency: LatencyHistogram,
    pub write_latency: LatencyHistogram,
    /// The byte-exact invariant: sum of windowed deltas == op-phase
    /// aggregate (`read_costs + write_costs`), compared field by field.
    pub windows_sum_exact: bool,
}

/// Look a method up in [`rum::standard_suite`] by its `name()`.
pub fn find_method(name: &str) -> Option<Box<dyn AccessMethod>> {
    rum::standard_suite().into_iter().find(|m| m.name() == name)
}

/// The `name()` of every standard-suite method, in suite order.
pub fn suite_names() -> Vec<String> {
    rum::standard_suite().iter().map(|m| m.name()).collect()
}

/// Parse a mix name (`balanced`, `read-heavy`, `write-heavy`,
/// `scan-heavy`, `read-only`, `insert-only`).
pub fn mix_by_name(name: &str) -> Option<OpMix> {
    match name {
        "balanced" => Some(OpMix::BALANCED),
        "read-heavy" => Some(OpMix::READ_HEAVY),
        "write-heavy" => Some(OpMix::WRITE_HEAVY),
        "scan-heavy" => Some(OpMix::SCAN_HEAVY),
        "read-only" => Some(OpMix::READ_ONLY),
        "insert-only" => Some(OpMix::INSERT_ONLY),
        _ => None,
    }
}

/// A method name as a filename fragment (`lsm-tree+wal` → `lsm-tree-wal`).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Run `spec` against `method` (streamed, never materialized) with a
/// memory sink attached and a trajectory window of `window` ops.
pub fn run_traced(
    method: &mut dyn AccessMethod,
    spec: &WorkloadSpec,
    window: usize,
) -> Result<TraceRun> {
    let sink = MemorySink::shared();
    method.set_trace_sink(sink.clone());
    let mut trace = TraceCollector::new(window, sink.clone());
    let report = run_stream_traced(method, OpStream::new(spec), &mut trace)?;
    let aggregate = report.read_costs.add(&report.write_costs);
    let windows_sum_exact = trace.windowed_sum() == aggregate;
    Ok(TraceRun {
        report,
        read_latency: trace.read_latency.clone(),
        write_latency: trace.write_latency.clone(),
        windows: trace.into_windows(),
        events: sink.events(),
        windows_sum_exact,
    })
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// CSV of the trajectory: one row per window, windowed + cumulative
/// curves. Amplifications are finite-clamped (a window of an insert-only
/// mix retrieves zero logical bytes, making its RO ∞).
pub fn trajectory_csv(windows: &[rum_core::trace::TrajectoryWindow]) -> String {
    let mut out = String::from(
        "window,ops,ro,uo,mo,cum_ro,cum_uo,read_bytes,write_bytes,logical_read_bytes,\
         logical_write_bytes,page_reads,page_writes\n",
    );
    for w in windows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{},{}\n",
            w.index,
            w.ops,
            finite(w.ro()),
            finite(w.uo()),
            finite(w.mo),
            finite(w.cumulative_ro()),
            finite(w.cumulative_uo()),
            w.delta.total_read_bytes(),
            w.delta.total_write_bytes(),
            w.delta.logical_read_bytes,
            w.delta.logical_write_bytes,
            w.delta.page_reads,
            w.delta.page_writes,
        ));
    }
    out
}

/// Fixed-width trajectory table for the terminal.
pub fn render_trajectory(
    method: &str,
    window: usize,
    windows: &[rum_core::trace::TrajectoryWindow],
) -> String {
    let mut out = format!("=== RUM trajectory: {method} (window = {window} ops) ===\n");
    out.push_str(&format!(
        "{:>6} {:>7} {:>9} {:>9} {:>7} {:>9} {:>9} {:>11} {:>11}\n",
        "window", "ops", "RO", "UO", "MO", "cumRO", "cumUO", "rd bytes", "wr bytes"
    ));
    for w in windows {
        out.push_str(&format!(
            "{:>6} {:>7} {:>9.3} {:>9.3} {:>7.3} {:>9.3} {:>9.3} {:>11} {:>11}\n",
            w.index,
            w.ops,
            finite(w.ro()),
            finite(w.uo()),
            finite(w.mo),
            finite(w.cumulative_ro()),
            finite(w.cumulative_uo()),
            w.delta.total_read_bytes(),
            w.delta.total_write_bytes(),
        ));
    }
    out
}

/// Latency summary lines (reads / writes / all), nanoseconds.
pub fn render_latency(run: &TraceRun) -> String {
    let mut all = run.read_latency.clone();
    all.merge(&run.write_latency);
    format!(
        "latency (ns): reads  {}\n              writes {}\n              all    {}\n",
        run.read_latency.summary(),
        run.write_latency.summary(),
        all.summary()
    )
}

/// Count events per kind, in a stable order, for the terminal summary.
pub fn event_counts(events: &[Event]) -> Vec<(String, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for e in events {
        *counts.entry(e.kind.as_str().to_string()).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Events as JSONL (re-exported convenience for the binary).
pub fn to_jsonl(events: &[Event]) -> String {
    events_to_jsonl(events)
}

/// Events as flamegraph-compatible folded stacks.
pub fn to_folded(events: &[Event]) -> String {
    fold_events(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_core::trace::EventKind;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            initial_records: 1_500,
            operations: 4_000,
            mix: OpMix::BALANCED,
            seed: 0x7ACE,
            ..Default::default()
        }
    }

    #[test]
    fn traced_lsm_run_produces_windows_events_and_exact_sums() {
        let mut method = find_method("lsm-tree+wal").expect("suite has lsm-tree+wal");
        let run = run_traced(method.as_mut(), &spec(), 512).unwrap();
        assert!(run.windows_sum_exact, "windowed deltas must sum exactly");
        assert_eq!(run.windows.len(), 4_000usize.div_ceil(512));
        assert_eq!(
            run.windows.iter().map(|w| w.ops).sum::<u64>(),
            4_000,
            "every op lands in exactly one window"
        );
        // The durable LSM must have flushed, synced, and closed windows.
        let kinds: Vec<&str> = run.events.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"lsm_flush"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"wal_sync"));
        assert!(kinds.contains(&"window"));
        assert_eq!(
            run.events
                .iter()
                .filter(|e| e.kind == EventKind::Window)
                .count(),
            run.windows.len()
        );
        // Latencies were timed for both classes, and the report carries
        // the histogram quantiles.
        assert!(run.read_latency.count() > 0 && run.write_latency.count() > 0);
        assert!(run.report.p99_ns >= run.report.p50_ns);
        assert!(run.report.p50_ns > 0);
        // Exports are well-formed.
        let csv = trajectory_csv(&run.windows);
        assert_eq!(csv.lines().count(), run.windows.len() + 1);
        assert!(!csv.contains("inf") && !csv.contains("NaN"));
        let jsonl = to_jsonl(&run.events);
        assert_eq!(jsonl.lines().count(), run.events.len());
        let folded = to_folded(&run.events);
        assert!(folded
            .lines()
            .any(|l| l.starts_with("rum;lsm;lsm_flush;L0 ")));
        assert!(folded.lines().any(|l| l.starts_with("rum;wal;wal_sync ")));
    }

    #[test]
    fn method_and_mix_lookups_work() {
        assert!(find_method("b+tree").is_some());
        assert!(find_method("no-such-method").is_none());
        assert!(mix_by_name("balanced").is_some());
        assert!(mix_by_name("bogus").is_none());
        assert_eq!(sanitize_name("lsm-tree+wal"), "lsm-tree-wal");
        assert!(suite_names().len() >= 19);
    }
}
