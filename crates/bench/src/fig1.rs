//! Figure 1 of the paper: "Popular data structures in the RUM space."
//!
//! Every access method in the standard suite runs the same mixed workload;
//! its measured (RO, UO, MO) triple is projected into the RUM triangle.
//! The paper's qualitative placement — read-optimized structures at the
//! top, write-optimized differential structures at the left, space-
//! efficient sparse/lossy structures at the right, adaptive methods in the
//! middle — should emerge from the measurements alone.

use rum::prelude::*;

/// The measured placement of one method.
#[derive(Clone, Debug)]
pub struct Placement {
    pub report: RumReport,
    pub point: RumPoint,
}

/// Run the Figure 1 experiment on one worker per core.
pub fn run(initial_records: usize, operations: usize, seed: u64) -> Vec<Placement> {
    run_with_threads(
        initial_records,
        operations,
        seed,
        rum::core::runner::default_threads(),
    )
}

/// Run the Figure 1 experiment with an explicit worker count (`1` =
/// serial). The measurements are identical whatever the count — only the
/// wall-clock changes — because every method carries its own tracker and
/// the merged reports are sorted by name.
///
/// The workload is never materialized: each worker draws ops straight
/// from its own [`OpStream`], which generates the identical sequence
/// `Workload::generate` would for this spec.
pub fn run_with_threads(
    initial_records: usize,
    operations: usize,
    seed: u64,
    threads: usize,
) -> Vec<Placement> {
    let spec = WorkloadSpec {
        initial_records,
        operations,
        mix: OpMix::BALANCED,
        seed,
        ..Default::default()
    };
    run_suite_stream(&mut rum::standard_suite(), &spec, threads)
        .unwrap_or_else(|e| panic!("suite run failed: {e}"))
        .into_iter()
        .map(|report| {
            let point = rum_point(report.method.clone(), report.ro, report.uo, report.mo);
            Placement { report, point }
        })
        .collect()
}

/// Render the experiment: per-method table, ASCII triangle, CSV.
pub fn render(placements: &[Placement]) -> String {
    let mut out = String::new();
    out.push_str(&RumReport::table_header());
    out.push('\n');
    for p in placements {
        out.push_str(&p.report.table_row());
        out.push('\n');
    }
    let load_ms: f64 = placements
        .iter()
        .map(|p| p.report.load_wall_ns as f64 / 1e6)
        .sum();
    let ops_ms: f64 = placements
        .iter()
        .map(|p| p.report.wall_ns as f64 / 1e6)
        .sum();
    out.push_str(&format!(
        "\ncpu time across methods: bulk load {load_ms:.1} ms, operation phase {ops_ms:.1} ms\n"
    ));
    out.push('\n');
    let points: Vec<RumPoint> = placements.iter().map(|p| p.point.clone()).collect();
    out.push_str(&render_ascii(&points, 72, 24));
    out.push_str("\nCSV:\n");
    out.push_str(&to_csv(&points));
    out
}

/// The paper's qualitative claims about Figure 1, checked.
pub fn shape_checks(placements: &[Placement]) -> Vec<(String, bool)> {
    let get = |name: &str| -> &Placement {
        placements
            .iter()
            .find(|p| p.report.method == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let mut checks: Vec<(String, bool)> = Vec::new();

    // Read-optimized corner (top): the point-indexed structures sit above
    // the differential/log structures.
    for fast in ["b+tree", "hash-index", "trie", "skiplist"] {
        for slow in ["append-log", "lsm-tree-tiered"] {
            checks.push((
                format!("{fast} sits above {slow} (closer to the read corner)"),
                get(fast).point.y > get(slow).point.y,
            ));
        }
    }
    // Write-optimized corner (left): differential structures have lower UO
    // than in-place paged structures.
    for wo in ["append-log", "lsm-tree", "lsm-tree-tiered"] {
        checks.push((
            format!("{wo} has lower UO than b+tree"),
            get(wo).report.uo < get("b+tree").report.uo,
        ));
        checks.push((
            format!("{wo} leans left of b+tree"),
            get(wo).point.x < get("b+tree").point.x + 0.05,
        ));
    }
    // Space corner (right): sparse indexing beats the dense indexes on MO.
    for light in ["zonemap", "sorted-column"] {
        for heavy in ["hash-index", "trie", "skiplist"] {
            checks.push((
                format!("{light} has lower MO than {heavy}"),
                get(light).report.mo < get(heavy).report.mo,
            ));
        }
    }
    // Adaptive methods land in the middle region: better reads than the
    // raw heap they started as, paid for with reorganization writes.
    checks.push((
        "cracked column reads better than a raw heap scan".into(),
        get("cracked-column").report.ro < get("unsorted-column").report.ro,
    ));
    checks.push((
        "cracking pays for adaptivity with write overhead (UO > log's)".into(),
        get("cracked-column").report.uo > get("append-log").report.uo,
    ));
    checks.push((
        "cracked column sits between the heap and the read corner".into(),
        // Compare against byte-granular neighbors (the heap-like column
        // below, the skip list above): cross-granularity y comparisons
        // would mix page charges into the picture.
        get("cracked-column").point.y > get("unsorted-column").point.y
            && get("cracked-column").point.y < get("skiplist").point.y,
    ));
    checks
}
