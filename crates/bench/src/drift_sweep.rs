//! The closed loop, measured: an online [`AutoTuner`] versus every
//! static configuration, over workloads that *drift*.
//!
//! Grid: the three drifting scenarios of [`Drift::suite`] (diurnal mix
//! rotation, flash-crowd read spike, scan-storm interlude — all over the
//! same balanced base mix, deterministic per seed) × six arms:
//!
//! * **four static LSM shapes** — [`advise`]'s pick for the read-heavy,
//!   write-heavy, scan-heavy and balanced canonical mixes, frozen;
//! * **tuner** — a [`SelfTuningLsm`] driven by
//!   [`run_stream_autotuned`]: the tuner watches trajectory windows,
//!   detects drift, and re-tunes T / policy / bloom bits / sorted view
//!   in place, every migration priced (drain+rebuild I/O → UO, transient
//!   double-residency → MO);
//! * **family** — a [`FamilyMorph`] with family swaps enabled: the
//!   advisor ranking may move the data to a different family entirely
//!   (B-tree ↔ LSM ↔ sorted/cracked column) as the mix rotates.
//!
//! The headline: over the whole drift suite the tuner's **total priced
//! cost** (op-phase physical I/O + final resident bytes + migration
//! double-residency, in pages) beats every static arm — paying the
//! migration bills and still winning — while a differential digest
//! proves tuner-on answers bit-identical to tuner-off.

use rum::selftune::FamilyMorph;
use rum_core::advisor::ProfileStore;
use rum_core::autotune::{
    AutoTuneConfig, AutoTuneSummary, AutoTuner, MigrationReceipt, Morphable, RetuneEstimate,
};
use rum_core::runner::{run_stream, run_stream_autotuned, RumReport};
use rum_core::trace::{noop_sink, TraceCollector};
use rum_core::wizard::{Constraints, Environment, Family};
use rum_core::workload::{Drift, OpMix, OpStream, WorkloadSpec};
use rum_core::{AccessMethod, CostTracker, Key, Record, Result, SpaceProfile, Value, PAGE_SIZE};
use rum_lsm::tuning::{advise, SelfTuningLsm, TuningGoal};
use rum_lsm::{LsmConfig, LsmTree};
use std::sync::Arc;

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct DriftSweepConfig {
    /// Records bulk-loaded before the op stream.
    pub n: usize,
    /// Operations in each drifting stream.
    pub operations: usize,
    /// Drift period (ops per full rotation; segments are quarters).
    pub period: usize,
    /// Trajectory window the tuner observes.
    pub window: usize,
    /// Per-scenario slack versus the *best* static arm: the tuner's
    /// priced total must be `<= best_static * corridor`. `1.0` demands a
    /// strict per-scenario win, but no online tuner can win every
    /// scenario outright — whichever static arm happens to start in a
    /// scenario's globally-best shape gets that shape for free, while
    /// the tuner must discover it and pay the migration. The corridor
    /// bounds that structural loss; the smoke run allows a little more
    /// (short streams amortize bills over fewer ops). The suite-total
    /// check is always strict: summed across the suite, adaptation wins
    /// must beat every fixed choice.
    pub corridor: f64,
    /// Target result size of each range query.
    pub range_len: usize,
}

impl Default for DriftSweepConfig {
    fn default() -> Self {
        // Geometry matters: migration bills scale with the resident set
        // (drain + rebuild), adaptation wins scale with ops spent in the
        // right shape. Four 24k-op periods over a 10k-record set give
        // every migration time to pay for itself; a short stream over a
        // large set would make even perfect adaptation a net loss.
        DriftSweepConfig {
            n: 10_000,
            operations: 96_000,
            period: 24_000,
            window: 512,
            corridor: 1.05,
            range_len: 16,
        }
    }
}

impl DriftSweepConfig {
    /// The reduced grid the CI smoke job runs.
    pub fn smoke() -> Self {
        DriftSweepConfig {
            n: 10_000,
            operations: 16_000,
            period: 8_000,
            window: 256,
            corridor: 1.10,
            ..Default::default()
        }
    }
}

/// The four static arms: `advise`'s pick for each canonical mix, with
/// the suite's 256-record memtable so drift-scale write streams
/// actually flush and compact.
pub fn static_arms() -> [(&'static str, LsmConfig); 4] {
    let sized = |mix: &OpMix| LsmConfig {
        memtable_records: 256,
        ..advise(mix, TuningGoal::Balanced)
    };
    [
        ("static-read", sized(&OpMix::READ_HEAVY)),
        ("static-write", sized(&OpMix::WRITE_HEAVY)),
        ("static-scan", sized(&OpMix::SCAN_HEAVY)),
        ("static-balanced", sized(&OpMix::BALANCED)),
    ]
}

fn spec_for(config: &DriftSweepConfig, drift: Drift, salt: u64) -> WorkloadSpec {
    WorkloadSpec {
        initial_records: config.n,
        operations: config.operations,
        mix: OpMix::BALANCED,
        drift,
        range_len: config.range_len,
        seed: 0x0D51_F7ED ^ salt,
        ..Default::default()
    }
}

/// FNV-1a over every observable read result: the answer digest that
/// pins tuner-on replays to tuner-off, bit for bit.
struct Digest<M: Morphable> {
    inner: M,
    hash: u64,
}

impl<M: Morphable> Digest<M> {
    fn new(inner: M) -> Self {
        Digest {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn mix(&mut self, word: u64) {
        self.hash ^= word;
        self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl<M: Morphable> AccessMethod for Digest<M> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn tracker(&self) -> &Arc<CostTracker> {
        self.inner.tracker()
    }

    fn space_profile(&self) -> SpaceProfile {
        self.inner.space_profile()
    }

    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        let r = self.inner.get_impl(key)?;
        self.mix(key);
        self.mix(r.map_or(u64::MAX, |v| v ^ 1));
        Ok(r)
    }

    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        let rs = self.inner.range_impl(lo, hi)?;
        self.mix(lo ^ hi.rotate_left(32));
        self.mix(rs.len() as u64);
        for r in &rs {
            self.mix(r.key);
            self.mix(r.value);
        }
        Ok(rs)
    }

    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.inner.insert_impl(key, value)
    }

    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        let r = self.inner.update_impl(key, value)?;
        self.mix(key ^ u64::from(r).rotate_left(17));
        Ok(r)
    }

    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        let r = self.inner.delete_impl(key)?;
        self.mix(key ^ u64::from(r).rotate_left(33));
        Ok(r)
    }

    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        self.inner.bulk_load_impl(records)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn rum_core::trace::TraceSink>) {
        self.inner.set_trace_sink(sink);
    }

    fn try_heal(&mut self) -> Result<bool> {
        self.inner.try_heal()
    }
}

impl<M: Morphable> Morphable for Digest<M> {
    fn family(&self) -> Family {
        self.inner.family()
    }

    fn shape(&self) -> String {
        self.inner.shape()
    }

    fn retune_gain(&mut self, mix: &OpMix, env: &Environment) -> Option<RetuneEstimate> {
        self.inner.retune_gain(mix, env)
    }

    fn morph_to(&mut self, family: Family, mix: &OpMix) -> Result<Option<MigrationReceipt>> {
        self.inner.morph_to(family, mix)
    }
}

/// One measured cell.
#[derive(Clone, Debug)]
pub struct DriftRow {
    pub scenario: &'static str,
    pub arm: &'static str,
    pub report: RumReport,
    /// Present on the tuner and family arms.
    pub summary: Option<AutoTuneSummary>,
    /// FNV digest of every observable read/update/delete result.
    pub digest: u64,
    /// Final resident footprint in bytes.
    pub resident_bytes: u64,
}

impl DriftRow {
    /// Op-phase physical I/O in pages (migration traffic included: it is
    /// charged to the structure's tracker mid-stream like any
    /// reorganization).
    pub fn io_pages(&self) -> f64 {
        let io = self.report.read_costs.total_read_bytes()
            + self.report.read_costs.total_write_bytes()
            + self.report.write_costs.total_read_bytes()
            + self.report.write_costs.total_write_bytes();
        io as f64 / PAGE_SIZE as f64
    }

    /// Final resident footprint in pages.
    pub fn resident_pages(&self) -> f64 {
        self.resident_bytes as f64 / PAGE_SIZE as f64
    }

    /// Peak transient double-residency across migrations, in pages.
    pub fn peak_extra_pages(&self) -> f64 {
        self.summary
            .as_ref()
            .map_or(0.0, |s| s.peak_extra_bytes as f64 / PAGE_SIZE as f64)
    }

    /// The headline metric: everything the arm paid, in pages.
    pub fn priced_total(&self) -> f64 {
        self.io_pages() + self.resident_pages() + self.peak_extra_pages()
    }

    pub fn migrations(&self) -> u64 {
        self.summary.as_ref().map_or(0, |s| s.migrations)
    }
}

fn env_for(config: &DriftSweepConfig) -> Environment {
    Environment {
        n: config.n,
        m: config.range_len,
        ..Default::default()
    }
}

fn tuner_for(config: &DriftSweepConfig, allow_family_swap: bool) -> AutoTuner {
    AutoTuner::new(
        // More reactive than the library default: a drift quarter is only
        // a handful of windows at bench scale, so the estimate must
        // settle (and the tuner fire) ~3 windows after a segment flip to
        // spend most of each quarter in the right shape.
        AutoTuneConfig {
            decay: 0.35,
            settle_epsilon: 0.12,
            settle_windows: 1,
            cooldown_windows: 3,
            warmup_windows: 2,
            // Amortize each bill over one drift segment (a quarter of the
            // period) — the honest horizon: a shape adopted for this
            // segment only has until the next rotation to pay for
            // itself. The library default (100k ops) assumes a stable
            // future this suite deliberately denies.
            horizon_ops: (config.period / 4) as u64,
            allow_family_swap,
            ..Default::default()
        },
        &OpMix::BALANCED,
        ProfileStore::default(),
        env_for(config),
        Constraints {
            needs_ranges: true,
            ..Default::default()
        },
    )
}

fn run_static(
    config: &DriftSweepConfig,
    spec: &WorkloadSpec,
    cfg: LsmConfig,
) -> Result<(RumReport, u64, u64)> {
    let _ = config;
    let mut m = Digest::new(SelfTuningLsm::new(LsmTree::with_config(cfg)));
    let report = run_stream(&mut m, OpStream::new(spec))?;
    Ok((report, m.hash, m.space_profile().total_bytes()))
}

fn run_tuned(
    config: &DriftSweepConfig,
    spec: &WorkloadSpec,
) -> Result<(RumReport, AutoTuneSummary, u64, u64)> {
    let cfg = LsmConfig {
        memtable_records: 256,
        ..advise(&OpMix::BALANCED, TuningGoal::Balanced)
    };
    let mut m = Digest::new(SelfTuningLsm::new(LsmTree::with_config(cfg)));
    let mut tuner = tuner_for(config, false);
    let mut trace = TraceCollector::new(config.window, noop_sink());
    let (report, summary) =
        run_stream_autotuned(&mut m, OpStream::new(spec), &mut tuner, &mut trace)?;
    Ok((report, summary, m.hash, m.space_profile().total_bytes()))
}

fn run_family(
    config: &DriftSweepConfig,
    spec: &WorkloadSpec,
) -> Result<(RumReport, AutoTuneSummary, u64, u64)> {
    let inner = FamilyMorph::new(Family::LsmTree).expect("LSM is range-capable");
    let mut m = Digest::new(inner);
    let mut tuner = tuner_for(config, true);
    let mut trace = TraceCollector::new(config.window, noop_sink());
    let (report, summary) =
        run_stream_autotuned(&mut m, OpStream::new(spec), &mut tuner, &mut trace)?;
    Ok((report, summary, m.hash, m.space_profile().total_bytes()))
}

/// Run the grid. Rows come back scenario-major: four static arms, the
/// tuner, then the family-swap showcase.
pub fn run(config: &DriftSweepConfig) -> Vec<DriftRow> {
    let mut rows = Vec::new();
    for (scenario, drift) in Drift::suite(config.period) {
        let spec = spec_for(config, drift, scenario.len() as u64);
        for (arm, cfg) in static_arms() {
            eprintln!("[drift] {scenario} / {arm} ...");
            let (report, digest, resident) =
                run_static(config, &spec, cfg).expect("static arm run");
            rows.push(DriftRow {
                scenario,
                arm,
                report,
                summary: None,
                digest,
                resident_bytes: resident,
            });
        }
        eprintln!("[drift] {scenario} / tuner ...");
        let (report, summary, digest, resident) = run_tuned(config, &spec).expect("tuner arm run");
        rows.push(DriftRow {
            scenario,
            arm: "tuner",
            report,
            summary: Some(summary),
            digest,
            resident_bytes: resident,
        });
        eprintln!("[drift] {scenario} / family ...");
        let (report, summary, digest, resident) =
            run_family(config, &spec).expect("family arm run");
        rows.push(DriftRow {
            scenario,
            arm: "family",
            report,
            summary: Some(summary),
            digest,
            resident_bytes: resident,
        });
    }
    rows
}

/// CSV of the grid: deterministic columns only (no wall-clock derived
/// values), so the artifact-freshness gate can diff it byte-for-byte.
pub fn to_csv(rows: &[DriftRow]) -> String {
    let mut out = String::from(
        "scenario,arm,n_final,ro,uo,mo,io_pages,resident_pages,peak_extra_pages,priced_total_pages,\
         migrations,drift_events,migration_kib,digest\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{:.4},{:.1},{:.1},{:.1},{:.1},{},{},{:.1},{:016x}\n",
            r.scenario,
            r.arm,
            r.report.n_final,
            r.report.ro,
            r.report.uo,
            r.report.mo,
            r.io_pages(),
            r.resident_pages(),
            r.peak_extra_pages(),
            r.priced_total(),
            r.migrations(),
            r.summary.as_ref().map_or(0, |s| s.drift_events),
            r.summary
                .as_ref()
                .map_or(0.0, |s| s.migration_bytes() as f64 / 1024.0),
            r.digest,
        ));
    }
    out
}

/// Fixed-width table of the grid.
pub fn render(rows: &[DriftRow]) -> String {
    let mut out =
        String::from("=== Drift suite: online AutoTuner vs every static configuration ===\n");
    out.push_str(&format!(
        "{:>12} {:>15} {:>8} {:>8} {:>8} {:>10} {:>9} {:>10} {:>6} {:>6}\n",
        "scenario", "arm", "RO", "UO", "MO", "io pages", "resident", "total", "migr", "drift"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>15} {:>8.3} {:>8.3} {:>8.3} {:>10.0} {:>9.0} {:>10.0} {:>6} {:>6}\n",
            r.scenario,
            r.arm,
            r.report.ro,
            r.report.uo,
            r.report.mo,
            r.io_pages(),
            r.resident_pages(),
            r.priced_total(),
            r.migrations(),
            r.summary.as_ref().map_or(0, |s| s.drift_events),
        ));
    }
    out
}

/// The sweep's claims, checked. Any `false` fails the smoke job.
pub fn checks(config: &DriftSweepConfig, rows: &[DriftRow]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let arm = |scenario: &str, name: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.arm == name)
            .expect("grid is complete")
    };
    let mut suite_totals: Vec<(&'static str, f64)> = Vec::new();
    for (scenario, _) in Drift::suite(config.period) {
        let tuner = arm(scenario, "tuner");
        let family = arm(scenario, "family");
        let statics: Vec<&DriftRow> = rows
            .iter()
            .filter(|r| r.scenario == scenario && r.arm.starts_with("static-"))
            .collect();
        let best = statics
            .iter()
            .map(|r| r.priced_total())
            .fold(f64::INFINITY, f64::min);
        let worst = statics.iter().map(|r| r.priced_total()).fold(0.0, f64::max);
        let t = tuner.priced_total();
        out.push((
            format!("{scenario}: tuner beats the worst static arm ({t:.0} vs {worst:.0} pages)"),
            t < worst,
        ));
        out.push((
            format!(
                "{scenario}: tuner within {:.2}x of the best static arm ({t:.0} vs {best:.0} pages)",
                config.corridor
            ),
            if config.corridor > 1.0 {
                t <= best * config.corridor
            } else {
                t < best
            },
        ));
        // The differential replay: the tuner's answers (and the
        // family-swapper's) must be bit-identical to the untuned twin's.
        let baseline = arm(scenario, "static-balanced").digest;
        out.push((
            format!("{scenario}: tuner-on answers bit-identical to tuner-off"),
            tuner.digest == baseline,
        ));
        out.push((
            format!("{scenario}: family-swap answers bit-identical to tuner-off"),
            family.digest == baseline,
        ));
        for r in &statics {
            suite_totals.push((r.arm, r.priced_total()));
        }
        suite_totals.push(("tuner", t));
    }
    // The headline: summed over the whole drift suite, the tuner strictly
    // beats every static configuration on total priced cost.
    let total_of = |name: &str| -> f64 {
        suite_totals
            .iter()
            .filter(|(a, _)| *a == name)
            .map(|(_, v)| v)
            .sum()
    };
    let tuner_total = total_of("tuner");
    for (name, _) in static_arms() {
        let s = total_of(name);
        out.push((
            format!("suite total: tuner beats {name} ({tuner_total:.0} vs {s:.0} pages)"),
            tuner_total < s,
        ));
    }
    // The tuner must actually adapt somewhere in the suite, paying a real
    // (nonzero-byte) migration bill — not every scenario offers a move
    // whose win covers its bill, and declining those is the tuner doing
    // its job, but a tuner that never moves is just a static arm.
    let tuner_paid = rows
        .iter()
        .filter(|r| r.arm == "tuner")
        .filter_map(|r| r.summary.as_ref())
        .any(|s| s.migrations >= 1 && s.migration_bytes() > 0);
    out.push((
        "suite total: tuner performs at least one priced migration".into(),
        tuner_paid,
    ));
    // The family showcase must actually swap families at least once over
    // the suite (it is not required to win — crossing families pays real
    // bills — only to adapt and stay correct).
    let family_migrations: u64 = rows
        .iter()
        .filter(|r| r.arm == "family")
        .map(|r| r.migrations())
        .sum();
    out.push((
        "suite total: family showcase performs at least one swap".into(),
        family_migrations >= 1,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_holds_the_contract() {
        // Quarters of ~8 windows: long enough for a migration's bill to
        // amortize inside each segment, small enough for a unit test.
        let config = DriftSweepConfig {
            n: 4_000,
            operations: 16_000,
            period: 8_000,
            window: 256,
            corridor: 1.25,
            range_len: 16,
        };
        let rows = run(&config);
        assert_eq!(rows.len(), 18); // 3 scenarios x (4 static + tuner + family)
        for (desc, ok) in checks(&config, &rows) {
            assert!(ok, "failed check: {desc}");
        }
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 19);
    }
}
