//! The live-metrics observability experiment: suite methods run under
//! the full metrics plane ([`MetricsPlane`] + [`DebtLedger`] +
//! exporter-ready registry), producing the per-op-class **causally
//! attributed** RUM table — who really pays for each background byte —
//! plus the two invariants the CI `obs` leg enforces:
//!
//! * **conservation** — per-class attributed bytes sum bit-equal to the
//!   tracker totals ([`DebtSnapshot::conserves`]), for every method;
//! * **observer-freedom** — a metrics-enabled run is bit-identical in
//!   RO/UO/MO (and full cost snapshots) to a metrics-disabled run of the
//!   same stream, for every standard-suite method
//!   ([`metrics_equivalence`]).
//!
//! [`DebtLedger`]: rum_core::metrics::DebtLedger

use std::sync::Arc;

use rum::prelude::*;
use rum_core::metrics::{DebtSnapshot, MetricsPlane, OpClass};
use rum_core::runner::{run_stream, run_stream_metered};
use rum_core::trace::TraceCollector;

use crate::trace::find_method;

/// Configuration of one observability run.
pub struct ObsConfig {
    pub initial_records: usize,
    pub operations: usize,
    /// Trajectory window (gauges republish at every window close).
    pub window: usize,
    pub seed: u64,
    /// Standard-suite method names to run.
    pub methods: Vec<String>,
}

impl ObsConfig {
    /// The deterministic CI configuration: small enough for the smoke
    /// leg, large enough that every LSM variant flushes, compacts, syncs
    /// its WAL, and rebuilds its sorted view.
    pub fn smoke() -> ObsConfig {
        ObsConfig {
            initial_records: 2_000,
            operations: 6_000,
            window: 512,
            seed: 0x0B5E_7241,
            methods: ["b+tree", "lsm-tree", "lsm-tree+view", "lsm-tree+wal"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            initial_records: self.initial_records,
            operations: self.operations,
            mix: OpMix::BALANCED,
            seed: self.seed,
            ..Default::default()
        }
    }
}

/// Everything one metered run produces: the aggregate report, the debt
/// ledger's causal attribution, the raw tracker totals it must conserve
/// against, and the live plane (still scrapeable by an exporter).
pub struct MethodObs {
    pub name: String,
    pub report: RumReport,
    pub debt: DebtSnapshot,
    pub totals: CostSnapshot,
    /// The conservation verdict: attributed bytes sum bit-equal to
    /// `totals`.
    pub conserved: bool,
    pub plane: Arc<MetricsPlane>,
}

/// Run one standard-suite method under the metrics plane.
pub fn run_method(name: &str, cfg: &ObsConfig) -> Result<MethodObs> {
    let mut method = find_method(name)
        .ok_or_else(|| RumError::InvalidArgument(format!("unknown suite method {name:?}")))?;
    let plane = MetricsPlane::shared();
    // The plane's sink feeds the ledger and the registry mirror; it is
    // also the collector's sink, so Window events are mirrored too.
    let sink = plane.sink();
    method.set_trace_sink(sink.clone());
    let mut trace = TraceCollector::new(cfg.window, sink);
    let report = run_stream_metered(
        method.as_mut(),
        OpStream::new(&cfg.spec()),
        &mut trace,
        &plane,
    )?;
    let totals = method.tracker().snapshot();
    let debt = plane.ledger().snapshot();
    let conserved = debt.conserves(&totals);
    Ok(MethodObs {
        name: name.to_string(),
        report,
        debt,
        totals,
        conserved,
        plane,
    })
}

/// Run every configured method, in order.
pub fn run(cfg: &ObsConfig) -> Vec<MethodObs> {
    cfg.methods
        .iter()
        .map(|name| run_method(name, cfg).unwrap_or_else(|e| panic!("obs run {name}: {e}")))
        .collect()
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// The causal-attribution table as CSV: one row per method × op class.
/// Fully deterministic (no wall-clock columns), so the artifact gate
/// byte-compares it against `results/smoke/obs_debt.csv`.
pub fn to_csv(rows: &[MethodObs]) -> String {
    let mut out = String::from(
        "method,class,ops,logical_read_bytes,logical_write_bytes,attributed_read_bytes,\
         attributed_write_bytes,class_ro,class_uo,debt_accrued_bytes,debt_settled_bytes,\
         debt_outstanding_bytes,reattributed_read_bytes,reattributed_write_bytes,conserved\n",
    );
    for r in rows {
        for class in OpClass::ALL {
            let a = r.debt.class(class);
            let ops = match class {
                // The load phase's "ops" are the records bulk-loaded.
                OpClass::Load => {
                    r.report.load_costs.logical_write_bytes / rum_core::RECORD_SIZE as u64
                }
                OpClass::Read => r.report.read_ops,
                OpClass::Write => r.report.write_ops,
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6},{:.6},{},{},{},{},{},{}\n",
                r.name,
                class.as_str(),
                ops,
                a.charged.logical_read_bytes,
                a.charged.logical_write_bytes,
                a.attributed_read_bytes(),
                a.attributed_write_bytes(),
                finite(a.ro()),
                finite(a.uo()),
                r.debt.debt_accrued_bytes,
                r.debt.debt_settled_bytes,
                r.debt.debt_outstanding_bytes(),
                r.debt.reattributed_read_bytes,
                r.debt.reattributed_write_bytes,
                u64::from(r.conserved),
            ));
        }
    }
    out
}

/// Fixed-width terminal rendering of the attribution table.
pub fn render(rows: &[MethodObs]) -> String {
    let mut out = String::from("=== causal debt attribution (per op class) ===\n");
    out.push_str(&format!(
        "{:<16} {:>6} {:>14} {:>14} {:>9} {:>9} {:>12} {:>9}\n",
        "method", "class", "attr rd bytes", "attr wr bytes", "RO", "UO", "debt out", "conserved"
    ));
    for r in rows {
        for class in OpClass::ALL {
            let a = r.debt.class(class);
            out.push_str(&format!(
                "{:<16} {:>6} {:>14} {:>14} {:>9.3} {:>9.3} {:>12} {:>9}\n",
                r.name,
                class.as_str(),
                a.attributed_read_bytes(),
                a.attributed_write_bytes(),
                finite(a.ro()),
                finite(a.uo()),
                r.debt.debt_outstanding_bytes(),
                if r.conserved { "yes" } else { "NO" },
            ));
        }
    }
    out
}

/// One method's metrics-on vs metrics-off verdict.
pub struct EquivalenceRow {
    pub method: String,
    /// RO/UO/MO bit-equal and all three cost snapshots identical.
    pub identical: bool,
}

/// Drive every standard-suite method twice over the same stream — once
/// plain ([`run_stream`]), once under a full metrics plane with its sink
/// installed ([`run_stream_metered`]) — and compare the measured
/// results. `identical` demands bit-equality of RO/UO/MO and equality
/// of the read/write/load cost snapshots: the metrics plane must be a
/// pure observer.
pub fn metrics_equivalence(
    initial_records: usize,
    operations: usize,
    seed: u64,
) -> Vec<EquivalenceRow> {
    let spec = WorkloadSpec {
        initial_records,
        operations,
        mix: OpMix::BALANCED,
        seed,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let names: Vec<String> = rum::standard_suite().iter().map(|m| m.name()).collect();
    for name in names {
        let mut plain = find_method(&name).expect("suite method");
        let baseline = run_stream(plain.as_mut(), OpStream::new(&spec))
            .unwrap_or_else(|e| panic!("{name} plain: {e}"));

        let mut metered = find_method(&name).expect("suite method");
        let plane = MetricsPlane::shared();
        let sink = plane.sink();
        metered.set_trace_sink(sink.clone());
        let mut trace = TraceCollector::new(512, sink);
        let observed =
            run_stream_metered(metered.as_mut(), OpStream::new(&spec), &mut trace, &plane)
                .unwrap_or_else(|e| panic!("{name} metered: {e}"));

        let identical = baseline.ro.to_bits() == observed.ro.to_bits()
            && baseline.uo.to_bits() == observed.uo.to_bits()
            && baseline.mo.to_bits() == observed.mo.to_bits()
            && baseline.read_costs == observed.read_costs
            && baseline.write_costs == observed.write_costs
            && baseline.load_costs == observed.load_costs
            && baseline.read_ops == observed.read_ops
            && baseline.write_ops == observed.write_ops
            && baseline.n_final == observed.n_final;
        rows.push(EquivalenceRow {
            method: name,
            identical,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_conserves_and_attributes_background_bytes() {
        let cfg = ObsConfig::smoke();
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.methods.len());
        for r in &rows {
            assert!(r.conserved, "{}: attribution must conserve", r.name);
            // The registry mirrored the event stream and published the
            // final gauge set.
            assert_eq!(
                r.plane.registry().gauge("rum_conservation_ok", &[]),
                Some(1.0),
                "{}",
                r.name
            );
        }
        // LSM variants defer writes: debt accrued and flushes settled
        // some of it; the write class carries the flush/compaction bytes.
        let lsm = rows.iter().find(|r| r.name == "lsm-tree").unwrap();
        assert!(lsm.debt.debt_accrued_bytes > 0);
        assert!(lsm.debt.debt_settled_bytes > 0);
        assert!(
            lsm.plane
                .registry()
                .counter("rum_events_total", &[("kind", "lsm_flush")])
                > 0
        );
        // The sorted-view LSM rebuilds views during read spans, so bytes
        // were re-attributed from readers back to the writers that
        // invalidated the view.
        let view = rows.iter().find(|r| r.name == "lsm-tree+view").unwrap();
        assert!(
            view.debt.reattributed_write_bytes > 0,
            "view rebuilds must move bytes between classes"
        );
        assert!(view.conserved, "re-attribution stays conservative");
        // CSV shape: header + methods × 3 classes, wall-clock free.
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 1 + rows.len() * 3);
        assert!(!csv.contains("inf") && !csv.contains("NaN"));
    }

    #[test]
    fn smoke_csv_is_deterministic() {
        let cfg = ObsConfig::smoke();
        assert_eq!(to_csv(&run(&cfg)), to_csv(&run(&cfg)));
    }

    #[test]
    fn metrics_on_equals_metrics_off_for_a_slice_of_the_suite() {
        // The full-suite sweep is the smoke binary's job; the unit test
        // pins the property on the methods with the busiest background
        // machinery.
        for name in ["lsm-tree+wal", "lsm-tree+view", "b+tree"] {
            let mut plain = find_method(name).unwrap();
            let spec = WorkloadSpec {
                initial_records: 1_000,
                operations: 2_000,
                mix: OpMix::BALANCED,
                seed: 7,
                ..Default::default()
            };
            let baseline = run_stream(plain.as_mut(), OpStream::new(&spec)).unwrap();
            let mut metered = find_method(name).unwrap();
            let plane = MetricsPlane::shared();
            let sink = plane.sink();
            metered.set_trace_sink(sink.clone());
            let mut trace = TraceCollector::new(256, sink);
            let observed =
                run_stream_metered(metered.as_mut(), OpStream::new(&spec), &mut trace, &plane)
                    .unwrap();
            assert_eq!(baseline.ro.to_bits(), observed.ro.to_bits(), "{name} RO");
            assert_eq!(baseline.uo.to_bits(), observed.uo.to_bits(), "{name} UO");
            assert_eq!(baseline.mo.to_bits(), observed.mo.to_bits(), "{name} MO");
        }
    }
}
