//! Range-read acceleration sweep: the REMIX-style sorted view's RO-vs-MO
//! trade, measured.
//!
//! Grid: three range-carrying canonical mixes × point-probe filter
//! (Bloom / quotient) × sorted view (off / on), all over the same
//! write-optimized tiered LSM (`T = 8`, 64-record memtable) — the
//! many-run shape where per-run range probes hurt and REMIX pays off.
//! Short scans (`range_len = 16`) keep each query's *useful* pages small,
//! so the per-run probe waste the view removes dominates the cell.
//!
//! What the table shows, in RUM terms:
//!
//! * **RO** drops with the view on: a range query binary-searches one
//!   global anchor array and touches only pages holding live newest
//!   versions, instead of paying a fence search plus at least one page on
//!   every overlapping run.
//! * **MO** rises: the view's `(key, run, page)` anchors are resident
//!   auxiliary bytes (the `view KiB` column), and **UO** absorbs each
//!   lazy rebuild after a flush/compaction invalidates the anchors.
//! * Correctness is not traded: every cell pair runs a differential
//!   replay — view-on results must be bit-identical to view-off, op by
//!   op, `Get` and `Range` alike.

use rum_core::runner::{run_workload, RumReport};
use rum_core::workload::{KeySpace, Op, OpMix, Workload, WorkloadSpec};
use rum_core::{AccessMethod, Key};
use rum_lsm::{CompactionPolicy, FilterKind, LsmConfig, LsmTree};
use std::collections::{HashMap, HashSet};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct RangeSweepConfig {
    /// Records bulk-loaded before the op stream (the scale axis).
    pub n: usize,
    /// Operations in the stream.
    pub operations: usize,
    /// Target result size of each range query.
    pub range_len: usize,
    /// Required RO advantage of view-on over view-off on the scan-heavy
    /// mix: `ro_off >= ro_on * ro_ratio_floor`. The full sweep demands
    /// the headline 2×; the smoke run only demands strictly lower.
    pub ro_ratio_floor: f64,
}

impl Default for RangeSweepConfig {
    fn default() -> Self {
        RangeSweepConfig {
            n: 100_000,
            operations: 30_000,
            range_len: 16,
            ro_ratio_floor: 2.0,
        }
    }
}

impl RangeSweepConfig {
    /// The reduced grid the CI smoke job runs: small enough to finish in
    /// seconds, still asserting result equality and a strict RO win on
    /// the scan-heavy mix.
    pub fn smoke() -> Self {
        RangeSweepConfig {
            n: 20_000,
            operations: 8_000,
            ro_ratio_floor: 1.0,
            ..Default::default()
        }
    }
}

/// The three canonical mixes that exercise range reads.
pub fn range_mixes() -> [(&'static str, OpMix); 3] {
    [
        ("balanced", OpMix::BALANCED),
        ("range-heavy", OpMix::RANGE_HEAVY),
        ("scan-heavy", OpMix::SCAN_HEAVY),
    ]
}

/// The two filter kinds under test.
pub fn filters() -> [(&'static str, FilterKind); 2] {
    [
        ("bloom", FilterKind::Bloom),
        ("quotient", FilterKind::Quotient { rbits: 10 }),
    ]
}

fn tree(filter: FilterKind, sorted_view: bool) -> LsmTree {
    // Small memtable + tiering: the op stream's write trickle becomes a
    // steady supply of fresh whole-domain runs, the many-run shape where
    // per-run range probes hurt and the sorted view pays off.
    LsmTree::with_config(LsmConfig {
        memtable_records: 64,
        size_ratio: 8,
        policy: CompactionPolicy::Tiering,
        filter,
        sorted_view,
        ..Default::default()
    })
}

/// Gap between bulk-loaded keys: inserts land on the in-between slots.
const KEY_SPACING: u64 = 4;

fn spec_for(config: &RangeSweepConfig, mix: OpMix, seed_salt: u64) -> WorkloadSpec {
    WorkloadSpec {
        initial_records: config.n,
        operations: config.operations,
        mix,
        range_len: config.range_len,
        key_space: KeySpace::Dense {
            spacing: KEY_SPACING,
        },
        seed: 0x0005_EED0 ^ seed_salt,
        ..Default::default()
    }
}

/// Scatter the stream's fresh-insert keys across the bulk-loaded domain.
///
/// The generator appends fresh keys *above* the initial population, so
/// every flushed run would occupy a disjoint key segment — a shape run
/// envelopes already prune perfectly, leaving the sorted view nothing to
/// accelerate. Real ingest interleaves new keys with resident ones; this
/// remaps each fresh key into a random unused gap slot of the spaced bulk
/// domain (rewriting every later reference to it consistently), producing
/// the overlapping-run shape REMIX-style views actually target.
fn scatter_inserts(workload: &mut Workload, n: usize, seed: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut taken: HashSet<Key> = HashSet::new();
    let mut map: HashMap<Key, Key> = HashMap::new();
    let remap = |map: &HashMap<Key, Key>, k: Key| *map.get(&k).unwrap_or(&k);
    for op in &mut workload.ops {
        match *op {
            Op::Insert(k, v) => {
                let s = loop {
                    let slot = next() % n.max(1) as u64;
                    let cand = slot * KEY_SPACING + 1 + next() % (KEY_SPACING - 1);
                    if taken.insert(cand) {
                        break cand;
                    }
                };
                map.insert(k, s);
                *op = Op::Insert(s, v);
            }
            Op::Get(k) => *op = Op::Get(remap(&map, k)),
            Op::Update(k, v) => *op = Op::Update(remap(&map, k), v),
            Op::Delete(k) => *op = Op::Delete(remap(&map, k)),
            Op::Range(lo, hi) => {
                let l = remap(&map, lo);
                *op = Op::Range(l, l.saturating_add(hi - lo));
            }
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug)]
pub struct RangeRow {
    pub mix: &'static str,
    pub filter: &'static str,
    pub view: bool,
    pub report: RumReport,
    /// Resident anchor bytes after the run (rebuilt if a trailing flush
    /// had invalidated them, so the MO column is never understated).
    pub view_bytes: u64,
    /// Whether the differential replay against the view-off twin found
    /// every op result bit-identical (view-on cells only).
    pub identical: Option<bool>,
}

/// Replay the workload op-by-op on a view-off and a view-on tree,
/// comparing every observable result bit-for-bit.
fn differential(workload: &Workload, filter: FilterKind) -> bool {
    let mut off = tree(filter, false);
    let mut on = tree(filter, true);
    off.bulk_load(&workload.initial).expect("bulk load");
    on.bulk_load(&workload.initial).expect("bulk load");
    for op in &workload.ops {
        let same = match *op {
            Op::Get(k) => off.get(k).unwrap() == on.get(k).unwrap(),
            Op::Insert(k, v) => {
                off.insert(k, v).unwrap();
                on.insert(k, v).unwrap();
                true
            }
            Op::Update(k, v) => off.update(k, v).unwrap() == on.update(k, v).unwrap(),
            Op::Delete(k) => off.delete(k).unwrap() == on.delete(k).unwrap(),
            Op::Range(lo, hi) => off.range(lo, hi).unwrap() == on.range(lo, hi).unwrap(),
        };
        if !same || off.len() != on.len() {
            return false;
        }
    }
    off.range(0, Key::MAX).unwrap() == on.range(0, Key::MAX).unwrap()
}

/// Run the grid. Rows come back mix-major, then filter, then view off/on.
pub fn run(config: &RangeSweepConfig) -> Vec<RangeRow> {
    let mut rows = Vec::new();
    for (mix_name, mix) in range_mixes() {
        let spec = spec_for(config, mix, mix_name.len() as u64);
        let mut workload = Workload::generate(&spec);
        scatter_inserts(&mut workload, config.n, spec.seed);
        let workload = workload;
        for (filter_name, filter) in filters() {
            eprintln!("[range] {mix_name} / {filter_name} ...");
            let identical = differential(&workload, filter);
            for view in [false, true] {
                let mut t = tree(filter, view);
                let report = run_workload(&mut t, &workload).expect("workload run");
                // The MO column must not be understated by a trailing
                // flush having dropped the anchors: rebuild (post-
                // measurement) so `view_bytes` reports the resident cost
                // a steady-state reader pays.
                if view {
                    t.range(0, 0).expect("view rebuild");
                }
                rows.push(RangeRow {
                    mix: mix_name,
                    filter: filter_name,
                    view,
                    report,
                    view_bytes: t.view_bytes(),
                    identical: view.then_some(identical),
                });
            }
        }
    }
    rows
}

/// CSV of the grid: cell coordinates + the standard report columns.
pub fn to_csv(rows: &[RangeRow]) -> String {
    let mut out = String::from(
        "mix,filter,view,method,n_final,ro,uo,mo,pages_per_read_op,pages_per_write_op,sim_ns,\
         p50_ns,p99_ns,ops_per_sec,view_kib,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.1},{}\n",
            r.mix,
            r.filter,
            if r.view { "on" } else { "off" },
            r.report.csv_row(),
            r.view_bytes as f64 / 1024.0,
            r.identical.map_or("", |ok| if ok { "yes" } else { "NO" }),
        ));
    }
    out
}

/// Fixed-width table of the grid.
pub fn render(rows: &[RangeRow]) -> String {
    let mut out = String::from(
        "=== Range-read acceleration: cross-run sorted view, RO bought with MO/UO ===\n",
    );
    out.push_str(&format!(
        "{:>12} {:>9} {:>4}  {}  {:>9} {:>6}\n",
        "mix",
        "filter",
        "view",
        RumReport::table_header(),
        "view KiB",
        "equal"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>9} {:>4}  {}  {:>9.1} {:>6}\n",
            r.mix,
            r.filter,
            if r.view { "on" } else { "off" },
            r.report.table_row(),
            r.view_bytes as f64 / 1024.0,
            r.identical.map_or("", |ok| if ok { "yes" } else { "NO" }),
        ));
    }
    out
}

/// The sweep's claims, checked. Any `false` fails the smoke job.
pub fn checks(config: &RangeSweepConfig, rows: &[RangeRow]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for r in rows {
        out.push((
            format!(
                "{}/{}/view={}: RO/UO/MO all finite",
                r.mix, r.filter, r.view
            ),
            r.report.ro.is_finite() && r.report.uo.is_finite() && r.report.mo.is_finite(),
        ));
        if let Some(ok) = r.identical {
            out.push((
                format!(
                    "{}/{}: view-on results bit-identical to view-off",
                    r.mix, r.filter
                ),
                ok,
            ));
        }
        if r.view {
            out.push((
                format!("{}/{}: view reports resident bytes", r.mix, r.filter),
                r.view_bytes > 0,
            ));
        }
    }
    // The headline: the view's RO advantage on the scan-heavy mix, for
    // both filters (the filter guards point probes, not ranges, so the
    // advantage must not depend on it).
    for (filter_name, _) in filters() {
        let ro_of = |view: bool| {
            rows.iter()
                .find(|r| r.mix == "scan-heavy" && r.filter == filter_name && r.view == view)
                .map(|r| r.report.ro)
        };
        if let (Some(off), Some(on)) = (ro_of(false), ro_of(true)) {
            let desc = if config.ro_ratio_floor > 1.0 {
                format!(
                    "scan-heavy/{filter_name}: view-on RO at least {}x lower ({on:.2} vs {off:.2})",
                    config.ro_ratio_floor
                )
            } else {
                format!("scan-heavy/{filter_name}: view-on RO strictly lower ({on:.2} vs {off:.2})")
            };
            let ok = if config.ro_ratio_floor > 1.0 {
                on * config.ro_ratio_floor <= off
            } else {
                on < off
            };
            out.push((desc, ok));
        }
    }
    // The trade is visible: every view-on cell pays MO (view bytes) and
    // UO (rebuild traffic) at or above its view-off twin's.
    for (mix_name, _) in range_mixes() {
        for (filter_name, _) in filters() {
            let pair: Vec<&RangeRow> = rows
                .iter()
                .filter(|r| r.mix == mix_name && r.filter == filter_name)
                .collect();
            if let [off, on] = pair.as_slice() {
                out.push((
                    format!("{mix_name}/{filter_name}: view-on UO not below view-off (rebuilds are priced)"),
                    on.report.uo >= off.report.uo,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_holds_the_contract() {
        let config = RangeSweepConfig {
            n: 4_000,
            operations: 3_000,
            range_len: 16,
            ro_ratio_floor: 1.0,
        };
        let rows = run(&config);
        assert_eq!(rows.len(), 12); // 3 mixes x 2 filters x 2 view states
        for (desc, ok) in checks(&config, &rows) {
            assert!(ok, "failed check: {desc}");
        }
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 13);
        assert!(!csv.contains("NO"));
    }
}
