//! Artifact-freshness gate: regenerate every committed smoke CSV
//! in-process and fail if the checked-in copy drifted.
//!
//! Each experiment binary writes a full-scale `results/*.csv` that is too
//! expensive to regenerate on every push, so those stay documentation.
//! But every module also has a deterministic `--smoke` configuration —
//! this gate runs each of them, strips the wall-clock columns (the only
//! nondeterministic ones), and byte-compares the result against the
//! committed twin under `results/smoke/`. Any code change that alters a
//! measured cost now has to regenerate the artifacts in the same commit,
//! exactly like the RUM baseline gate does for `baseline_rum.json`.
//!
//! After an intentional cost-model change:
//! `UPDATE_ARTIFACTS=1 cargo run --release -p rum-bench --bin artifact_gate`
//! and commit the rewritten `results/smoke/*.csv`.

use crate::{advisor, crash, drift_sweep, fault_storm, obs, range_sweep, scale};

/// Columns measured from the host clock, not the cost model. These are
/// the only nondeterministic values any module emits; everything else
/// (page counts, simulated ns, amplifications) is seeded and exact.
pub const WALL_CLOCK_COLUMNS: &[&str] = &["p50_ns", "p99_ns", "ops_per_sec"];

/// Directory holding the committed smoke twins, relative to the repo root.
pub const SMOKE_DIR: &str = "results/smoke";

/// One gated artifact: a name and the regenerated (already wall-clock
/// stripped) CSV body.
pub struct Artifact {
    /// Stem of the committed file: `results/smoke/<name>.csv`.
    pub name: &'static str,
    /// The freshly regenerated, deterministic CSV.
    pub csv: String,
}

impl Artifact {
    /// Path of the committed twin relative to the repo root.
    pub fn path(&self) -> String {
        format!("{SMOKE_DIR}/{}.csv", self.name)
    }
}

/// Drop the wall-clock columns from a CSV by header name, preserving
/// every other column and the row order. Unknown headers pass through,
/// so modules whose CSVs are fully deterministic are unchanged.
pub fn strip_wall_clock(csv: &str) -> String {
    let mut lines = csv.lines();
    let Some(header) = lines.next() else {
        return String::new();
    };
    let keep: Vec<bool> = header
        .split(',')
        .map(|col| !WALL_CLOCK_COLUMNS.contains(&col.trim()))
        .collect();
    let filter_row = |row: &str| -> String {
        row.split(',')
            .enumerate()
            .filter(|(i, _)| keep.get(*i).copied().unwrap_or(true))
            .map(|(_, cell)| cell)
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = filter_row(header);
    out.push('\n');
    for row in lines {
        out.push_str(&filter_row(row));
        out.push('\n');
    }
    out
}

/// Regenerate every gated artifact by running each module's smoke
/// configuration in-process. The list is the source of truth for what
/// the gate covers — adding a module here (plus its committed twin) is
/// all it takes to put a new experiment under the gate.
pub fn regenerate() -> Vec<Artifact> {
    vec![
        Artifact {
            name: "scale_sweep",
            csv: strip_wall_clock(&scale::to_csv(&scale::run(&scale::ScaleConfig::smoke()))),
        },
        Artifact {
            name: "crash_matrix",
            csv: strip_wall_clock(&crash::to_csv(&crash::run(&crash::CrashConfig::smoke()))),
        },
        Artifact {
            name: "advisor_profiles",
            csv: strip_wall_clock(&advisor::to_csv(&advisor::run(
                &advisor::AdvisorConfig::smoke(),
            ))),
        },
        Artifact {
            name: "range_sweep",
            csv: strip_wall_clock(&range_sweep::to_csv(&range_sweep::run(
                &range_sweep::RangeSweepConfig::smoke(),
            ))),
        },
        Artifact {
            name: "fault_storm",
            csv: strip_wall_clock(&fault_storm::to_csv(&fault_storm::run(
                &fault_storm::FaultStormConfig::smoke(),
            ))),
        },
        Artifact {
            name: "drift_sweep",
            csv: strip_wall_clock(&drift_sweep::to_csv(&drift_sweep::run(
                &drift_sweep::DriftSweepConfig::smoke(),
            ))),
        },
        Artifact {
            name: "obs_debt",
            csv: strip_wall_clock(&obs::to_csv(&obs::run(&obs::ObsConfig::smoke()))),
        },
    ]
}

/// Compare one regenerated artifact against its committed twin. Returns
/// a human-readable failure description, or `None` when fresh.
pub fn diff_against_committed(artifact: &Artifact, committed: Option<&str>) -> Option<String> {
    let Some(committed) = committed else {
        return Some(format!(
            "{} is missing — run with UPDATE_ARTIFACTS=1 and commit it",
            artifact.path()
        ));
    };
    if committed == artifact.csv {
        return None;
    }
    // Point at the first differing line so the failure is actionable
    // without a local rerun.
    let (mut line_no, mut detail) = (0usize, String::from("trailing content differs"));
    for (i, (got, want)) in artifact.csv.lines().zip(committed.lines()).enumerate() {
        if got != want {
            line_no = i + 1;
            detail = format!("regenerated `{got}` vs committed `{want}`");
            break;
        }
    }
    let (got_n, want_n) = (artifact.csv.lines().count(), committed.lines().count());
    if line_no == 0 && got_n != want_n {
        line_no = got_n.min(want_n) + 1;
        detail = format!("regenerated {got_n} lines vs committed {want_n}");
    }
    Some(format!(
        "{} drifted at line {line_no}: {detail}",
        artifact.path()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_exactly_the_wall_clock_columns() {
        let csv = "n,ops_per_sec,ro,p50_ns,p99_ns,mo\n1,99999,2.5,123,456,1.1\n";
        assert_eq!(strip_wall_clock(csv), "n,ro,mo\n1,2.5,1.1\n");
        // Fully deterministic CSVs pass through unchanged.
        let clean = "a,b\n1,2\n";
        assert_eq!(strip_wall_clock(clean), clean);
    }

    #[test]
    fn diff_reports_missing_drifted_and_fresh() {
        let a = Artifact {
            name: "scale_sweep",
            csv: "h\n1\n".into(),
        };
        assert!(diff_against_committed(&a, None)
            .unwrap()
            .contains("missing"));
        assert!(diff_against_committed(&a, Some("h\n2\n"))
            .unwrap()
            .contains("line 2"));
        assert!(diff_against_committed(&a, Some("h\n1\n")).is_none());
    }

    #[test]
    fn smoke_regeneration_is_deterministic_for_the_cheapest_module() {
        // The full regenerate() pass is the binary's job (it runs every
        // smoke suite); here we pin the property the gate relies on —
        // same config ⇒ byte-identical CSV after wall-clock stripping —
        // on the cheapest module.
        let cfg = crash::CrashConfig::smoke();
        let a = strip_wall_clock(&crash::to_csv(&crash::run(&cfg)));
        let b = strip_wall_clock(&crash::to_csv(&crash::run(&cfg)));
        assert_eq!(a, b);
        assert!(a.lines().count() > 1);
    }
}
