//! # rum-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! RUM Conjecture paper. Binaries (one per experiment):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `props_extremes` | §2 Propositions 1–3 |
//! | `table1_complexity` | Table 1 (I/O cost of six access methods) |
//! | `fig1_rum_space` | Figure 1 (methods placed in the RUM triangle) |
//! | `fig2_hierarchy` | Figure 2 (RUM overheads across a memory hierarchy) |
//! | `fig3_tunable` | Figure 3 (tunable methods tracing curves in the space) |
//! | `roadmap_adaptive` | §5 roadmap items (cracking, bitmaps, LSM retuning, filters) |
//! | `scale_sweep` | streaming workloads × sharded execution, n up to 10^7, K up to 8 |
//! | `crash_matrix` | WAL durability cost folded into UO + exact recovery under fault injection |
//! | `advisor` | §5 wizard calibrated from measured profiles (analytic vs measured rankings) |
//! | `baseline_gate` | RUM regression gate against `results/baseline_rum.json` |
//! | `rum_trace` | time-resolved tracing: windowed RO/UO/MO trajectories, latency histograms, event JSONL + folded stacks |
//! | `range_sweep` | REMIX-style sorted-view range acceleration: RO bought with MO/UO, view on/off × bloom/quotient × 3 mixes |
//! | `fault_storm` | corruption resilience: methods × seeded fault profiles × retry policies, differential vs a fault-free twin |
//! | `drift_sweep` | drifting workloads: the online AutoTuner vs every static configuration, priced migrations, bit-identical replay |
//! | `artifact_gate` | CI artifact freshness: regenerates every committed smoke CSV and fails if the checked-in copy drifted |
//! | `rum_top` | live terminal dashboard over the `rum-obs` exporter: per-op-class amortized RUM, debt table, sparklines; `--smoke` validates the exporter + conservation + metrics-on ≡ metrics-off |
//!
//! This library holds the measurement machinery those binaries (and the
//! criterion benches) share, so experiments are reproducible from tests
//! as well.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rum_core::runner::measure_ops;
use rum_core::workload::Op;
use rum_core::{AccessMethod, CostSnapshot, Record, RECORDS_PER_PAGE};

pub mod advisor;
pub mod artifact_gate;
pub mod baseline;
pub mod crash;
pub mod drift_sweep;
pub mod fault_storm;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod obs;
pub mod props;
pub mod range_sweep;
pub mod scale;
pub mod table1;
pub mod trace;

/// Sorted unique records with even keys `0, 2, ..., 2(n-1)` and
/// deterministic payloads. Even keys leave odd gaps so fresh inserts can
/// land at *random positions* inside the key range — without gaps, every
/// insert would be a best-case append and the sorted column's O(N/B/2)
/// shifting cost (Table 1) would never show.
pub fn dataset(n: usize) -> Vec<Record> {
    (0..n as u64)
        .map(|k| Record::new(2 * k, rum_core::workload::value_for(2 * k, 0)))
        .collect()
}

/// Per-operation measurement of one op kind against a loaded method.
#[derive(Clone, Copy, Debug)]
pub struct OpCost {
    /// Mean page accesses (reads + writes) per operation.
    pub pages: f64,
    /// Mean physical bytes touched per operation.
    pub bytes: f64,
    /// Mean simulated nanoseconds per operation.
    pub sim_ns: f64,
}

impl OpCost {
    fn from_delta(d: &CostSnapshot, ops: usize) -> OpCost {
        let n = ops.max(1) as f64;
        OpCost {
            pages: d.page_accesses() as f64 / n,
            bytes: (d.total_read_bytes() + d.total_write_bytes()) as f64 / n,
            sim_ns: d.sim_time_ns as f64 / n,
        }
    }
}

/// Measure the average cost of `count` random point queries over live
/// keys `0..n`.
pub fn point_query_cost(method: &mut dyn AccessMethod, n: usize, count: usize) -> OpCost {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let ops: Vec<Op> = (0..count)
        .map(|_| Op::Get(2 * rng.gen_range(0..n as u64)))
        .collect();
    let (_, d) = measure_ops(method, &ops).expect("point queries");
    OpCost::from_delta(&d, count)
}

/// Measure `count` range queries of `m` records each.
pub fn range_query_cost(method: &mut dyn AccessMethod, n: usize, m: usize, count: usize) -> OpCost {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let ops: Vec<Op> = (0..count)
        .map(|_| {
            let lo = 2 * rng.gen_range(0..(n.saturating_sub(m).max(1)) as u64);
            // Even keys: a span of 2(m-1) covers exactly m records.
            Op::Range(lo, lo + 2 * (m as u64 - 1))
        })
        .collect();
    let (_, d) = measure_ops(method, &ops).expect("range queries");
    OpCost::from_delta(&d, count)
}

/// Measure `count` inserts of fresh odd keys at random positions inside
/// the loaded (even-keyed) range — the paper's average-position insert.
pub fn insert_cost(method: &mut dyn AccessMethod, n: usize, count: usize) -> OpCost {
    let mut rng = StdRng::seed_from_u64(0xADD);
    let mut used = std::collections::HashSet::new();
    // Sample without replacement; widen the domain when the sample count
    // approaches the number of odd gaps (needed for amortized methods
    // that are measured over many inserts).
    let domain = (n as u64).max(4 * count as u64);
    let ops: Vec<Op> = (0..count)
        .map(|_| {
            let mut j = rng.gen_range(0..domain);
            while !used.insert(j) {
                j = rng.gen_range(0..domain);
            }
            let k = 2 * j + 1;
            Op::Insert(k, rum_core::workload::value_for(k, 1))
        })
        .collect();
    let (_, d) = measure_ops(method, &ops).expect("inserts");
    OpCost::from_delta(&d, count)
}

/// Measure `count` in-place updates of existing keys.
pub fn update_cost(method: &mut dyn AccessMethod, n: usize, count: usize) -> OpCost {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let ops: Vec<Op> = (0..count)
        .map(|_| {
            let k = 2 * rng.gen_range(0..n as u64);
            Op::Update(k, rum_core::workload::value_for(k, 2))
        })
        .collect();
    let (_, d) = measure_ops(method, &ops).expect("updates");
    OpCost::from_delta(&d, count)
}

/// Bulk-load `records` and report the construction cost and footprint:
/// `(pages_written, physical_pages, space_amplification)`.
pub fn load_cost(method: &mut dyn AccessMethod, records: &[Record]) -> (u64, f64, f64) {
    let before = method.tracker().snapshot();
    method.bulk_load(records).expect("bulk load");
    let d = method.tracker().since(&before);
    let profile = method.space_profile();
    let physical_pages = profile.total_bytes() as f64 / rum_core::PAGE_SIZE as f64;
    (d.page_writes, physical_pages, profile.space_amplification())
}

/// `log_B(n)` — the B-tree height scale of Table 1.
pub fn log_b(n: f64) -> f64 {
    n.max(2.0).ln() / (RECORDS_PER_PAGE as f64).ln()
}

/// Fixed-width cell formatting for experiment tables.
pub fn fmt_cell(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:>10.0}")
    } else if x >= 10.0 {
        format!("{x:>10.1}")
    } else {
        format!("{x:>10.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rum_btree::BTree;

    #[test]
    fn op_costs_measure_something() {
        let mut t = BTree::new();
        let data = dataset(10_000);
        let (pages_written, physical, mo) = load_cost(&mut t, &data);
        assert!(pages_written > 0);
        assert!(physical > 39.0); // 10k records = ~40 pages minimum
        assert!(mo >= 1.0);
        let pq = point_query_cost(&mut t, 10_000, 32);
        assert!(pq.pages >= 1.0);
        let rq = range_query_cost(&mut t, 10_000, 256, 8);
        assert!(rq.pages > pq.pages);
        let ins = insert_cost(&mut t, 10_000, 16);
        assert!(ins.pages >= 1.0);
        let upd = update_cost(&mut t, 10_000, 16);
        assert!(upd.pages >= 1.0);
    }

    #[test]
    fn dataset_is_sorted_unique() {
        let d = dataset(1000);
        assert!(d.windows(2).all(|w| w[0].key < w[1].key));
    }
}
