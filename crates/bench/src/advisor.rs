//! The calibrated §5 wizard experiment: build empirical method profiles
//! from a measurement grid, rank families from the measurements, and
//! compare against the analytic Table 1 ranking.
//!
//! The grid crosses operation-mix presets × key distributions × scales;
//! every cell runs the full standard suite through
//! [`run_suite_stream`] and ingests the resulting [`RumReport`]s into a
//! [`ProfileStore`]. For each canonical mix the experiment then asks the
//! analytic wizard and the measured advisor the same unconstrained
//! question and reports:
//!
//! * both rankings side by side (with per-family analytic-vs-measured
//!   deviation ratios),
//! * whether the two agree on the **top feasible family** — where "agree"
//!   means identical, or the analytic pick's *measured* cost is within a
//!   declared tolerance of the measured winner's cost (near-ties between
//!   families are expected; the check exists to catch the model ranking a
//!   genuinely expensive family first),
//! * when they disagree beyond tolerance: the Table 1 term of the analytic
//!   pick that is most off ([`Deviation`]), i.e. *why* the model misranks.

use rum::core::advisor::{dist_label, Deviation, MeasuredRanking, ProfileStore};
use rum::core::wizard::{recommend, Constraints, Environment, Family, Recommendation};
use rum::prelude::*;

/// Grid + comparison configuration.
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    /// Initial live-set sizes (the scale axis of the profiles).
    pub scales: Vec<usize>,
    /// Operations per cell = `ops_factor × scale`.
    pub ops_factor: usize,
    /// Mix presets measured *and* compared (the canonical mixes).
    pub mixes: Vec<(&'static str, OpMix)>,
    /// Key distributions measured.
    pub dists: Vec<(&'static str, KeyDist)>,
    /// Suite worker threads per cell.
    pub threads: usize,
    /// Agreement tolerance: the analytic top family's measured cost may
    /// exceed the measured winner's cost by at most this factor.
    pub tolerance: f64,
    pub seed: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            scales: vec![2_000, 8_000, 32_000],
            ops_factor: 2,
            mixes: canonical_mixes().to_vec(),
            dists: vec![
                ("uniform", KeyDist::Uniform),
                ("zipf", KeyDist::Zipf { theta: 0.99 }),
            ],
            threads: rum::core::runner::default_threads(),
            tolerance: AGREEMENT_TOLERANCE,
            seed: 0x0AD7_150E,
        }
    }
}

impl AdvisorConfig {
    /// The reduced grid the CI smoke job runs: two scales, uniform keys.
    pub fn smoke() -> Self {
        AdvisorConfig {
            scales: vec![2_000, 8_000],
            dists: vec![("uniform", KeyDist::Uniform)],
            ..Default::default()
        }
    }
}

/// The declared agreement tolerance (see [`AdvisorConfig::tolerance`]).
///
/// Analytic Table 1 costs are asymptotic page counts; measured costs carry
/// constants the model deliberately drops (bloom filters, cache-resident
/// fences, byte- vs page-granular traffic). A factor-of-two corridor
/// accepts those constants while still failing when the model promotes a
/// family whose measured cost is a multiple of the real winner's.
pub const AGREEMENT_TOLERANCE: f64 = 2.0;

/// The five canonical operation mixes of the experiments.
pub fn canonical_mixes() -> [(&'static str, OpMix); 5] {
    [
        ("read-heavy", OpMix::READ_HEAVY),
        ("write-heavy", OpMix::WRITE_HEAVY),
        ("balanced", OpMix::BALANCED),
        ("scan-heavy", OpMix::SCAN_HEAVY),
        ("range-heavy", OpMix::RANGE_HEAVY),
    ]
}

/// Analytic-vs-measured comparison for one canonical mix (unconstrained).
#[derive(Clone, Debug)]
pub struct MixVerdict {
    pub mix_name: &'static str,
    pub mix: OpMix,
    pub analytic: Vec<Recommendation>,
    pub measured: MeasuredRanking,
    pub top_analytic: Family,
    pub top_measured: Family,
    /// Measured cost of the analytic top ÷ measured cost of the measured
    /// top (1.0 = perfect agreement).
    pub cost_ratio: f64,
    pub agree: bool,
    /// When disagreeing: the analytic pick's most-off Table 1 term.
    pub top_deviation: Option<Deviation>,
}

/// The full experiment output.
#[derive(Clone, Debug)]
pub struct AdvisorRun {
    pub store: ProfileStore,
    pub verdicts: Vec<MixVerdict>,
    /// Environment the rankings were evaluated at (n = largest grid scale).
    pub env: Environment,
    pub tolerance: f64,
}

/// Build the profile store from the measurement grid, then compare
/// rankings for every configured mix.
pub fn run(config: &AdvisorConfig) -> AdvisorRun {
    let mut store = ProfileStore::new();
    for &scale in &config.scales {
        for (di, (dname, dist)) in config.dists.iter().enumerate() {
            for (mi, (mname, mix)) in config.mixes.iter().enumerate() {
                let spec = WorkloadSpec {
                    initial_records: scale,
                    operations: scale * config.ops_factor,
                    mix: *mix,
                    dist: *dist,
                    seed: config
                        .seed
                        .wrapping_add(scale as u64)
                        .wrapping_add((di as u64) << 40)
                        .wrapping_add((mi as u64) << 48),
                    ..Default::default()
                };
                eprintln!("[advisor] n={scale} dist={dname} mix={mname} ...");
                let reports = run_suite_stream(&mut rum::standard_suite(), &spec, config.threads)
                    .unwrap_or_else(|e| panic!("grid cell failed: {e}"));
                store.ingest(&spec, &reports);
            }
        }
    }

    let env = Environment {
        n: config.scales.iter().copied().max().unwrap_or(1 << 14),
        ..Default::default()
    };
    let verdicts = config
        .mixes
        .iter()
        .map(|&(name, mix)| verdict(&store, name, &mix, &env, config.tolerance))
        .collect();
    AdvisorRun {
        store,
        verdicts,
        env,
        tolerance: config.tolerance,
    }
}

/// Compare the analytic and measured rankings for one unconstrained mix.
pub fn verdict(
    store: &ProfileStore,
    mix_name: &'static str,
    mix: &OpMix,
    env: &Environment,
    tolerance: f64,
) -> MixVerdict {
    let cons = Constraints::default();
    let analytic = recommend(mix, env, &cons);
    let measured = store.recommend_measured(mix, env, &cons);
    let top_analytic = analytic[0].family;
    let top_measured = measured.recs[0].family;
    let measured_cost = |family: Family| {
        measured
            .recs
            .iter()
            .find(|r| r.family == family)
            .map(|r| r.expected_cost)
            .unwrap_or(f64::INFINITY)
    };
    let best = measured_cost(top_measured);
    let cost_ratio = if best > 0.0 {
        measured_cost(top_analytic) / best
    } else {
        1.0
    };
    let agree = top_analytic == top_measured || cost_ratio <= tolerance;
    let top_deviation = measured
        .recs
        .iter()
        .find(|r| r.family == top_analytic)
        .and_then(|r| r.deviation.clone());
    MixVerdict {
        mix_name,
        mix: *mix,
        analytic,
        measured,
        top_analytic,
        top_measured,
        cost_ratio,
        agree,
        top_deviation,
    }
}

/// Render the side-by-side ranking tables and the calibration summary.
pub fn render(run: &AdvisorRun) -> String {
    let mut out =
        String::from("=== The RUM wizard, calibrated: analytic vs measured rankings ===\n");
    out.push_str(&format!(
        "environment: N = {}, profiles from {} measured points across {} methods\n",
        run.env.n,
        run.store.point_count(),
        run.store.len(),
    ));
    for v in &run.verdicts {
        out.push_str(&format!(
            "\n--- mix {} (get {:.2} insert {:.2} update {:.2} delete {:.2} range {:.2}) ---\n",
            v.mix_name, v.mix.get, v.mix.insert, v.mix.update, v.mix.delete, v.mix.range
        ));
        out.push_str(&format!(
            "{:<4} {:<18} {:>10}   {:<18} {:>10} {:>7}\n",
            "rank", "analytic", "pages/op", "measured", "pages/op", "calib"
        ));
        for i in 0..v.analytic.len() {
            let a = &v.analytic[i];
            let m = &v.measured.recs[i];
            out.push_str(&format!(
                "{:<4} {:<18} {:>10.3}   {:<18} {:>10.3} {:>7}\n",
                i + 1,
                a.family.name(),
                a.expected_cost,
                m.family.name(),
                m.expected_cost,
                if m.calibrated { "yes" } else { "NO" },
            ));
        }
        out.push_str(&format!(
            "top: analytic = {}, measured = {}, measured-cost ratio {:.2} -> {}\n",
            v.top_analytic.name(),
            v.top_measured.name(),
            v.cost_ratio,
            if v.agree { "AGREE" } else { "DISAGREE" },
        ));
        out.push_str("Table 1 deviations (measured / analytic, most-off term per family):\n");
        for rec in &v.measured.recs {
            if let Some(dev) = &rec.deviation {
                out.push_str(&format!(
                    "  {:<18} {:>7.2}x off on the {} term [{}]: model {:.2}, measured {:.2}\n",
                    rec.family.name(),
                    dev.ratio,
                    dev.metric,
                    dev.term,
                    dev.analytic,
                    dev.measured,
                ));
            }
        }
    }
    out
}

/// The experiment's claims, checked. Any `false` fails the smoke job.
pub fn checks(run: &AdvisorRun) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for v in &run.verdicts {
        out.push((
            format!(
                "mix {}: every family calibrated from measurements",
                v.mix_name
            ),
            v.measured.calibrated,
        ));
        let detail = if v.agree {
            String::new()
        } else {
            match &v.top_deviation {
                Some(dev) => format!(
                    " — analytic top {} is {:.1}x costlier than measured top {}; \
                     most-off Table 1 term: {} [{}] (model {:.2}, measured {:.2})",
                    v.top_analytic.name(),
                    v.cost_ratio,
                    v.top_measured.name(),
                    dev.metric,
                    dev.term,
                    dev.analytic,
                    dev.measured,
                ),
                None => format!(
                    " — analytic top {} is {:.1}x costlier than measured top {}",
                    v.top_analytic.name(),
                    v.cost_ratio,
                    v.top_measured.name(),
                ),
            }
        };
        out.push((
            format!(
                "mix {}: analytic and measured agree on the top family within {:.1}x{}",
                v.mix_name, run.tolerance, detail
            ),
            v.agree,
        ));
    }
    // Persistence: the CSV format reconstructs the store exactly.
    let roundtrip = ProfileStore::from_csv(&run.store.to_csv());
    out.push((
        "profile store CSV round-trips exactly".to_string(),
        roundtrip.as_ref().map(|s| s == &run.store).unwrap_or(false),
    ));
    // Determinism: re-ranking from the same store is bit-identical.
    let deterministic = run.verdicts.iter().all(|v| {
        let again = run
            .store
            .recommend_measured(&v.mix, &run.env, &Constraints::default());
        again.recs.len() == v.measured.recs.len()
            && again.recs.iter().zip(&v.measured.recs).all(|(a, b)| {
                a.family == b.family
                    && a.expected_cost.to_bits() == b.expected_cost.to_bits()
                    && a.feasible == b.feasible
            })
    });
    out.push((
        "recommend_measured is deterministic over the same store".to_string(),
        deterministic,
    ));
    out
}

/// CSV of every measured profile point (the persistence format of
/// [`ProfileStore`]).
pub fn to_csv(run: &AdvisorRun) -> String {
    run.store.to_csv()
}

/// Label helper shared with the binary's output.
pub fn grid_summary(config: &AdvisorConfig) -> String {
    format!(
        "grid: scales {:?} × dists {:?} × mixes {:?}, {} ops/record, seed {:#x}",
        config.scales,
        config.dists.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        config.mixes.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        config.ops_factor,
        config.seed,
    )
}

/// Re-exported so the binary can print which distributions were measured.
pub fn dist_name(dist: &KeyDist) -> String {
    dist_label(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_calibrates_all_families_and_roundtrips() {
        let config = AdvisorConfig {
            scales: vec![500, 1500],
            ops_factor: 2,
            mixes: vec![("balanced", OpMix::BALANCED)],
            dists: vec![("uniform", KeyDist::Uniform)],
            threads: 1,
            tolerance: AGREEMENT_TOLERANCE,
            seed: 42,
        };
        let run = super::run(&config);
        assert_eq!(run.verdicts.len(), 1);
        let v = &run.verdicts[0];
        assert!(v.measured.calibrated, "all 7 families must be measured");
        // 21 suite methods × 2 scales land in the store.
        assert!(run.store.len() >= 19, "store has {}", run.store.len());
        for (desc, ok) in checks(&run) {
            if desc.contains("agree on the top family") {
                continue; // agreement at toy scale is checked by the smoke bin
            }
            assert!(ok, "failed check: {desc}");
        }
        let rendered = render(&run);
        assert!(rendered.contains("analytic"));
        assert!(rendered.contains("Table 1 deviations"));
    }
}
