//! RUM baseline regression gate.
//!
//! Re-measures the standard suite's smoke-scale RO/UO/MO and compares
//! against the committed baseline (`results/baseline_rum.json`). The
//! amplifications are pure counted-byte ratios, fully deterministic given
//! the workload seed — independent of thread count, wall clock, and host —
//! so the gate's tolerance can be *tight*: any drift means an access
//! method's physical traffic changed, which is exactly what must never
//! happen silently.
//!
//! The baseline file is serde-free JSON written by [`Baseline::to_json`]
//! and parsed by [`Baseline::from_json`] (a minimal recursive-descent
//! parser for the flat `{spec, tolerance, methods: {name: {ro,uo,mo}}}`
//! shape). Floats are rendered in Rust's shortest-roundtrip `Display`
//! form, so write → parse is exact.
//!
//! Regenerate with `UPDATE_BASELINE=1 cargo run --release -p rum-bench
//! --bin baseline_gate` after an intentional cost-model change.

use std::collections::BTreeMap;

use rum::prelude::*;

/// Relative drift above which the gate fails. The measurement is
/// deterministic, so this only needs to absorb float-formatting round
/// trips — which are exact — hence effectively "any change fails".
pub const DRIFT_TOLERANCE: f64 = 1e-9;

/// The workload every baseline measurement runs: small enough for CI,
/// large enough that every suite method flushes/compacts/splits.
pub fn smoke_spec() -> WorkloadSpec {
    WorkloadSpec {
        initial_records: 2_000,
        operations: 6_000,
        mix: OpMix::BALANCED,
        seed: 0xBA5E_11FE,
        ..Default::default()
    }
}

/// Measured (RO, UO, MO) per suite method.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RumTriple {
    pub ro: f64,
    pub uo: f64,
    pub mo: f64,
}

/// The committed baseline: a description of the spec it was measured
/// under, plus the per-method triples.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    pub spec: String,
    pub methods: BTreeMap<String, RumTriple>,
}

/// Describe a workload spec compactly (stored in the baseline for humans;
/// the measurement always uses [`smoke_spec`]).
pub fn spec_label(spec: &WorkloadSpec) -> String {
    format!(
        "balanced mix, n={}, ops={}, seed={:#x}",
        spec.initial_records, spec.operations, spec.seed
    )
}

/// Measure the current tree's baseline triples.
pub fn measure(threads: usize) -> Baseline {
    let spec = smoke_spec();
    let reports = run_suite_stream(&mut rum::standard_suite(), &spec, threads)
        .unwrap_or_else(|e| panic!("baseline suite run failed: {e}"));
    let methods = reports
        .into_iter()
        .map(|r| {
            (
                r.method,
                RumTriple {
                    ro: r.ro,
                    uo: r.uo,
                    mo: r.mo,
                },
            )
        })
        .collect();
    Baseline {
        spec: spec_label(&spec),
        methods,
    }
}

/// One drift finding from [`compare`].
#[derive(Clone, Debug)]
pub struct Drift {
    pub method: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub measured: f64,
    pub rel: f64,
}

/// Compare a fresh measurement against the committed baseline. Returns
/// every drift beyond `tol` (relative), plus methods added/removed — an
/// empty vec means the gate passes.
pub fn compare(baseline: &Baseline, current: &Baseline, tol: f64) -> Vec<Drift> {
    let mut drifts = Vec::new();
    let rel = |old: f64, new: f64| (new - old).abs() / old.abs().max(1e-12);
    for (method, b) in &baseline.methods {
        match current.methods.get(method) {
            None => drifts.push(Drift {
                method: method.clone(),
                metric: "missing",
                baseline: 0.0,
                measured: 0.0,
                rel: f64::INFINITY,
            }),
            Some(c) => {
                for (metric, old, new) in
                    [("RO", b.ro, c.ro), ("UO", b.uo, c.uo), ("MO", b.mo, c.mo)]
                {
                    let r = rel(old, new);
                    if r > tol {
                        drifts.push(Drift {
                            method: method.clone(),
                            metric,
                            baseline: old,
                            measured: new,
                            rel: r,
                        });
                    }
                }
            }
        }
    }
    for method in current.methods.keys() {
        if !baseline.methods.contains_key(method) {
            drifts.push(Drift {
                method: method.clone(),
                metric: "unbaselined",
                baseline: 0.0,
                measured: 0.0,
                rel: f64::INFINITY,
            });
        }
    }
    drifts
}

impl Baseline {
    /// Render as JSON (stable key order, shortest-roundtrip floats).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"spec\": {},\n", json_string(&self.spec)));
        out.push_str(&format!("  \"tolerance\": {},\n", DRIFT_TOLERANCE));
        out.push_str("  \"methods\": {\n");
        let last = self.methods.len().saturating_sub(1);
        for (i, (method, t)) in self.methods.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {{ \"ro\": {}, \"uo\": {}, \"mo\": {} }}{}\n",
                json_string(method),
                t.ro,
                t.uo,
                t.mo,
                if i == last { "" } else { "," }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse [`Baseline::to_json`] output (or any JSON of that shape).
    pub fn from_json(text: &str) -> Result<Baseline> {
        let value = json::parse(text)?;
        let root = value.as_object("top level")?;
        let spec = root
            .get("spec")
            .ok_or_else(|| RumError::Corrupt("baseline JSON missing \"spec\"".into()))?
            .as_string("spec")?
            .to_string();
        let methods_obj = root
            .get("methods")
            .ok_or_else(|| RumError::Corrupt("baseline JSON missing \"methods\"".into()))?
            .as_object("methods")?;
        let mut methods = BTreeMap::new();
        for (name, entry) in methods_obj {
            let entry = entry.as_object(name)?;
            let num = |key: &str| -> Result<f64> {
                entry
                    .get(key)
                    .ok_or_else(|| {
                        RumError::Corrupt(format!("baseline method {name:?} missing {key:?}"))
                    })?
                    .as_number(key)
            };
            methods.insert(
                name.clone(),
                RumTriple {
                    ro: num("ro")?,
                    uo: num("uo")?,
                    mo: num("mo")?,
                },
            );
        }
        Ok(Baseline { spec, methods })
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value model + recursive-descent parser — just enough for
/// the baseline file, in-tree because the workspace builds offline with no
/// serde.
pub mod json {
    use rum::prelude::{Result, RumError};
    use std::collections::BTreeMap;

    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>> {
            match self {
                Value::Object(map) => Ok(map),
                other => Err(RumError::Corrupt(format!(
                    "JSON: expected {what} to be an object, got {other:?}"
                ))),
            }
        }

        pub fn as_string(&self, what: &str) -> Result<&str> {
            match self {
                Value::String(s) => Ok(s),
                other => Err(RumError::Corrupt(format!(
                    "JSON: expected {what} to be a string, got {other:?}"
                ))),
            }
        }

        pub fn as_number(&self, what: &str) -> Result<f64> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(RumError::Corrupt(format!(
                    "JSON: expected {what} to be a number, got {other:?}"
                ))),
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing garbage after JSON document"));
        }
        Ok(value)
    }

    fn err(pos: usize, msg: &str) -> RumError {
        RumError::Corrupt(format!("JSON parse error at byte {pos}: {msg}"))
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<()> {
        if *pos < bytes.len() && bytes[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(err(*pos, &format!("expected {:?}", c as char)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(err(*pos, "unexpected end of input")),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Result<Value> {
        if bytes[*pos..].starts_with(lit) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(err(*pos, "invalid literal"))
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value> {
        expect(bytes, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            map.insert(key, value);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(err(*pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(*pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| err(*pos, "non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "invalid codepoint"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(err(*pos, "invalid escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                    // input came from &str).
                    let s = &bytes[*pos..];
                    let text = std::str::from_utf8(s).map_err(|_| err(*pos, "invalid utf8"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| err(start, &format!("invalid number {text:?}")))
    }
}

/// Render the gate's outcome for humans.
pub fn render(baseline: &Baseline, current: &Baseline, drifts: &[Drift]) -> String {
    let mut out = String::from("=== RUM baseline gate ===\n");
    out.push_str(&format!("baseline spec: {}\n", baseline.spec));
    out.push_str(&format!(
        "{:<28} {:>14} {:>14} {:>14}\n",
        "method", "RO", "UO", "MO"
    ));
    for (method, t) in &current.methods {
        out.push_str(&format!(
            "{:<28} {:>14.6} {:>14.6} {:>14.6}\n",
            method, t.ro, t.uo, t.mo
        ));
    }
    if drifts.is_empty() {
        out.push_str(&format!(
            "\nall {} methods within {:.0e} of the committed baseline\n",
            current.methods.len(),
            DRIFT_TOLERANCE
        ));
    } else {
        out.push_str("\nDRIFT DETECTED:\n");
        for d in drifts {
            match d.metric {
                "missing" => out.push_str(&format!(
                    "  {}: in the baseline but not measured\n",
                    d.method
                )),
                "unbaselined" => out.push_str(&format!(
                    "  {}: measured but missing from the baseline (run UPDATE_BASELINE=1)\n",
                    d.method
                )),
                _ => out.push_str(&format!(
                    "  {} {}: baseline {} -> measured {} (rel {:.3e})\n",
                    d.method, d.metric, d.baseline, d.measured, d.rel
                )),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut methods = BTreeMap::new();
        methods.insert(
            "b+tree".to_string(),
            RumTriple {
                ro: 40.64,
                uo: 257.676,
                mo: 1.0 / 3.0,
            },
        );
        methods.insert(
            "weird \"name\"\n".to_string(),
            RumTriple {
                ro: 1e-17,
                uo: f64::MAX,
                mo: std::f64::consts::E,
            },
        );
        Baseline {
            spec: "balanced mix, n=2000".to_string(),
            methods,
        }
    }

    #[test]
    fn json_roundtrips_exactly() {
        let b = sample();
        let text = b.to_json();
        let parsed = Baseline::from_json(&text).unwrap();
        assert_eq!(b, parsed);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"spec\": }",
            "{\"spec\": \"x\"} trailing",
            "{\"spec\": \"x\", \"methods\": [1,2,]}",
            "{\"spec\": \"unterminated",
            "nope",
        ] {
            assert!(Baseline::from_json(bad).is_err(), "accepted {bad:?}");
        }
        // Structurally valid JSON of the wrong shape is also rejected.
        assert!(Baseline::from_json("{\"methods\": {}}").is_err());
        assert!(
            Baseline::from_json("{\"spec\": \"x\", \"methods\": {\"m\": {\"ro\": 1}}}").is_err()
        );
    }

    #[test]
    fn compare_flags_drift_and_membership_changes() {
        let b = sample();
        assert!(compare(&b, &b, DRIFT_TOLERANCE).is_empty());
        let mut drifted = b.clone();
        drifted.methods.get_mut("b+tree").unwrap().uo *= 1.001;
        let drifts = compare(&b, &drifted, DRIFT_TOLERANCE);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "UO");
        assert!(drifts[0].rel > 1e-4);
        // Below-tolerance jitter passes.
        let mut tiny = b.clone();
        tiny.methods.get_mut("b+tree").unwrap().ro *= 1.0 + 1e-13;
        assert!(compare(&b, &tiny, DRIFT_TOLERANCE).is_empty());
        // Added / removed methods fail in both directions.
        let mut extra = b.clone();
        extra.methods.insert(
            "new-method".into(),
            RumTriple {
                ro: 1.0,
                uo: 1.0,
                mo: 1.0,
            },
        );
        assert_eq!(compare(&b, &extra, DRIFT_TOLERANCE).len(), 1);
        assert_eq!(compare(&extra, &b, DRIFT_TOLERANCE).len(), 1);
    }

    #[test]
    fn measurement_is_deterministic_across_thread_counts() {
        let a = measure(1);
        let b = measure(2);
        assert_eq!(a, b, "RO/UO/MO must not depend on worker threads");
        assert!(
            a.methods.len() >= 19,
            "suite has {} methods",
            a.methods.len()
        );
        for (method, t) in &a.methods {
            assert!(
                t.ro.is_finite() && t.uo.is_finite() && t.mo >= 1.0,
                "{method}"
            );
        }
    }
}
