//! §2 of the paper: the three propositions about overhead-minimal designs.
//!
//! * **Prop 1** `min(RO) = 1.0 ⇒ UO = 2.0 ∧ MO → ∞` (direct-address array)
//! * **Prop 2** `min(UO) = 1.0 ⇒ RO → ∞ ∧ MO → ∞` (append-only log)
//! * **Prop 3** `min(MO) = 1.0 ⇒ RO = N ∧ UO = 1.0` (dense array)

use rum_columns::{AppendLog, DenseArray, DirectAddressArray};
use rum_core::runner::{default_threads, parallel_map};
use rum_core::{AccessMethod, Record, RECORD_SIZE};

/// One measured data point of a proposition experiment.
#[derive(Clone, Debug)]
pub struct PropPoint {
    /// Sweep parameter (N, update rounds, ...).
    pub x: u64,
    pub ro: f64,
    pub uo: f64,
    pub mo: f64,
}

/// Proposition 1: direct addressing. Sweeps the max key (the universe) at
/// a fixed population, measuring RO of hits, UO of relocations, and MO.
pub fn proposition1(universe_sweep: &[u64]) -> Vec<PropPoint> {
    let population = 256u64;
    parallel_map(universe_sweep.to_vec(), default_threads(), |universe| {
        let mut a = DirectAddressArray::new();
        // `population` keys spread over [0, universe).
        let step = (universe / population).max(1);
        for i in 0..population {
            a.insert(i * step, i).unwrap();
        }
        // RO: read every key once.
        a.tracker().reset();
        for i in 0..population {
            a.get(i * step).unwrap();
        }
        let ro = a.tracker().snapshot().read_amplification();
        // UO: relocate each key by one slot (the paper's "change a
        // value": empty old block + write new block). Highest first so
        // the destination slot is always free even at step = 1.
        a.tracker().reset();
        for i in (0..population).rev() {
            a.relocate(i * step, i * step + 1).unwrap();
        }
        let uo = a.tracker().snapshot().write_amplification();
        let mo = a.space_profile().space_amplification();
        PropPoint {
            x: universe,
            ro,
            uo,
            mo,
        }
    })
}

/// Proposition 2: the append log. Fixed live population; each round
/// appends one more version of every key. UO stays 1.0 while RO and MO
/// climb without bound.
pub fn proposition2(rounds_sweep: &[u64]) -> Vec<PropPoint> {
    let population = 2048u64;
    parallel_map(rounds_sweep.to_vec(), default_threads(), |rounds| {
        let mut log = AppendLog::new();
        let initial: Vec<Record> = (0..population).map(|k| Record::new(k, 0)).collect();
        log.bulk_load(&initial).unwrap();
        log.tracker().reset();
        // Update every key except the probe keys, so their newest (and
        // only) version stays buried at the head of the log.
        for r in 1..=rounds {
            for k in 16..population {
                log.update(k, r).unwrap();
            }
        }
        let uo = log.tracker().snapshot().write_amplification();
        // RO: point-read the never-updated keys — the backward scan
        // must walk the entire accumulated history to reach them.
        log.tracker().reset();
        for k in 0..16 {
            log.get(k).unwrap();
        }
        let ro = log.tracker().snapshot().read_amplification();
        let mo = log.space_profile().space_amplification();
        PropPoint {
            x: rounds,
            ro,
            uo,
            mo,
        }
    })
}

/// Proposition 3: the dense array. Sweeps N; RO grows linearly, UO and MO
/// pin to 1.0.
pub fn proposition3(n_sweep: &[u64]) -> Vec<PropPoint> {
    parallel_map(n_sweep.to_vec(), default_threads(), |n| {
        let mut a = DenseArray::new();
        let recs: Vec<Record> = (0..n).map(|k| Record::new(k, 0)).collect();
        a.bulk_load(&recs).unwrap();
        // RO: in-domain misses force full scans (worst case = N).
        a.tracker().reset();
        for probe in 0..16u64 {
            a.get(n + probe + 1).unwrap();
        }
        let scanned_per_probe =
            a.tracker().snapshot().total_read_bytes() as f64 / 16.0 / RECORD_SIZE as f64;
        // UO: in-place updates.
        a.tracker().reset();
        for k in (0..n).step_by((n / 64).max(1) as usize) {
            a.update(k, 1).unwrap();
        }
        let uo = a.tracker().snapshot().write_amplification();
        let mo = a.space_profile().space_amplification();
        PropPoint {
            x: n,
            ro: scanned_per_probe, // in units of records = "RO = N"
            uo,
            mo,
        }
    })
}

/// Render the full §2 report.
pub fn report() -> String {
    let mut out = String::new();
    out.push_str("=== Proposition 1: min(RO)=1.0 => UO=2.0 and unbounded MO ===\n");
    out.push_str("  (direct-address array; 256 live keys, universe swept)\n");
    out.push_str(&format!(
        "  {:>12} {:>8} {:>8} {:>10}\n",
        "universe", "RO", "UO", "MO"
    ));
    for p in proposition1(&[256, 1024, 4096, 16384, 65536, 262_144]) {
        out.push_str(&format!(
            "  {:>12} {:>8.3} {:>8.3} {:>10.1}\n",
            p.x, p.ro, p.uo, p.mo
        ));
    }
    out.push_str("\n=== Proposition 2: min(UO)=1.0 => RO and MO grow forever ===\n");
    out.push_str("  (append-only log; 2048 live keys, update rounds swept)\n");
    out.push_str(&format!(
        "  {:>12} {:>12} {:>8} {:>10}\n",
        "upd rounds", "RO", "UO", "MO"
    ));
    for p in proposition2(&[0, 2, 4, 8, 16, 32]) {
        out.push_str(&format!(
            "  {:>12} {:>12.1} {:>8.3} {:>10.1}\n",
            p.x, p.ro, p.uo, p.mo
        ));
    }
    out.push_str("\n=== Proposition 3: min(MO)=1.0 => RO=N and UO=1.0 ===\n");
    out.push_str("  (dense array; N swept; RO reported in records scanned per miss)\n");
    out.push_str(&format!(
        "  {:>12} {:>12} {:>8} {:>10}\n",
        "N", "RO(recs)", "UO", "MO"
    ));
    for p in proposition3(&[1 << 10, 1 << 12, 1 << 14, 1 << 16]) {
        out.push_str(&format!(
            "  {:>12} {:>12.0} {:>8.3} {:>10.3}\n",
            p.x, p.ro, p.uo, p.mo
        ));
    }
    out
}

/// Machine-checkable verdicts for the three propositions; used by the
/// binary (for PASS/FAIL lines) and by the integration tests.
pub fn verdicts() -> Vec<(String, bool)> {
    let mut v = Vec::new();
    let p1 = proposition1(&[256, 65_536]);
    v.push((
        "P1: RO is exactly 1.0".into(),
        p1.iter().all(|p| (p.ro - 1.0).abs() < 1e-9),
    ));
    v.push((
        "P1: UO is exactly 2.0 for relocations".into(),
        p1.iter().all(|p| (p.uo - 2.0).abs() < 1e-9),
    ));
    v.push((
        "P1: MO grows with the universe".into(),
        p1[1].mo > 100.0 * p1[0].mo,
    ));
    let p2 = proposition2(&[0, 16]);
    v.push(("P2: UO stays ~1.0 under appends".into(), p2[1].uo < 1.01));
    v.push((
        "P2: RO grows with history".into(),
        p2[1].ro > 4.0 * p2[0].ro.max(1.0),
    ));
    v.push((
        "P2: MO grows with history".into(),
        p2[1].mo > 4.0 * p2[0].mo,
    ));
    let p3 = proposition3(&[1 << 10, 1 << 16]);
    v.push((
        "P3: MO is exactly 1.0".into(),
        p3.iter().all(|p| (p.mo - 1.0).abs() < 1e-9),
    ));
    v.push((
        "P3: UO is exactly 1.0".into(),
        p3.iter().all(|p| (p.uo - 1.0).abs() < 1e-9),
    ));
    v.push((
        "P3: RO scales linearly with N".into(),
        (p3[1].ro / p3[0].ro - 64.0).abs() < 2.0,
    ));
    v
}
