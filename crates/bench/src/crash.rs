//! Crash matrix: deterministic crash points × workloads, over the
//! WAL-wrapped access methods.
//!
//! Two questions, answered per (method, workload) cell:
//!
//! 1. **What does durability cost in RUM terms?** The same workload runs
//!    on the bare method and on its `Durable` wrapper; UO-with-WAL must
//!    strictly exceed UO-without, and the gap must be *exactly* the WAL
//!    traffic: the op-phase write-byte delta equals `wal.synced_total()`
//!    to the byte, and `ΔUO == WAL bytes / logical write bytes`.
//! 2. **Is recovery exact?** For each seeded crash point — clean power
//!    loss, torn write, or failed flush — the workload is driven until the
//!    fault fires, the structure recovers, and its full contents must be
//!    bit-identical to a reference structure fed only the acknowledged
//!    (committed) operation prefix. A torn final WAL record must be
//!    detected and discarded somewhere in the matrix, never replayed.

use std::sync::Arc;

use rum_core::runner::run_workload;
use rum_core::workload::{Op, OpMix, Workload, WorkloadSpec};
use rum_core::{AccessMethod, Key, RumError};
use rum_storage::{splitmix64, Durable, FaultInjector, FaultPlan};

/// Matrix configuration.
#[derive(Clone, Debug)]
pub struct CrashConfig {
    /// Records bulk-loaded before the op stream.
    pub initial_records: usize,
    /// Operations per workload.
    pub operations: usize,
    /// Seeded crash points per (method, workload) cell, cycling through
    /// clean crash / torn write / failed flush.
    pub crash_points: usize,
    /// Base seed for crash-point selection.
    pub seed: u64,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            initial_records: 2000,
            operations: 2000,
            crash_points: 12,
            seed: 0xC4A5_4000,
        }
    }
}

impl CrashConfig {
    /// The reduced matrix the CI smoke job runs.
    pub fn smoke() -> Self {
        CrashConfig {
            initial_records: 400,
            operations: 400,
            crash_points: 6,
            ..Default::default()
        }
    }
}

/// The logging-cost comparison of one (method, workload) cell.
#[derive(Clone, Debug)]
pub struct UoRow {
    pub method: String,
    pub workload: String,
    pub uo_bare: f64,
    pub uo_wal: f64,
    /// WAL bytes synced during the op phase.
    pub wal_bytes: u64,
    /// Op-phase write-byte delta (with − without).
    pub delta_bytes: i64,
    /// Logical write bytes of the op phase (identical in both runs).
    pub logical_write_bytes: u64,
}

impl UoRow {
    /// The write-byte delta is exactly the WAL traffic.
    pub fn delta_is_exact(&self) -> bool {
        self.delta_bytes >= 0 && self.delta_bytes as u64 == self.wal_bytes
    }

    /// `ΔUO == WAL bytes / logical bytes` (up to float rounding).
    pub fn uo_delta_is_predicted(&self) -> bool {
        let predicted = self.wal_bytes as f64 / self.logical_write_bytes as f64;
        let measured = self.uo_wal - self.uo_bare;
        (measured - predicted).abs() <= 1e-9 * predicted.max(1.0)
    }
}

/// One recovered crash point.
#[derive(Clone, Debug)]
pub struct CrashRow {
    pub method: String,
    pub workload: String,
    /// Human-readable fault plan (`crash@B`, `torn@B`, `flush#N`).
    pub plan: String,
    /// Operations acknowledged (returned `Ok`) before the fault fired.
    pub acked_ops: usize,
    /// Write operations among the acknowledged prefix — what recovery
    /// must reproduce.
    pub acked_writes: usize,
    /// Committed records the WAL replay re-applied.
    pub committed_ops: usize,
    /// Whether replay detected (and discarded) a torn tail.
    pub torn_tail: bool,
    /// Recovered contents bit-identical to the committed-prefix reference.
    pub recovered_exact: bool,
}

/// Full matrix results.
#[derive(Clone, Debug, Default)]
pub struct CrashMatrix {
    pub uo: Vec<UoRow>,
    pub cells: Vec<CrashRow>,
}

fn workloads(config: &CrashConfig) -> Vec<(&'static str, Workload)> {
    [
        ("write-heavy", OpMix::WRITE_HEAVY),
        ("balanced", OpMix::BALANCED),
    ]
    .into_iter()
    .map(|(name, mix)| {
        let spec = WorkloadSpec {
            initial_records: config.initial_records,
            operations: config.operations,
            mix,
            seed: config.seed ^ name.len() as u64,
            ..Default::default()
        };
        (name, Workload::generate(&spec))
    })
    .collect()
}

/// Execute one op, discarding the answer (mirrors the runner's driver).
fn exec(method: &mut dyn AccessMethod, op: Op) -> rum_core::Result<()> {
    match op {
        Op::Get(k) => method.get(k).map(|_| ()),
        Op::Range(lo, hi) => method.range(lo, hi).map(|_| ()),
        Op::Insert(k, v) => method.insert(k, v),
        Op::Update(k, v) => method.update(k, v).map(|_| ()),
        Op::Delete(k) => method.delete(k).map(|_| ()),
    }
}

/// Run every cell for one method family. `make_bare` builds the inner
/// structure, `make_durable` its WAL wrapper (with an optional armed
/// injector); both must configure the structure identically.
fn run_method<M, FB, FD>(
    make_bare: FB,
    make_durable: FD,
    config: &CrashConfig,
    out: &mut CrashMatrix,
) where
    M: AccessMethod,
    FB: Fn() -> M,
    FD: Fn(Option<Arc<FaultInjector>>) -> Durable<M>,
{
    for (wname, workload) in workloads(config) {
        // --- logging-cost comparison -------------------------------------
        let mut bare = make_bare();
        let bare_report = run_workload(&mut bare, &workload).expect("bare run");
        let mut durable = make_durable(None);
        let wal_report = run_workload(&mut durable, &workload).expect("durable run");
        let method = durable.name();
        eprintln!(
            "[crash] {method} / {wname}: UO comparison + {} crash points",
            config.crash_points
        );
        let wal_bytes = durable.wal().synced_total();
        out.uo.push(UoRow {
            method: method.clone(),
            workload: wname.into(),
            uo_bare: bare_report.uo,
            uo_wal: wal_report.uo,
            wal_bytes,
            delta_bytes: wal_report.write_costs.total_write_bytes() as i64
                - bare_report.write_costs.total_write_bytes() as i64,
            logical_write_bytes: wal_report.write_costs.logical_write_bytes,
        });

        // --- seeded crash points -----------------------------------------
        let write_ops = workload.ops.iter().filter(|o| !o.is_read()).count() as u64;
        for point in 0..config.crash_points {
            let seed = splitmix64(config.seed ^ (out.cells.len() as u64) << 8 | point as u64);
            let (plan, label) = match point % 3 {
                0 => {
                    let at = seed % wal_bytes.max(1);
                    (FaultPlan::crash_at(at), format!("crash@{at}"))
                }
                1 => {
                    let at = seed % wal_bytes.max(1);
                    (FaultPlan::torn_at(at), format!("torn@{at}"))
                }
                // Every logged write op syncs twice (record, commit), so
                // the nth flush always exists.
                _ => {
                    let nth = seed % (2 * write_ops.max(1)) + 1;
                    (FaultPlan::fail_flush(nth), format!("flush#{nth}"))
                }
            };
            let mut victim = make_durable(Some(FaultInjector::new(plan)));
            victim.bulk_load(&workload.initial).expect("bulk load");
            let mut acked = 0usize;
            let mut crashed = false;
            for &op in &workload.ops {
                match exec(&mut victim, op) {
                    Ok(()) => acked += 1,
                    Err(RumError::Crash(_)) => {
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error under {label}: {e}"),
                }
            }
            assert!(crashed, "{method}/{wname}/{label}: fault never fired");
            let report = victim.recover().expect("recovery");

            // Reference: a bare structure fed only the acknowledged prefix.
            let mut reference = make_bare();
            reference.bulk_load(&workload.initial).expect("ref load");
            let mut acked_writes = 0usize;
            for &op in &workload.ops[..acked] {
                exec(&mut reference, op).expect("ref op");
                if !op.is_read() {
                    acked_writes += 1;
                }
            }
            let recovered_exact = victim.len() == reference.len()
                && victim.range(0, Key::MAX).expect("victim scan")
                    == reference.range(0, Key::MAX).expect("ref scan");
            out.cells.push(CrashRow {
                method: method.clone(),
                workload: wname.into(),
                plan: label,
                acked_ops: acked,
                acked_writes,
                committed_ops: report.committed_ops,
                torn_tail: report.torn_tail,
                recovered_exact,
            });
        }
    }
}

/// Run the full matrix: WAL-wrapped LSM tree and append log, two op mixes,
/// `crash_points` seeded faults each.
pub fn run(config: &CrashConfig) -> CrashMatrix {
    let lsm_config = rum_lsm::LsmConfig {
        memtable_records: 256,
        ..Default::default()
    };
    let mut out = CrashMatrix::default();
    run_method(
        move || rum_lsm::LsmTree::with_config(lsm_config),
        move |inj| match inj {
            Some(inj) => rum_lsm::durable_lsm_with_injector(lsm_config, inj),
            None => rum_lsm::durable_lsm(lsm_config),
        },
        config,
        &mut out,
    );
    run_method(
        rum_columns::AppendLog::new,
        |inj| match inj {
            Some(inj) => rum_columns::durable_log_with_injector(inj),
            None => rum_columns::durable_log(),
        },
        config,
        &mut out,
    );
    out
}

/// CSV: a `uo` section then a `cell` section, tagged in the first column.
pub fn to_csv(matrix: &CrashMatrix) -> String {
    let mut out = String::from(
        "kind,method,workload,plan,uo_bare,uo_wal,wal_bytes,delta_bytes,acked_ops,committed_ops,torn_tail,recovered_exact\n",
    );
    for r in &matrix.uo {
        out.push_str(&format!(
            "uo,{},{},,{:.6},{:.6},{},{},,,,\n",
            r.method, r.workload, r.uo_bare, r.uo_wal, r.wal_bytes, r.delta_bytes
        ));
    }
    for c in &matrix.cells {
        out.push_str(&format!(
            "cell,{},{},{},,,,,{},{},{},{}\n",
            c.method,
            c.workload,
            c.plan,
            c.acked_ops,
            c.committed_ops,
            c.torn_tail,
            c.recovered_exact
        ));
    }
    out
}

/// Fixed-width report.
pub fn render(matrix: &CrashMatrix) -> String {
    let mut out =
        String::from("=== Crash matrix: WAL durability cost and recovery exactness ===\n\n");
    out.push_str("--- UO with logging folded in (op phase) ---\n");
    out.push_str(&format!(
        "{:<18} {:<12} {:>9} {:>9} {:>9} {:>11} {:>7}\n",
        "method", "workload", "UO bare", "UO +wal", "ΔUO", "WAL bytes", "exact"
    ));
    for r in &matrix.uo {
        out.push_str(&format!(
            "{:<18} {:<12} {:>9.3} {:>9.3} {:>9.3} {:>11} {:>7}\n",
            r.method,
            r.workload,
            r.uo_bare,
            r.uo_wal,
            r.uo_wal - r.uo_bare,
            r.wal_bytes,
            if r.delta_is_exact() { "yes" } else { "NO" },
        ));
    }
    out.push_str("\n--- Seeded crash points ---\n");
    out.push_str(&format!(
        "{:<18} {:<12} {:<14} {:>7} {:>9} {:>9} {:>5} {:>9}\n",
        "method", "workload", "plan", "acked", "acked-wr", "committed", "torn", "recovered"
    ));
    for c in &matrix.cells {
        out.push_str(&format!(
            "{:<18} {:<12} {:<14} {:>7} {:>9} {:>9} {:>5} {:>9}\n",
            c.method,
            c.workload,
            c.plan,
            c.acked_ops,
            c.acked_writes,
            c.committed_ops,
            if c.torn_tail { "yes" } else { "-" },
            if c.recovered_exact {
                "exact"
            } else {
                "MISMATCH"
            },
        ));
    }
    out
}

/// The matrix's claims, checked. Any `false` fails the smoke job.
pub fn checks(matrix: &CrashMatrix) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for r in &matrix.uo {
        out.push((
            format!(
                "{} / {}: UO with WAL strictly exceeds UO without",
                r.method, r.workload
            ),
            r.uo_wal > r.uo_bare,
        ));
        out.push((
            format!(
                "{} / {}: op-phase write-byte delta equals WAL bytes to the byte",
                r.method, r.workload
            ),
            r.delta_is_exact(),
        ));
        out.push((
            format!(
                "{} / {}: ΔUO equals WAL bytes / logical write bytes",
                r.method, r.workload
            ),
            r.uo_delta_is_predicted(),
        ));
    }
    for c in &matrix.cells {
        out.push((
            format!(
                "{} / {} / {}: recovery rebuilt exactly the committed prefix ({} write ops)",
                c.method, c.workload, c.plan, c.acked_writes
            ),
            c.recovered_exact && c.committed_ops == c.acked_writes,
        ));
    }
    out.push((
        "matrix detected and discarded at least one torn WAL tail".into(),
        matrix.cells.iter().any(|c| c.torn_tail),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_passes_every_check() {
        let config = CrashConfig {
            initial_records: 200,
            operations: 200,
            crash_points: 6,
            seed: 7,
        };
        let matrix = run(&config);
        assert_eq!(matrix.uo.len(), 4, "2 methods x 2 workloads");
        assert_eq!(matrix.cells.len(), 24);
        for (desc, ok) in checks(&matrix) {
            assert!(ok, "failed check: {desc}");
        }
        let csv = to_csv(&matrix);
        assert_eq!(csv.lines().count(), 1 + 4 + 24);
    }
}
