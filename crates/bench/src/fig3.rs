//! Figure 3 of the paper: "Tunable behavior in the RUM space."
//!
//! Each tunable access method is swept across a parameter and measured on
//! the same workload; the resulting (RO, UO, MO) triples trace a curve
//! through the RUM triangle — the paper's vision of methods that "can move
//! within an area in the design space":
//!
//! * B+-tree node size (§5: "dynamically tuned parameters, including tree
//!   height, node size, and split condition"),
//! * B+-tree bulk-load fill factor,
//! * LSM size ratio `T`, levelled and tiered ("changing the number of
//!   merge trees dynamically, the depth of the merge hierarchy and the
//!   frequency of merging"),
//! * ZoneMap partition size `P`,
//! * LSM Bloom-filter bits per key ("logs enhanced by probabilistic data
//!   structures ... at the expense of additional space").

use rum_btree::{BTree, BTreeConfig, PartitionedBTree, PbtConfig, SplitPolicy};
use rum_core::runner::{default_threads, parallel_map, run_stream};
use rum_core::triangle::{render_ascii, rum_point, RumPoint};
use rum_core::workload::{OpMix, OpStream, WorkloadSpec};
use rum_core::AccessMethod;
use rum_core::RECORDS_PER_PAGE;
use rum_lsm::{CompactionPolicy, LsmConfig, LsmTree};
use rum_sparse::{ZoneMapConfig, ZoneMappedColumn};

/// One configuration's position in the RUM space.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Which knob was swept ("btree-node-size", ...).
    pub sweep: String,
    /// The knob's value, rendered.
    pub param: String,
    pub ro: f64,
    pub uo: f64,
    pub mo: f64,
    pub x: f64,
    pub y: f64,
}

fn measure(
    sweep: &str,
    param: String,
    method: &mut dyn AccessMethod,
    spec: &WorkloadSpec,
) -> SweepPoint {
    // Each configuration streams its own copy of the seeded op sequence:
    // identical measurements to a materialized workload, without sharing
    // (or even allocating) a Vec<Op> across sweep entries.
    let report =
        run_stream(method, OpStream::new(spec)).unwrap_or_else(|e| panic!("{sweep}={param}: {e}"));
    let (x, y) = rum_core::triangle::project(report.ro, report.uo, report.mo);
    SweepPoint {
        sweep: sweep.to_string(),
        param,
        ro: report.ro,
        uo: report.uo,
        mo: report.mo,
        x,
        y,
    }
}

fn standard_spec(n: usize, ops: usize) -> WorkloadSpec {
    WorkloadSpec {
        initial_records: n,
        operations: ops,
        mix: OpMix::BALANCED,
        seed: 0x0F16_0003,
        ..Default::default()
    }
}

/// Sweep the B+-tree node size.
pub fn btree_node_size(n: usize, ops: usize) -> Vec<SweepPoint> {
    let w = standard_spec(n, ops);
    [512usize, 1024, 2048, 4096, 8192, 16384, 32768]
        .iter()
        .map(|&node_size| {
            let mut t = BTree::with_config(BTreeConfig {
                node_size,
                ..Default::default()
            });
            measure("btree-node-size", format!("{node_size}B"), &mut t, &w)
        })
        .collect()
}

/// Sweep the B+-tree bulk-load fill factor (and split policy at 1.0).
pub fn btree_fill(n: usize, ops: usize) -> Vec<SweepPoint> {
    let w = standard_spec(n, ops);
    let mut out: Vec<SweepPoint> = [0.5f64, 0.7, 0.9, 1.0]
        .iter()
        .map(|&fill| {
            let mut t = BTree::with_config(BTreeConfig {
                fill_factor: fill,
                ..Default::default()
            });
            measure("btree-fill", format!("{fill:.1}"), &mut t, &w)
        })
        .collect();
    let mut t = BTree::with_config(BTreeConfig {
        split_policy: SplitPolicy::RightHeavy,
        ..Default::default()
    });
    out.push(measure("btree-fill", "right-heavy".into(), &mut t, &w));
    out
}

/// Sweep the LSM size ratio `T` under both compaction policies.
///
/// Uses a mixed read/update workload so the hierarchy actually forms
/// (flushes, overlapping runs) *and* enough point lookups probe it that
/// the per-level read cost shows up in RO: sequential fresh inserts alone
/// produce disjoint runs whose fence pointers hide the read-cost
/// differences between the policies. The small memtable keeps the merge
/// hierarchy several levels deep even at test scale, where a 256-record
/// buffer would absorb most of the write stream and flatten the sweep.
pub fn lsm_ratio(n: usize, ops: usize) -> Vec<SweepPoint> {
    let w = WorkloadSpec {
        initial_records: n,
        operations: 4 * ops,
        mix: OpMix {
            get: 0.4,
            insert: 0.15,
            update: 0.4,
            delete: 0.05,
            range: 0.0,
        },
        seed: 0x0F16_0005,
        ..Default::default()
    };
    let mut out = Vec::new();
    for policy in [CompactionPolicy::Levelling, CompactionPolicy::Tiering] {
        for t in [2usize, 4, 8, 16] {
            let mut lsm = LsmTree::with_config(LsmConfig {
                size_ratio: t,
                policy,
                memtable_records: 64,
                ..Default::default()
            });
            let tag = match policy {
                CompactionPolicy::Levelling => format!("T={t} lvl"),
                CompactionPolicy::Tiering => format!("T={t} tier"),
            };
            out.push(measure("lsm-ratio", tag, &mut lsm, &w));
        }
    }
    out
}

/// Sweep the ZoneMap partition size `P`.
pub fn zonemap_partition(n: usize, ops: usize) -> Vec<SweepPoint> {
    let w = standard_spec(n, ops);
    [1usize, 4, 16, 64]
        .iter()
        .map(|&pages| {
            let mut z = ZoneMappedColumn::with_config(ZoneMapConfig {
                partition_records: pages * RECORDS_PER_PAGE,
                ..Default::default()
            });
            measure(
                "zonemap-P",
                format!("{}r", pages * RECORDS_PER_PAGE),
                &mut z,
                &w,
            )
        })
        .collect()
}

/// Sweep LSM Bloom bits per key on a miss-heavy read workload (where the
/// filters earn their keep).
pub fn bloom_bits(n: usize, ops: usize) -> Vec<SweepPoint> {
    let w = WorkloadSpec {
        initial_records: n,
        operations: ops,
        mix: OpMix::READ_HEAVY,
        miss_fraction: 0.5,
        seed: 0x0F16_0004,
        ..Default::default()
    };
    [0.0f64, 2.0, 5.0, 10.0, 16.0]
        .iter()
        .map(|&bits| {
            let mut lsm = LsmTree::with_config(LsmConfig {
                bloom_bits_per_key: bits,
                memtable_records: 256,
                ..Default::default()
            });
            measure("bloom-bits", format!("{bits}b/key"), &mut lsm, &w)
        })
        .collect()
}

/// Sweep the partitioned B-tree's partition budget ("the number of
/// partitions in PBT" — the paper's own example of a tunable parameter).
pub fn pbt_partitions(n: usize, ops: usize) -> Vec<SweepPoint> {
    // Update-heavy so copies pile up across partitions.
    let w = WorkloadSpec {
        initial_records: n,
        operations: 2 * ops,
        mix: OpMix {
            get: 0.25,
            insert: 0.2,
            update: 0.5,
            delete: 0.05,
            range: 0.0,
        },
        seed: 0x0F16_0006,
        ..Default::default()
    };
    [2usize, 4, 8, 16]
        .iter()
        .map(|&max_partitions| {
            let mut t = PartitionedBTree::with_config(PbtConfig {
                partition_records: 256,
                max_partitions,
                node: BTreeConfig::default(),
            });
            measure("pbt-partitions", format!("{max_partitions}p"), &mut t, &w)
        })
        .collect()
}

/// Run every sweep, one per worker; the concatenated output keeps the
/// fixed sweep order regardless of which finishes first.
pub fn run(n: usize, ops: usize) -> Vec<SweepPoint> {
    type Sweep = fn(usize, usize) -> Vec<SweepPoint>;
    let sweeps: Vec<Sweep> = vec![
        btree_node_size,
        btree_fill,
        lsm_ratio,
        zonemap_partition,
        bloom_bits,
        pbt_partitions,
    ];
    parallel_map(sweeps, default_threads(), |sweep| sweep(n, ops))
        .into_iter()
        .flatten()
        .collect()
}

/// Render all sweeps: tables plus one combined triangle.
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let mut sweeps: Vec<&str> = points.iter().map(|p| p.sweep.as_str()).collect();
    sweeps.dedup();
    for sweep in sweeps {
        out.push_str(&format!("\n--- sweep: {sweep} ---\n"));
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>10} {:>8} {:>8}\n",
            "param", "RO", "UO", "MO", "x", "y"
        ));
        for p in points.iter().filter(|p| p.sweep == sweep) {
            out.push_str(&format!(
                "{:<14} {:>12.2} {:>12.2} {:>10.4} {:>8.3} {:>8.3}\n",
                p.param, p.ro, p.uo, p.mo, p.x, p.y
            ));
        }
    }
    // Combined triangle: label sweep endpoints only, to stay readable.
    let mut tri: Vec<RumPoint> = Vec::new();
    let mut sweeps: Vec<&str> = points.iter().map(|p| p.sweep.as_str()).collect();
    sweeps.dedup();
    for sweep in sweeps {
        let of: Vec<&SweepPoint> = points.iter().filter(|p| p.sweep == sweep).collect();
        if let (Some(first), Some(last)) = (of.first(), of.last()) {
            tri.push(rum_point(
                format!("{}[{}]", sweep, first.param),
                first.ro,
                first.uo,
                first.mo,
            ));
            tri.push(rum_point(
                format!("{}[{}]", sweep, last.param),
                last.ro,
                last.uo,
                last.mo,
            ));
        }
    }
    out.push('\n');
    out.push_str(&render_ascii(&tri, 72, 24));
    out
}

/// Figure 3's claims, checked: every knob really moves the method in the
/// expected direction.
pub fn shape_checks(points: &[SweepPoint]) -> Vec<(String, bool)> {
    let of =
        |sweep: &str| -> Vec<&SweepPoint> { points.iter().filter(|p| p.sweep == sweep).collect() };
    let mut checks = Vec::new();

    // Larger LSM T (levelling): fewer levels → RO falls, merge batches
    // grow → UO rises.
    let lsm: Vec<&SweepPoint> = of("lsm-ratio")
        .into_iter()
        .filter(|p| p.param.ends_with("lvl"))
        .collect();
    if lsm.len() >= 2 {
        checks.push((
            "LSM T↑ (levelling): RO falls".into(),
            lsm.last().unwrap().ro < lsm.first().unwrap().ro,
        ));
        checks.push((
            "LSM T↑ (levelling): UO rises".into(),
            lsm.last().unwrap().uo > lsm.first().unwrap().uo,
        ));
    }
    // Tiering trades reads for writes relative to levelling at the same T.
    let all_lsm = of("lsm-ratio");
    let lvl4 = all_lsm.iter().find(|p| p.param == "T=4 lvl");
    let tier4 = all_lsm.iter().find(|p| p.param == "T=4 tier");
    if let (Some(l), Some(t)) = (lvl4, tier4) {
        checks.push((
            "tiering (T=4) has lower UO than levelling".into(),
            t.uo < l.uo,
        ));
        checks.push((
            "tiering (T=4) has higher RO than levelling".into(),
            t.ro > l.ro,
        ));
    }
    // Finer zonemap partitions: better reads, more metadata.
    let zm = of("zonemap-P");
    if zm.len() >= 2 {
        checks.push((
            "ZoneMap P↓: RO falls (finer pruning)".into(),
            zm.first().unwrap().ro < zm.last().unwrap().ro,
        ));
        checks.push((
            "ZoneMap P↓: MO rises (more zones)".into(),
            zm.first().unwrap().mo > zm.last().unwrap().mo,
        ));
    }
    // More bloom bits: better reads, more space.
    let bb = of("bloom-bits");
    if bb.len() >= 2 {
        checks.push((
            "Bloom bits↑: RO falls on miss-heavy reads".into(),
            bb.last().unwrap().ro < bb.first().unwrap().ro,
        ));
        checks.push((
            "Bloom bits↑: MO rises".into(),
            bb.last().unwrap().mo > bb.first().unwrap().mo,
        ));
    }
    // Bigger B-tree nodes: shorter tree but fatter accesses; the write
    // cost per update grows with the node size.
    let bn = of("btree-node-size");
    if bn.len() >= 2 {
        checks.push((
            "B+-tree node↑: UO rises (fatter page writes)".into(),
            bn.last().unwrap().uo > bn.first().unwrap().uo,
        ));
    }
    // More PBT partitions: cheaper writes, more probes per read.
    let pbt = of("pbt-partitions");
    if pbt.len() >= 2 {
        checks.push((
            "PBT partitions↑: UO falls (merges deferred)".into(),
            pbt.last().unwrap().uo < pbt.first().unwrap().uo,
        ));
        checks.push((
            "PBT partitions↑: RO rises (more partitions probed)".into(),
            pbt.last().unwrap().ro > pbt.first().unwrap().ro,
        ));
    }
    // Lower fill factor: more slack → higher MO.
    let bf: Vec<&SweepPoint> = of("btree-fill")
        .into_iter()
        .filter(|p| p.param != "right-heavy")
        .collect();
    if bf.len() >= 2 {
        checks.push((
            "B+-tree fill↓: MO rises (slack pages)".into(),
            bf.first().unwrap().mo > bf.last().unwrap().mo,
        ));
    }
    checks
}
