//! Scale sweep: one access method absorbing a multi-million-op stream,
//! sharded K ways.
//!
//! The figures run at sizes where a materialized `Vec<Op>` is harmless;
//! this sweep is where the streaming machinery earns its keep. For each
//! (n, K) cell a `ShardedMethod` of K B+-trees takes `n` operations drawn
//! straight from an [`OpStream`] — never materialized — in class-contiguous
//! batches executed across K shard workers.
//!
//! What the sweep demonstrates, in RUM terms:
//!
//! * RO / UO and every counted byte are **identical for every execution
//!   strategy of the same structure** — the cost model is deterministic, so
//!   concurrency is free along those axes (verified per cell against a
//!   serial per-op run at the smallest n).
//! * MO grows with K: K trees hold K roots, K directories, K half-empty
//!   tail pages. Sharding spends memory to buy wall-clock time.
//! * `ops/s` is the only column concurrency improves. Batches ride the
//!   wrapper's **persistent worker pool** (long-lived `rum-shard-{w}`
//!   threads, one queue handoff per shard per batch), so even on a 1-core
//!   host extra shards cost only the handoff and partition bookkeeping —
//!   the sweep's ratio-floor check pins K>1 within 3× of K=1 (6× on a
//!   single-core host, where the pool is oversubscribed), which the old
//!   spawn-threads-per-batch dispatch missed by 25–60×.
//!
//! Cells run traced ([`run_stream_sharded_traced`]) with a whole-run
//! window and a disabled sink, so the `p50ns`/`p99ns` columns carry the
//! merged per-worker latency distributions at zero cost-model effect.

use rum_btree::BTree;
use rum_core::runner::{run_stream_sharded_traced, run_workload, RumReport, DEFAULT_STREAM_BATCH};
use rum_core::trace::{noop_sink, TraceCollector};
use rum_core::workload::{OpMix, OpStream, Workload, WorkloadSpec};
use rum_core::{AccessMethod, ShardedMethod};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Operation counts to sweep (the paper-scale axis).
    pub ns: Vec<usize>,
    /// Shard counts to sweep.
    pub ks: Vec<usize>,
    /// Ops per [`ShardedMethod::submit_batch`] dispatch.
    pub batch: usize,
    /// Cross-check the smallest n against a serial, per-op, materialized
    /// run (costly: it builds the `Vec<Op>` the streaming path avoids).
    pub verify: bool,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            ns: vec![100_000, 1_000_000, 10_000_000],
            ks: vec![1, 2, 4, 8],
            batch: DEFAULT_STREAM_BATCH,
            verify: true,
        }
    }
}

impl ScaleConfig {
    /// The reduced sweep the CI smoke job runs: n = 10^5, K ∈ {1, 2, 8}.
    /// K = 8 is there for the throughput ratio floor — the widest fan-out
    /// is where dispatch-overhead regressions show first (under
    /// `RUM_THREADS=2` it also exercises workers serving multiple shard
    /// queues).
    pub fn smoke() -> Self {
        ScaleConfig {
            ns: vec![100_000],
            ks: vec![1, 2, 8],
            ..Default::default()
        }
    }
}

/// One measured (n, K) cell.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Operations executed.
    pub n: usize,
    /// Shard count.
    pub k: usize,
    pub report: RumReport,
    /// Whether a serial per-op cross-check ran for this cell, and whether
    /// its RO/UO/MO matched bit-for-bit.
    pub verified: Option<bool>,
}

/// The workload behind every cell: balanced mix over a live set one tenth
/// the op count, so the stream exercises every op kind at scale while the
/// initial bulk load stays a fraction of the run.
pub fn spec_for(n: usize) -> WorkloadSpec {
    WorkloadSpec {
        initial_records: (n / 10).max(1),
        operations: n,
        mix: OpMix::BALANCED,
        seed: 0x5CA1_E000 + n as u64,
        ..Default::default()
    }
}

fn sharded(k: usize) -> ShardedMethod {
    ShardedMethod::new(k, |_| Box::new(BTree::new()) as Box<dyn AccessMethod>)
}

/// Run the sweep. Cells run serially (each cell already uses the shard
/// workers); rows come back in (n, K) sweep order.
///
/// When `verify` is set, every K at the *smallest* n is re-run serially —
/// per-op, through a materialized `Workload` — and the streamed report's
/// RO/UO/MO must match bit-for-bit.
pub fn run(config: &ScaleConfig) -> Vec<ScaleRow> {
    let smallest = config.ns.iter().copied().min();
    let mut rows = Vec::with_capacity(config.ns.len() * config.ks.len());
    for &n in &config.ns {
        let spec = spec_for(n);
        for &k in &config.ks {
            eprintln!("[scale] n={n} K={k} ...");
            let t0 = std::time::Instant::now();
            let mut method = sharded(k);
            // Whole-run window + disabled sink: the collector exists only
            // to merge the per-worker latency histograms into p50/p99.
            let mut trace = TraceCollector::new(spec.operations, noop_sink());
            let report = run_stream_sharded_traced(
                &mut method,
                OpStream::new(&spec),
                config.batch,
                &mut trace,
            )
            .expect("sharded stream run");
            eprintln!(
                "[scale]   {:.1}s, {:.0} ops/s",
                t0.elapsed().as_secs_f32(),
                report.ops_per_sec
            );
            let verified = if config.verify && Some(n) == smallest {
                let workload = Workload::generate(&spec);
                let serial = run_workload(&mut sharded(k), &workload).expect("serial run");
                Some(
                    serial.ro.to_bits() == report.ro.to_bits()
                        && serial.uo.to_bits() == report.uo.to_bits()
                        && serial.mo.to_bits() == report.mo.to_bits()
                        && serial.read_costs == report.read_costs
                        && serial.write_costs == report.write_costs,
                )
            } else {
                None
            };
            rows.push(ScaleRow {
                n,
                k,
                report,
                verified,
            });
        }
    }
    rows
}

/// CSV of the sweep: `n,k,` + the standard report columns.
pub fn to_csv(rows: &[ScaleRow]) -> String {
    let mut out = String::from(
        "n,k,method,n_final,ro,uo,mo,pages_per_read_op,pages_per_write_op,sim_ns,p50_ns,p99_ns,\
         ops_per_sec\n",
    );
    for r in rows {
        out.push_str(&format!("{},{},{}\n", r.n, r.k, r.report.csv_row()));
    }
    out
}

/// Fixed-width table of the sweep.
pub fn render(rows: &[ScaleRow]) -> String {
    let mut out =
        String::from("=== Scale sweep: streaming balanced workload over K sharded B+-trees ===\n");
    out.push_str(&format!(
        "{:>10} {:>3}  {}\n",
        "ops",
        "K",
        RumReport::table_header()
    ));
    for r in rows {
        let mark = match r.verified {
            Some(true) => "  [serial ✓]",
            Some(false) => "  [serial MISMATCH]",
            None => "",
        };
        out.push_str(&format!(
            "{:>10} {:>3}  {}{}\n",
            r.n,
            r.k,
            r.report.table_row(),
            mark
        ));
    }
    out
}

/// The sweep's claims, checked. Any `false` fails the smoke job.
pub fn checks(rows: &[ScaleRow]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for r in rows {
        out.push((
            format!("n={} K={}: RO/UO/MO all finite", r.n, r.k),
            r.report.ro.is_finite() && r.report.uo.is_finite() && r.report.mo.is_finite(),
        ));
        out.push((
            format!("n={} K={}: amplifications at or above 1", r.n, r.k),
            r.report.ro >= 1.0 && r.report.uo >= 1.0 && r.report.mo >= 1.0,
        ));
        if let Some(ok) = r.verified {
            out.push((
                format!(
                    "n={} K={}: streamed concurrent run matches serial per-op run bit-for-bit",
                    r.n, r.k
                ),
                ok,
            ));
        }
    }
    // MO is the axis sharding perturbs: K structures hold K roots and K
    // tails of slack. The *direction* flips with scale (K root-only trees
    // can carry less aux than one multi-level tree), so the check pins the
    // magnitude: K must stay a bounded perturbation of K=1, never a
    // wholesale change in the structure's space story. Below ~10^4 records
    // per shard the perturbation is all node-packing noise, so the check
    // applies only at sweep scale.
    for &n in rows.iter().map(|r| r.n).collect::<Vec<_>>().iter() {
        let of_n: Vec<&ScaleRow> = rows.iter().filter(|r| r.n == n && n >= 50_000).collect();
        if of_n.len() >= 2 {
            let lo = of_n.iter().map(|r| r.report.mo).fold(f64::MAX, f64::min);
            let hi = of_n.iter().map(|r| r.report.mo).fold(f64::MIN, f64::max);
            out.push((
                format!("n={n}: MO across K stays a bounded perturbation (≤1.5x spread)"),
                hi <= lo * 1.5,
            ));
            break; // one representative n keeps the check list short
        }
    }
    // Throughput floor: sharding buys MO to absorb traffic, so it must
    // never *collapse* wall-clock throughput. With the persistent worker
    // pool a batch costs one queue handoff per shard, so K>1 stays within
    // a small factor of K=1 even single-core; the floor is deliberately
    // loose — it only needs to catch a return of the
    // spawn-threads-per-batch regression (which missed it by 25–60×)
    // without flaking on scheduler noise. 3× holds when the host can run
    // two threads in parallel; on a single core the pool is oversubscribed
    // (workers + feeder time-slice one CPU) and the measured ratio swings
    // up to ~4.5×, so the floor widens to 6× there. Tiny cells are clock
    // noise, so the floor applies only at sweep scale, like the MO check.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let floor = if cores >= 2 { 3.0 } else { 6.0 };
    let mut ns: Vec<usize> = rows.iter().map(|r| r.n).collect();
    ns.dedup();
    for n in ns {
        if n < 50_000 {
            continue;
        }
        let Some(base) = rows
            .iter()
            .find(|r| r.n == n && r.k == 1)
            .map(|r| r.report.ops_per_sec)
        else {
            continue;
        };
        if !base.is_finite() {
            continue;
        }
        for r in rows.iter().filter(|r| r.n == n && r.k > 1) {
            out.push((
                format!(
                    "n={n} K={}: ops/s within {floor}x of K=1 (dispatch-overhead floor)",
                    r.k
                ),
                r.report.ops_per_sec * floor >= base,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_verified_and_finite() {
        let config = ScaleConfig {
            ns: vec![2000],
            ks: vec![1, 2, 4],
            batch: 128,
            verify: true,
        };
        let rows = run(&config);
        assert_eq!(rows.len(), 3);
        for (desc, ok) in checks(&rows) {
            assert!(ok, "failed check: {desc}");
        }
        assert!(rows.iter().all(|r| r.verified == Some(true)));
        // Traced cells carry real latency quantiles (bugfix: these were
        // permanently 0 on the sharded path).
        assert!(rows.iter().all(|r| r.report.p50_ns > 0));
        assert!(rows.iter().all(|r| r.report.p99_ns >= r.report.p50_ns));
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 4);
        assert!(!csv.contains("inf") && !csv.contains("NaN"));
    }
}
