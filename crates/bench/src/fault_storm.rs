//! Fault storm: access methods × seeded fault profiles × retry policies,
//! with every cell checked differentially against a fault-free twin.
//!
//! Three guarantees, one per cell kind:
//!
//! 1. **Converge** — under recurring *transient* faults, a retry policy
//!    whose `max_attempts` exceeds the profile's burst bound makes every
//!    operation succeed, the final contents are bit-identical to the
//!    fault-free reference, and the price is visible in the RUM ledger:
//!    the extra charged page operations equal the injected fault count
//!    exactly (every retried attempt is paid for, nothing else is).
//! 2. **Detect** — under *silent bit flips*, checksum-sealed pages turn
//!    corruption into [`RumError::CorruptPage`]: up to the first detected
//!    fault every served answer matches the reference, and wrong data is
//!    never returned. A post-run [`scrub`](rum_storage::Pager::scrub)
//!    walks the surviving seals and reports any remaining damage.
//! 3. **Heal** — the same bit-flip profile under a WAL-wrapped method:
//!    detected corruption triggers quarantine + rebuild from the
//!    committed log prefix onto replacement storage *transparently*, so
//!    every operation of the whole run answers exactly like the
//!    reference and the final contents are bit-identical — the flips
//!    are invisible except as repair events and repair I/O. (Rebuilding
//!    onto storage that keeps decaying is bounded instead: `Durable`
//!    gives up after `MAX_HEAL_CYCLES` rebuilds and surfaces the error.)
//!
//! Sticky bad sectors (permanently unreadable pages) are part of the
//! fault model but deliberately not in this matrix: they are detected,
//! not recovered, and their semantics are pinned by unit tests in
//! `rum-storage`. Crash-shaped faults (power loss, torn writes, failed
//! flushes) have their own matrix in [`crash`](crate::crash).

use std::sync::{Arc, Mutex};

use rum_core::trace::{EventKind, MemorySink};
use rum_core::workload::{Op, OpMix, Workload, WorkloadSpec};
use rum_core::{AccessMethod, CostSnapshot, Key, RumError};
use rum_storage::{
    CheckedDevice, Durable, FaultDevice, FaultInjector, FaultPlan, FaultProfile, MemDevice,
    RetryPolicy, ScrubReport,
};

/// Matrix configuration.
#[derive(Clone, Debug)]
pub struct FaultStormConfig {
    /// Records bulk-loaded before the op stream.
    pub initial_records: usize,
    /// Operations per cell.
    pub operations: usize,
    /// Base seed for the workload and every fault profile.
    pub seed: u64,
}

impl Default for FaultStormConfig {
    fn default() -> Self {
        FaultStormConfig {
            initial_records: 2000,
            operations: 2000,
            seed: 0xFA_17_57,
        }
    }
}

impl FaultStormConfig {
    /// The reduced matrix the CI smoke job runs.
    pub fn smoke() -> Self {
        FaultStormConfig {
            initial_records: 400,
            operations: 400,
            ..Default::default()
        }
    }
}

/// What a cell claims (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    Converge,
    Detect,
    Heal,
}

impl CellKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            CellKind::Converge => "converge",
            CellKind::Detect => "detect",
            CellKind::Heal => "heal",
        }
    }
}

/// One (method, profile, policy) cell, measured.
#[derive(Clone, Debug)]
pub struct StormRow {
    pub method: String,
    pub profile: String,
    pub policy: String,
    pub kind: CellKind,
    /// Operations executed (all of them, unless a Detect cell stopped at
    /// its first surfaced corruption).
    pub acked_ops: usize,
    /// Transient read/write faults the injector fired.
    pub faults_injected: u64,
    /// Silent bit flips the injector planted (across rebuilds, for Heal).
    pub flips_injected: u64,
    /// Op-phase `CorruptPage` surfaces (Detect cells stop at the first).
    pub detected: u64,
    /// Quarantine + rebuild cycles (Heal cells; `RepairComplete` events).
    pub repairs: u64,
    /// Sealed pages the post-run scrub walked / found damaged (bare
    /// checked cells only; the Heal wrapper scrubs implicitly by reading).
    pub scrub_pages: u64,
    pub scrub_corrupt: u64,
    /// Charged page ops (reads + writes) minus the fault-free reference's
    /// — the retry traffic, priced in the same currency as everything.
    pub extra_page_ops: i64,
    /// Simulated backoff nanoseconds charged beyond the reference.
    pub extra_sim_ns: i64,
    /// Checksum sidecar bytes at end of run — the MO the seal costs.
    pub checksum_bytes: u64,
    /// Served answers that diverged from the fault-free reference —
    /// **must be zero everywhere**: wrong data is the one unacceptable
    /// outcome of the whole experiment.
    pub wrong_data: u64,
    /// Errors the cell's contract does not allow (anything in Converge /
    /// Heal; anything but `CorruptPage` in Detect).
    pub surfaced_errors: u64,
    /// Final contents bit-identical to the reference (Converge / Heal).
    pub contents_exact: bool,
}

/// Full matrix results.
#[derive(Clone, Debug, Default)]
pub struct StormMatrix {
    pub rows: Vec<StormRow>,
}

fn workload(config: &FaultStormConfig) -> Workload {
    Workload::generate(&WorkloadSpec {
        initial_records: config.initial_records,
        operations: config.operations,
        mix: OpMix::BALANCED,
        seed: config.seed,
        ..Default::default()
    })
}

/// Execute one op and fold its observable answer into a digest: two runs
/// served the same data iff their digests match op-for-op.
fn op_digest(method: &mut dyn AccessMethod, op: Op) -> rum_core::Result<u64> {
    use rum_storage::splitmix64;
    Ok(match op {
        Op::Get(k) => match method.get(k)? {
            Some(v) => splitmix64(k ^ v.wrapping_mul(3)),
            None => splitmix64(k ^ 0x5EED),
        },
        Op::Range(lo, hi) => {
            let mut acc = splitmix64(lo ^ hi.rotate_left(17));
            for r in method.range(lo, hi)? {
                acc = splitmix64(acc ^ r.key ^ r.value.rotate_left(31));
            }
            acc
        }
        Op::Insert(k, v) => {
            method.insert(k, v)?;
            1
        }
        Op::Update(k, v) => u64::from(method.update(k, v)?),
        Op::Delete(k) => u64::from(method.delete(k)?),
    })
}

/// The faulty device stack every cell runs on: checksum seals *above* the
/// fault layer, so injected flips land under the seal and must be caught.
type StormDevice = CheckedDevice<FaultDevice<MemDevice>>;

fn storm_device(injector: &Arc<FaultInjector>) -> StormDevice {
    CheckedDevice::new(FaultDevice::new(MemDevice::new(), Arc::clone(injector)))
}

/// The profiles × policies of one method family, plus the clean baseline.
/// Every transient pairing keeps `max_attempts > max_burst`, which is the
/// convergence precondition the storage layer proves.
fn converge_legs(seed: u64) -> Vec<(&'static str, FaultProfile, &'static str, RetryPolicy)> {
    let transient = FaultProfile::transient(seed ^ 0x7A17, 60_000, 1);
    let bursty = FaultProfile::transient(seed ^ 0xB0057, 90_000, 2);
    vec![
        (
            "clean",
            FaultProfile::none(seed),
            "retry-3",
            RetryPolicy::default(),
        ),
        ("transient", transient, "retry-3", RetryPolicy::default()),
        ("transient", transient, "retry-6", RetryPolicy::attempts(6)),
        ("bursty", bursty, "retry-3", RetryPolicy::default()),
        ("bursty", bursty, "retry-6", RetryPolicy::attempts(6)),
    ]
}

/// Drive the whole workload on a fault-free twin of the cell and record
/// its per-op digests, final contents, and cost snapshot.
fn reference_run<M: AccessMethod>(
    make: impl Fn(&Arc<FaultInjector>) -> M,
    workload: &Workload,
) -> (Vec<u64>, Vec<rum_core::Record>, CostSnapshot) {
    let inert = FaultInjector::inert();
    let mut reference = make(&inert);
    reference.bulk_load(&workload.initial).expect("ref load");
    let digests: Vec<u64> = workload
        .ops
        .iter()
        .map(|&op| op_digest(&mut reference, op).expect("fault-free reference op"))
        .collect();
    let costs = reference.tracker().snapshot();
    let contents = reference.range(0, Key::MAX).expect("ref scan");
    (digests, contents, costs)
}

/// Run one Converge or Detect cell over a bare checked method.
#[allow(clippy::too_many_arguments)]
fn run_cell<M: AccessMethod>(
    make: impl Fn(&Arc<FaultInjector>) -> M,
    scrub: impl Fn(&mut M) -> rum_core::Result<ScrubReport>,
    checksum_bytes: impl Fn(&M) -> u64,
    workload: &Workload,
    kind: CellKind,
    profile: (&str, FaultProfile),
    policy: (&str, RetryPolicy),
    out: &mut StormMatrix,
) {
    let (digests, ref_contents, ref_costs) = reference_run(&make, workload);
    let injector = FaultInjector::with_profile(FaultPlan::None, Some(profile.1));
    let mut victim = make(&injector);
    victim.bulk_load(&workload.initial).expect("victim load");
    let mut row = StormRow {
        method: victim.name(),
        profile: profile.0.into(),
        policy: policy.0.into(),
        kind,
        acked_ops: 0,
        faults_injected: 0,
        flips_injected: 0,
        detected: 0,
        repairs: 0,
        scrub_pages: 0,
        scrub_corrupt: 0,
        extra_page_ops: 0,
        extra_sim_ns: 0,
        checksum_bytes: 0,
        wrong_data: 0,
        surfaced_errors: 0,
        contents_exact: false,
    };
    eprintln!(
        "[storm] {} / {} / {} ({})",
        row.method,
        row.profile,
        row.policy,
        kind.as_str()
    );
    for (&op, &expected) in workload.ops.iter().zip(&digests) {
        match op_digest(&mut victim, op) {
            Ok(digest) => {
                row.acked_ops += 1;
                if digest != expected {
                    row.wrong_data += 1;
                }
            }
            Err(RumError::CorruptPage { .. }) if kind == CellKind::Detect => {
                // Detection is the contract: stop here, scrub below.
                row.detected += 1;
                break;
            }
            Err(_) => {
                row.surfaced_errors += 1;
                break;
            }
        }
    }
    // Snapshot the op-phase ledger first: the reference snapshot was taken
    // at the same point, so the delta isolates retry traffic — the final
    // contents scan and the scrub below charge both sides' ledgers later
    // or not at all.
    let costs = victim.tracker().snapshot();
    row.extra_page_ops = (costs.page_reads + costs.page_writes) as i64
        - (ref_costs.page_reads + ref_costs.page_writes) as i64;
    row.extra_sim_ns = costs.sim_time_ns as i64 - ref_costs.sim_time_ns as i64;
    // Tallies read here too: faults the contents scan / scrub fire later
    // would otherwise break the exact ops-equals-faults accounting.
    row.faults_injected = injector.transient_faults();
    row.flips_injected = injector.bitflips();
    if row.acked_ops == workload.ops.len() {
        row.contents_exact = victim.range(0, Key::MAX).map(|c| c == ref_contents) == Ok(true);
    }
    if let Ok(report) = scrub(&mut victim) {
        row.scrub_pages = report.pages_scanned as u64;
        row.scrub_corrupt = (report.corrupt.len() + report.unreadable.len()) as u64;
    }
    row.checksum_bytes = checksum_bytes(&victim);
    out.rows.push(row);
}

/// Run the Heal cell: the bit-flip profile under a WAL-wrapped LSM tree.
/// The *initial* device decays; when corruption is detected the wrapper
/// quarantines it and the factory rebuilds onto replacement storage (a
/// clean device) from checkpoint + committed WAL prefix — the model of
/// retiring a failing disk. Injectors are collected so the flip tally
/// spans every life of the structure.
fn run_heal_cell(
    lsm_config: rum_lsm::LsmConfig,
    seed: u64,
    flip_ppm: u32,
    workload: &Workload,
    out: &mut StormMatrix,
) {
    let make_tree = move |injector: &Arc<FaultInjector>| {
        let mut tree = rum_lsm::LsmTree::with_device(storm_device(injector), lsm_config);
        tree.set_retry_policy(RetryPolicy::default());
        tree
    };
    let (digests, ref_contents, _) = reference_run(make_tree, workload);

    let profile = FaultProfile::bitflips(seed ^ 0xF11B, flip_ppm);
    let injectors: Arc<Mutex<Vec<Arc<FaultInjector>>>> = Arc::default();
    let factory_injectors = Arc::clone(&injectors);
    let mut victim = Durable::new(move || {
        let mut list = factory_injectors.lock().expect("injector list");
        // First life decays; every rebuild is onto replacement storage.
        let injector = if list.is_empty() {
            FaultInjector::with_profile(FaultPlan::None, Some(profile))
        } else {
            FaultInjector::inert()
        };
        list.push(Arc::clone(&injector));
        make_tree(&injector)
    });
    let sink = MemorySink::shared();
    victim.set_trace_sink(Arc::clone(&sink) as _);
    victim.bulk_load(&workload.initial).expect("heal load");
    let mut row = StormRow {
        method: victim.name(),
        profile: "bitflip".into(),
        policy: "retry-3".into(),
        kind: CellKind::Heal,
        acked_ops: 0,
        faults_injected: 0,
        flips_injected: 0,
        detected: 0,
        repairs: 0,
        scrub_pages: 0,
        scrub_corrupt: 0,
        extra_page_ops: 0,
        extra_sim_ns: 0,
        checksum_bytes: 0,
        wrong_data: 0,
        surfaced_errors: 0,
        contents_exact: false,
    };
    eprintln!("[storm] {} / bitflip / retry-3 (heal)", row.method);
    for (&op, &expected) in workload.ops.iter().zip(&digests) {
        match op_digest(&mut victim, op) {
            Ok(digest) => {
                row.acked_ops += 1;
                if digest != expected {
                    row.wrong_data += 1;
                }
            }
            Err(_) => {
                row.surfaced_errors += 1;
                break;
            }
        }
    }
    if row.acked_ops == workload.ops.len() {
        row.contents_exact = victim.range(0, Key::MAX).map(|c| c == ref_contents) == Ok(true);
    }
    for injector in injectors.lock().expect("injector list").iter() {
        row.flips_injected += injector.bitflips();
        row.faults_injected += injector.transient_faults();
    }
    row.repairs = sink
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::RepairComplete)
        .count() as u64;
    row.detected = sink
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::CorruptionDetected)
        .count() as u64;
    row.checksum_bytes = victim.inner().device().checksum_bytes();
    out.rows.push(row);
}

/// Run the full matrix: B+-tree and LSM tree over checksum-sealed faulty
/// devices (Converge + Detect), plus the WAL-wrapped LSM tree (Heal).
pub fn run(config: &FaultStormConfig) -> StormMatrix {
    let workload = workload(config);
    let mut out = StormMatrix::default();
    // A small memtable forces real device traffic (flushes + compaction),
    // so the fault layer has pages to flip and the retry layer work to do.
    let lsm_config = rum_lsm::LsmConfig {
        memtable_records: 32,
        ..Default::default()
    };

    // --- B+-tree ---------------------------------------------------------
    let make_btree = |policy: RetryPolicy| {
        move |injector: &Arc<FaultInjector>| {
            let mut tree = rum_btree::BTree::with_device(
                storm_device(injector),
                rum_btree::BTreeConfig::default(),
            );
            tree.set_retry_policy(policy);
            tree
        }
    };
    for (pname, profile, rname, policy) in converge_legs(config.seed) {
        run_cell(
            make_btree(policy),
            |t| t.scrub(),
            |t| t.device().checksum_bytes(),
            &workload,
            CellKind::Converge,
            (pname, profile),
            (rname, policy),
            &mut out,
        );
    }
    run_cell(
        make_btree(RetryPolicy::default()),
        |t| t.scrub(),
        |t| t.device().checksum_bytes(),
        &workload,
        CellKind::Detect,
        (
            "bitflip",
            FaultProfile::bitflips(config.seed ^ 0xF11B, 40_000),
        ),
        ("retry-3", RetryPolicy::default()),
        &mut out,
    );

    // --- LSM tree --------------------------------------------------------
    let make_lsm = |policy: RetryPolicy| {
        move |injector: &Arc<FaultInjector>| {
            let mut tree = rum_lsm::LsmTree::with_device(storm_device(injector), lsm_config);
            tree.set_retry_policy(policy);
            tree
        }
    };
    for (pname, profile, rname, policy) in converge_legs(config.seed.rotate_left(13)) {
        run_cell(
            make_lsm(policy),
            |t| t.scrub(),
            |t| t.device().checksum_bytes(),
            &workload,
            CellKind::Converge,
            (pname, profile),
            (rname, policy),
            &mut out,
        );
    }
    // The LSM batches work into far fewer (but larger-consequence) page
    // writes than the B+-tree, so its flip rate is higher to plant a
    // comparable number of flips per run.
    run_cell(
        make_lsm(RetryPolicy::default()),
        |t| t.scrub(),
        |t| t.device().checksum_bytes(),
        &workload,
        CellKind::Detect,
        (
            "bitflip",
            FaultProfile::bitflips(config.seed ^ 0xF11B, 150_000),
        ),
        ("retry-3", RetryPolicy::default()),
        &mut out,
    );

    // --- WAL-wrapped LSM tree (transparent healing) ----------------------
    run_heal_cell(lsm_config, config.seed, 80_000, &workload, &mut out);
    out
}

/// CSV, one row per cell.
pub fn to_csv(matrix: &StormMatrix) -> String {
    let mut out = String::from(
        "method,profile,policy,kind,acked_ops,faults,flips,detected,repairs,scrub_pages,scrub_corrupt,extra_page_ops,extra_sim_ns,checksum_bytes,wrong_data,surfaced_errors,contents_exact\n",
    );
    for r in &matrix.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.method,
            r.profile,
            r.policy,
            r.kind.as_str(),
            r.acked_ops,
            r.faults_injected,
            r.flips_injected,
            r.detected,
            r.repairs,
            r.scrub_pages,
            r.scrub_corrupt,
            r.extra_page_ops,
            r.extra_sim_ns,
            r.checksum_bytes,
            r.wrong_data,
            r.surfaced_errors,
            r.contents_exact
        ));
    }
    out
}

/// Fixed-width report.
pub fn render(matrix: &StormMatrix) -> String {
    let mut out = String::from(
        "=== Fault storm: retry convergence, corruption detection, transparent healing ===\n\n",
    );
    out.push_str(&format!(
        "{:<16} {:<10} {:<8} {:<9} {:>6} {:>7} {:>6} {:>7} {:>7} {:>9} {:>10} {:>6} {:>8}\n",
        "method",
        "profile",
        "policy",
        "kind",
        "acked",
        "faults",
        "flips",
        "caught",
        "repairs",
        "retry-ops",
        "seal-bytes",
        "wrong",
        "contents"
    ));
    for r in &matrix.rows {
        out.push_str(&format!(
            "{:<16} {:<10} {:<8} {:<9} {:>6} {:>7} {:>6} {:>7} {:>7} {:>9} {:>10} {:>6} {:>8}\n",
            r.method,
            r.profile,
            r.policy,
            r.kind.as_str(),
            r.acked_ops,
            r.faults_injected,
            r.flips_injected,
            r.detected + r.scrub_corrupt,
            r.repairs,
            r.extra_page_ops,
            r.checksum_bytes,
            r.wrong_data,
            match (r.kind, r.contents_exact) {
                (CellKind::Detect, _) => "n/a",
                (_, true) => "exact",
                (_, false) => "MISMATCH",
            },
        ));
    }
    out
}

/// The matrix's claims, checked. Any `false` fails the smoke job.
pub fn checks(matrix: &StormMatrix) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for r in &matrix.rows {
        let cell = format!("{} / {} / {}", r.method, r.profile, r.policy);
        out.push((
            format!("{cell}: no served answer ever diverged from the fault-free reference"),
            r.wrong_data == 0,
        ));
        match r.kind {
            CellKind::Converge => {
                out.push((
                    format!("{cell}: every op converged under retries"),
                    r.surfaced_errors == 0 && r.acked_ops > 0,
                ));
                out.push((
                    format!("{cell}: final contents bit-identical to the reference"),
                    r.contents_exact,
                ));
                out.push((
                    format!(
                        "{cell}: retry traffic priced exactly ({} extra page ops = {} faults)",
                        r.extra_page_ops, r.faults_injected
                    ),
                    r.extra_page_ops == r.faults_injected as i64,
                ));
                out.push((
                    format!("{cell}: backoff time charged iff faults fired"),
                    (r.extra_sim_ns > 0) == (r.faults_injected > 0),
                ));
                out.push((
                    format!("{cell}: post-run scrub found the store clean"),
                    r.scrub_corrupt == 0 && r.scrub_pages > 0,
                ));
            }
            CellKind::Detect => {
                out.push((
                    format!("{cell}: only CorruptPage ever surfaced"),
                    r.surfaced_errors == 0,
                ));
                out.push((
                    format!("{cell}: flips were planted and corruption was caught, not served"),
                    r.flips_injected > 0 && (r.detected + r.scrub_corrupt) > 0,
                ));
            }
            CellKind::Heal => {
                out.push((
                    format!("{cell}: flips healed transparently, no error reached the caller"),
                    r.surfaced_errors == 0 && r.acked_ops > 0,
                ));
                out.push((
                    format!("{cell}: final contents bit-identical to the reference"),
                    r.contents_exact,
                ));
                out.push((
                    format!(
                        "{cell}: corruption was detected and repaired ({} detections, {} repairs)",
                        r.detected, r.repairs
                    ),
                    r.flips_injected > 0 && r.detected > 0 && r.repairs > 0,
                ));
            }
        }
        out.push((
            format!("{cell}: the checksum sidecar's MO is accounted"),
            r.checksum_bytes > 0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_storm_passes_every_check() {
        let config = FaultStormConfig {
            initial_records: 300,
            operations: 300,
            seed: 0xFA_17_57,
        };
        let matrix = run(&config);
        // 2 methods × (5 converge + 1 detect) + 1 heal cell.
        assert_eq!(matrix.rows.len(), 13);
        for (desc, ok) in checks(&matrix) {
            assert!(ok, "failed check: {desc}");
        }
        let csv = to_csv(&matrix);
        assert_eq!(csv.lines().count(), 1 + 13);
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let config = FaultStormConfig {
            initial_records: 200,
            operations: 200,
            seed: 42,
        };
        let a = to_csv(&run(&config));
        let b = to_csv(&run(&config));
        assert_eq!(a, b, "same seed must reproduce the matrix bit-for-bit");
    }
}
