//! Table 1 of the paper: empirical I/O cost (page accesses) of the six
//! access methods, swept over dataset sizes, against the analytic
//! complexity the paper lists.
//!
//! The paper's asymptotics, with `B = 256` records/page:
//!
//! | method | point | range(m) | insert/update/delete | size |
//! |---|---|---|---|---|
//! | B+-Tree | `log_B N` | `log_B N + m/B` | `log_B N` | `N/B` |
//! | Perfect Hash | `1` | `N/B` | `1` | `N/B` |
//! | ZoneMaps | `N/P/B` | `N/P/B + m/B` | `N/P/B` | `N/P/B` |
//! | Levelled LSM | `log_T(N/B)·log_B N` | `... + m·T/(T−1)/B` | `T/B·log_T(N/B)` | `N·T/(T−1)` |
//! | Sorted column | `log₂ N` | `log₂ N + m/B` | `N/B/2` | `1` (no aux) |
//! | Unsorted column | `N/B/2` | `N/B` | `1` | `1` (no aux) |

use rum_btree::BTree;
use rum_columns::{SortedColumn, UnsortedColumn};
use rum_core::runner::{default_threads, parallel_map};
use rum_core::{AccessMethod, ShardedMethod, RECORDS_PER_PAGE};
use rum_hash::StaticHash;
use rum_lsm::{LsmConfig, LsmTree};
use rum_sparse::{ZoneMapConfig, ZoneMappedColumn};

use crate::{
    dataset, fmt_cell, insert_cost, load_cost, log_b, point_query_cost, range_query_cost,
    update_cost,
};

/// Experiment parameters (the parameter table atop the paper's Table 1).
#[derive(Clone, Copy, Debug)]
pub struct Table1Params {
    /// Range-query result size `m` in records.
    pub m: usize,
    /// ZoneMap partition size `P` in records.
    pub partition: usize,
    /// LSM size ratio `T`.
    pub size_ratio: usize,
    /// LSM memtable (`MEM`) in records.
    pub memtable: usize,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            m: 512,
            partition: 16 * RECORDS_PER_PAGE,
            size_ratio: 4,
            memtable: 4096,
        }
    }
}

/// One measured row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub method: String,
    pub n: usize,
    /// Pages written during bulk creation.
    pub load_pages: u64,
    /// Total physical footprint in pages.
    pub size_pages: f64,
    pub mo: f64,
    /// Mean page accesses per operation.
    pub point_pages: f64,
    pub range_pages: f64,
    pub insert_pages: f64,
    pub update_pages: f64,
}

/// A boxed constructor for one Table 1 method.
pub type MethodFactory = Box<dyn Fn() -> Box<dyn AccessMethod>>;

/// The six methods of Table 1 as boxed factories.
pub fn methods(p: Table1Params) -> Vec<(&'static str, MethodFactory)> {
    vec![
        (
            "B+-Tree",
            Box::new(|| Box::new(BTree::new()) as Box<dyn AccessMethod>),
        ),
        (
            "Perfect Hash",
            Box::new(|| Box::new(StaticHash::new()) as Box<dyn AccessMethod>),
        ),
        (
            "ZoneMaps",
            Box::new(move || {
                Box::new(ZoneMappedColumn::with_config(ZoneMapConfig {
                    partition_records: p.partition,
                    blind_appends: true,
                })) as Box<dyn AccessMethod>
            }),
        ),
        (
            "Levelled LSM",
            Box::new(move || {
                // No Bloom filters: the paper's Table 1 cost formula
                // predates per-run filters (their effect is measured in
                // the Figure 3 sweep and the ablation benches instead).
                Box::new(LsmTree::with_config(LsmConfig {
                    memtable_records: p.memtable,
                    size_ratio: p.size_ratio,
                    bloom_bits_per_key: 0.0,
                    ..Default::default()
                })) as Box<dyn AccessMethod>
            }),
        ),
        (
            "Sorted column",
            Box::new(|| Box::new(SortedColumn::new()) as Box<dyn AccessMethod>),
        ),
        (
            // Blind appends: the paper's O(1) heap insert (no uniqueness
            // scan; the workload only inserts fresh keys).
            "Unsorted column",
            Box::new(|| Box::new(UnsortedColumn::blind_appends()) as Box<dyn AccessMethod>),
        ),
        (
            // Beyond the paper's six: the sharded composition this repo
            // adds. K=4 hash-partitioned B+-trees — point ops touch one
            // smaller tree (log_B(N/K)), ranges pay a K-way fan-out.
            "Sharded B+-Tree",
            Box::new(|| {
                Box::new(ShardedMethod::new(4, |_| {
                    Box::new(BTree::new()) as Box<dyn AccessMethod>
                })) as Box<dyn AccessMethod>
            }),
        ),
    ]
}

/// Number of inserts to average over, per method. Structures with
/// amortized write paths (LSM) need enough inserts to cross flush and
/// compaction boundaries; structures with deterministic per-op cost
/// (sorted column: half the column shifts!) get few.
fn insert_samples(method: &str, p: &Table1Params) -> usize {
    match method {
        "Levelled LSM" => 4 * p.memtable,
        "Sorted column" => 8,
        _ => 64,
    }
}

/// Measure one method at one dataset size.
pub fn measure(
    name: &str,
    factory: &dyn Fn() -> Box<dyn AccessMethod>,
    n: usize,
    p: &Table1Params,
) -> Table1Row {
    let mut m = factory();
    let data = dataset(n);
    let (load_pages, _load_size_pages, _load_mo) = load_cost(m.as_mut(), &data);
    if name == "Levelled LSM" {
        // Drive the LSM into steady state: a pristine bulk-loaded tree is
        // one perfect run (reads as cheap as a sorted column), which is
        // not the multi-level shape Table 1 describes. Churn a slice of
        // the keys so several levels hold live data.
        let churn = (2 * p.memtable).min(n / 2);
        update_cost(m.as_mut(), n, churn);
        // Flush the memtable: the paper's LSM read model probes runs, not
        // a warm write buffer (memtable hits would undercut even hashing).
        m.flush().expect("flush");
        m.tracker().reset();
    }
    let point = point_query_cost(m.as_mut(), n, 64);
    let range = range_query_cost(m.as_mut(), n, p.m, 16);
    let update = update_cost(m.as_mut(), n, 32);
    let insert = insert_cost(m.as_mut(), n, insert_samples(name, p));
    // Footprint measured at the END of the run: for history-dependent
    // structures (the LSM) the pristine bulk-loaded state undersells the
    // space the method actually occupies in steady state.
    let profile = m.space_profile();
    let size_pages = profile.total_bytes() as f64 / rum_core::PAGE_SIZE as f64;
    let mo = profile.space_amplification();
    Table1Row {
        method: name.to_string(),
        n,
        load_pages,
        size_pages,
        mo,
        point_pages: point.pages,
        range_pages: range.pages,
        insert_pages: insert.pages,
        update_pages: update.pages,
    }
}

/// Run the full sweep. Every (N, method) cell is independent, so cells
/// run one per worker; `parallel_map` keeps rows in sweep order. The
/// method factories are rebuilt inside each worker because boxed
/// closures are not `Send` — rebuilding them is free.
pub fn run(ns: &[usize], params: Table1Params) -> Vec<Table1Row> {
    let method_count = methods(params).len();
    let mut cells = Vec::with_capacity(ns.len() * method_count);
    for &n in ns {
        for index in 0..method_count {
            cells.push((n, index));
        }
    }
    parallel_map(cells, default_threads(), |(n, index)| {
        let (name, factory) = methods(params).swap_remove(index);
        eprintln!("[table1] measuring {name} @ N={n} ...");
        let t0 = std::time::Instant::now();
        let row = measure(name, factory.as_ref(), n, &params);
        eprintln!("[table1]   done in {:.1}s", t0.elapsed().as_secs_f32());
        row
    })
}

/// Analytic expectation (in page accesses) for a method/op, straight from
/// the paper's formulas — printed beside the measurements.
pub fn analytic(method: &str, op: &str, n: usize, p: &Table1Params) -> f64 {
    let nf = n as f64;
    let b = RECORDS_PER_PAGE as f64;
    let m = p.m as f64;
    let pt = p.partition as f64;
    let t = p.size_ratio as f64;
    let pages = nf / b;
    let _zones = nf / pt;
    let lsm_levels = (pages / (p.memtable as f64 / b)).ln() / t.ln();
    match (method, op) {
        ("B+-Tree", "point") => log_b(nf),
        ("B+-Tree", "range") => log_b(nf) + m / b,
        ("B+-Tree", "insert") => log_b(nf) + 1.0,
        ("Perfect Hash", "point") => 1.0,
        ("Perfect Hash", "range") => pages / 0.5, // table sized at 50% load
        ("Perfect Hash", "insert") => 1.0,
        ("ZoneMaps", "point") => pt / b, // one partition (clustered best case)
        ("ZoneMaps", "range") => pt / b + m / b,
        ("ZoneMaps", "insert") => 2.0, // scan-free append + metadata
        ("Levelled LSM", "point") => lsm_levels.max(1.0),
        ("Levelled LSM", "range") => lsm_levels.max(1.0) + (m / b) * t / (t - 1.0),
        ("Levelled LSM", "insert") => (t / b) * lsm_levels.max(1.0) * 2.0,
        ("Sorted column", "point") => (pages).log2().max(1.0),
        ("Sorted column", "range") => (pages).log2().max(1.0) + m / b,
        ("Sorted column", "insert") => pages, // read+write half the column
        ("Unsorted column", "point") => pages / 2.0,
        ("Unsorted column", "range") => pages,
        ("Unsorted column", "insert") => 2.0, // blind append: RMW the tail page
        // K=4 shards of N/4 records each: point ops walk one shorter tree,
        // ranges probe every shard's tree then read the same m/B leaf pages
        // (the result is split across shards).
        ("Sharded B+-Tree", "point") => log_b(nf / 4.0),
        ("Sharded B+-Tree", "range") => 4.0 * log_b(nf / 4.0) + m / b,
        ("Sharded B+-Tree", "insert") => log_b(nf / 4.0) + 1.0,
        _ => f64::NAN,
    }
}

/// Render measured-vs-analytic tables, one per dataset size.
pub fn render(rows: &[Table1Row], params: &Table1Params) -> String {
    let mut out = String::new();
    let mut ns: Vec<usize> = rows.iter().map(|r| r.n).collect();
    ns.sort_unstable();
    ns.dedup();
    for n in ns {
        out.push_str(&format!(
            "\n=== Table 1 @ N = {n} (B = {}, m = {}, P = {}, T = {}) ===\n",
            RECORDS_PER_PAGE, params.m, params.partition, params.size_ratio
        ));
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10}\n",
            "method",
            "load(pgW)",
            "size(pg)",
            "MO",
            "point",
            "(theory)",
            "range",
            "(theory)",
            "insert",
            "(theory)",
            "update"
        ));
        for r in rows.iter().filter(|r| r.n == n) {
            out.push_str(&format!(
                "{:<16} {:>10} {} {:>8.3} | {} {} | {} {} | {} {} | {}\n",
                r.method,
                r.load_pages,
                fmt_cell(r.size_pages),
                r.mo,
                fmt_cell(r.point_pages),
                fmt_cell(analytic(&r.method, "point", n, params)),
                fmt_cell(r.range_pages),
                fmt_cell(analytic(&r.method, "range", n, params)),
                fmt_cell(r.insert_pages),
                fmt_cell(analytic(&r.method, "insert", n, params)),
                fmt_cell(r.update_pages),
            ));
        }
    }
    out
}

/// The paper's qualitative claims about Table 1, checked against the
/// measurements. Every claim is a (description, holds?) pair.
pub fn shape_checks(rows: &[Table1Row]) -> Vec<(String, bool)> {
    let mut ns: Vec<usize> = rows.iter().map(|r| r.n).collect();
    ns.sort_unstable();
    ns.dedup();
    let small = *ns.first().expect("at least one N");
    let large = *ns.last().expect("at least one N");
    let get = |method: &str, n: usize| -> &Table1Row {
        rows.iter()
            .find(|r| r.method == method && r.n == n)
            .expect("row")
    };
    let growth = |method: &str, f: fn(&Table1Row) -> f64| {
        f(get(method, large)) / f(get(method, small)).max(1e-9)
    };
    let n_ratio = large as f64 / small as f64;

    let mut checks = Vec::new();
    checks.push((
        "hash point query is O(1): flat across N".into(),
        growth("Perfect Hash", |r| r.point_pages) < 1.5,
    ));
    checks.push((
        "B+-tree point query grows ≤ +2 pages over the sweep (log_B N)".into(),
        get("B+-Tree", large).point_pages - get("B+-Tree", small).point_pages <= 2.0,
    ));
    checks.push((
        "unsorted column point query grows ~linearly with N".into(),
        growth("Unsorted column", |r| r.point_pages) > n_ratio * 0.4,
    ));
    checks.push((
        "sorted column point query grows ≪ linearly (log₂ N)".into(),
        growth("Sorted column", |r| r.point_pages) < 4.0,
    ));
    checks.push((
        "Hash Indexes offer the fastest point queries".into(),
        [
            "B+-Tree",
            "ZoneMaps",
            "Levelled LSM",
            "Sorted column",
            "Unsorted column",
        ]
        .iter()
        .all(|m| get("Perfect Hash", large).point_pages <= get(m, large).point_pages),
    ));
    checks.push((
        "B+-Trees offer the fastest range queries (vs hash/zonemap/columns)".into(),
        ["Perfect Hash", "ZoneMaps", "Unsorted column"]
            .iter()
            .all(|m| get("B+-Tree", large).range_pages <= get(m, large).range_pages * 1.05),
    ));
    checks.push((
        "\"LSM can support efficient range queries\": within 1.5x of the B+-tree".into(),
        get("Levelled LSM", large).range_pages <= get("B+-Tree", large).range_pages * 1.5
            && get("Levelled LSM", large).range_pages * 1.5 >= get("B+-Tree", large).range_pages,
    ));
    checks.push((
        // Small epsilon: at test-scale N the LSM's single bloom-free run
        // ties the zonemap's footprint to within page slack.
        "ZoneMaps have the smallest index size (lowest MO of the indexed methods)".into(),
        ["B+-Tree", "Perfect Hash", "Levelled LSM"]
            .iter()
            .all(|m| get("ZoneMaps", large).mo <= get(m, large).mo + 0.01),
    ));
    checks.push((
        "LSM inserts are far cheaper than B+-tree inserts (amortized)".into(),
        get("Levelled LSM", large).insert_pages * 4.0 < get("B+-Tree", large).insert_pages,
    ));
    checks.push((
        "hash range query is a full scan (grows ~linearly)".into(),
        growth("Perfect Hash", |r| r.range_pages) > n_ratio * 0.4,
    ));
    checks.push((
        "sorted column insert shifts ~half the column (linear in N)".into(),
        growth("Sorted column", |r| r.insert_pages) > n_ratio * 0.4,
    ));
    checks.push((
        "unsorted column append insert is cheap and flat (O(1))".into(),
        get("Unsorted column", large).insert_pages <= 3.0
            && get("Unsorted column", small).insert_pages <= 3.0,
    ));
    checks.push((
        "zonemap append insert is cheap (sparse-index maintenance only)".into(),
        get("ZoneMaps", large).insert_pages <= 4.0,
    ));
    checks.push((
        // Tolerance covers last-page slack, which shrinks with N.
        "sorted/unsorted columns carry no auxiliary space (MO ≈ 1)".into(),
        get("Sorted column", large).mo < 1.05 && get("Unsorted column", large).mo < 1.05,
    ));
    checks.push(("there is no single winner across all columns".into(), {
        // The point-query winner must lose a different column.
        let point_winner = "Perfect Hash";
        get(point_winner, large).range_pages > get("B+-Tree", large).range_pages
            && get(point_winner, large).mo > get("Sorted column", large).mo
    }));
    checks
}
