//! Ablations of the design choices DESIGN.md calls out:
//! * per-run Bloom filters in the LSM (on/off) for miss-heavy reads,
//! * WAH compression vs. plain bitmaps for AND/OR,
//! * cracking vs. never-indexing for repeated range queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rum_adaptive::CrackedColumn;
use rum_bench::dataset;
use rum_bitmap::WahVec;
use rum_core::AccessMethod;
use rum_lsm::{LsmConfig, LsmTree};

fn bench_bloom_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lsm_bloom_miss");
    g.sample_size(10);
    for bits in [0.0f64, 10.0] {
        let mut t = LsmTree::with_config(LsmConfig {
            bloom_bits_per_key: bits,
            memtable_records: 1024,
            ..Default::default()
        });
        for k in 0..30_000u64 {
            let key = (k.wrapping_mul(7919)) % 30_000;
            t.insert(2 * key, 1).unwrap();
        }
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(bits as u64), &bits, |b, _| {
            b.iter(|| {
                i = (i + 7919) % 30_000;
                std::hint::black_box(t.get(2 * i + 1).unwrap()) // always a miss
            })
        });
    }
    g.finish();
}

fn bench_wah_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_wah_or");
    g.sample_size(20);
    let n = 1 << 20;
    let sparse_a: Vec<u64> = (0..n).step_by(997).collect();
    let sparse_b: Vec<u64> = (0..n).step_by(1499).collect();
    let wa = WahVec::from_positions(&sparse_a, n);
    let wb = WahVec::from_positions(&sparse_b, n);
    g.bench_function("wah_compressed", |b| {
        b.iter(|| std::hint::black_box(wa.or(&wb).count_ones()))
    });
    // Plain bitset baseline.
    let mut pa = vec![0u64; (n as usize) / 64];
    for &p in &sparse_a {
        pa[(p / 64) as usize] |= 1 << (p % 64);
    }
    let mut pb = vec![0u64; (n as usize) / 64];
    for &p in &sparse_b {
        pb[(p / 64) as usize] |= 1 << (p % 64);
    }
    g.bench_function("plain_bitset", |b| {
        b.iter(|| {
            let ones: u64 = pa
                .iter()
                .zip(&pb)
                .map(|(&x, &y)| (x | y).count_ones() as u64)
                .sum();
            std::hint::black_box(ones)
        })
    });
    g.finish();
}

fn bench_cracking_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cracking_range");
    g.sample_size(10);
    let n = 1 << 16;
    let data = dataset(n);

    let mut cracked = CrackedColumn::new();
    cracked.bulk_load(&data).unwrap();
    // Warm it with 100 queries so it has partially converged.
    for q in 0..100u64 {
        let lo = (q * 1237) % (2 * n as u64 - 300);
        cracked.range(lo, lo + 256).unwrap();
    }
    let mut i = 0u64;
    g.bench_function("cracked_warm", |b| {
        b.iter(|| {
            i = (i + 1237) % (2 * n as u64 - 300);
            std::hint::black_box(cracked.range(i, i + 256).unwrap().len())
        })
    });

    let mut heap = rum_columns::UnsortedColumn::new();
    heap.bulk_load(&data).unwrap();
    let mut j = 0u64;
    g.bench_function("heap_scan", |b| {
        b.iter(|| {
            j = (j + 1237) % (2 * n as u64 - 300);
            std::hint::black_box(heap.range(j, j + 256).unwrap().len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bloom_ablation,
    bench_wah_ablation,
    bench_cracking_ablation
);
criterion_main!(benches);
