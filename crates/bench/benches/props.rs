//! Wall-clock benchmarks of the §2 extreme designs (Props 1–3): the
//! operation each structure minimizes, timed.

use criterion::{criterion_group, criterion_main, Criterion};
use rum_columns::{AppendLog, DenseArray, DirectAddressArray};
use rum_core::{AccessMethod, Record};

fn bench_props(c: &mut Criterion) {
    let mut g = c.benchmark_group("props");
    g.sample_size(20);

    // Prop 1: direct-address point read (the minimal-RO operation).
    let mut daa = DirectAddressArray::new();
    for k in 0..65_536u64 {
        daa.insert(k, k).unwrap();
    }
    let mut i = 0u64;
    g.bench_function("p1_direct_address_get", |b| {
        b.iter(|| {
            i = (i + 7919) % 65_536;
            std::hint::black_box(daa.get(i).unwrap())
        })
    });

    // Prop 2: append-log insert (the minimal-UO operation).
    let mut log = AppendLog::new();
    let mut k = 0u64;
    g.bench_function("p2_append_log_insert", |b| {
        b.iter(|| {
            k += 1;
            log.insert(k, 1).unwrap();
        })
    });

    // Prop 3: dense-array full scan (the price of minimal MO).
    let mut arr = DenseArray::new();
    let recs: Vec<Record> = (0..65_536u64).map(|k| Record::new(k, k)).collect();
    arr.bulk_load(&recs).unwrap();
    g.bench_function("p3_dense_array_miss_scan", |b| {
        b.iter(|| std::hint::black_box(arr.get(u64::MAX).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_props);
criterion_main!(benches);
