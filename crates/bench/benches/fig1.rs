//! Wall-clock benchmark of the Figure 1 experiment: the full balanced
//! workload against each suite member.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rum::prelude::*;

fn bench_fig1(c: &mut Criterion) {
    let spec = WorkloadSpec {
        initial_records: 1 << 12,
        operations: 1 << 10,
        mix: OpMix::BALANCED,
        seed: 77,
        ..Default::default()
    };
    let workload = Workload::generate(&spec);
    let mut g = c.benchmark_group("fig1_balanced_workload");
    g.sample_size(10);
    for method in rum::standard_suite() {
        let name = method.name();
        drop(method);
        g.bench_with_input(BenchmarkId::from_parameter(&name), &name, |b, name| {
            b.iter(|| {
                let mut m = rum::standard_suite()
                    .into_iter()
                    .find(|m| &m.name() == name)
                    .unwrap();
                std::hint::black_box(run_workload(m.as_mut(), &workload).unwrap().ro)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
