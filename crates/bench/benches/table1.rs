//! Wall-clock benchmarks of the Table 1 operations: point query, range
//! query, and insert for each of the six methods at N = 2^16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rum_bench::{dataset, table1::methods, table1::Table1Params};

fn bench_table1(c: &mut Criterion) {
    let n = 1 << 16;
    let data = dataset(n);
    let params = Table1Params::default();

    let mut g = c.benchmark_group("table1_point");
    g.sample_size(10);
    for (name, factory) in methods(params) {
        let mut m = factory();
        m.bulk_load(&data).unwrap();
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, _| {
            b.iter(|| {
                i = (i + 7919) % n as u64;
                std::hint::black_box(m.get(2 * i).unwrap())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("table1_range_m512");
    g.sample_size(10);
    for (name, factory) in methods(params) {
        let mut m = factory();
        m.bulk_load(&data).unwrap();
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, _| {
            b.iter(|| {
                i = (i + 4093) % (n as u64 - 512);
                std::hint::black_box(m.range(2 * i, 2 * i + 1022).unwrap().len())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("table1_insert");
    g.sample_size(10);
    for (name, factory) in methods(params) {
        // Sorted-column inserts shift half the column; keep iterations low.
        let mut m = factory();
        m.bulk_load(&data).unwrap();
        let mut k = 2 * n as u64 + 1;
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, _| {
            b.iter(|| {
                k += 2;
                m.insert(k, 1).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
