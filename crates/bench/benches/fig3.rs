//! Wall-clock benchmarks along the Figure 3 tuning axes: B+-tree node
//! size (reads) and LSM size ratio (writes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rum_bench::dataset;
use rum_btree::{BTree, BTreeConfig};
use rum_core::AccessMethod;
use rum_lsm::{CompactionPolicy, LsmConfig, LsmTree};

fn bench_fig3(c: &mut Criterion) {
    let n = 1 << 15;
    let data = dataset(n);

    let mut g = c.benchmark_group("fig3_btree_node_size_get");
    g.sample_size(10);
    for node_size in [512usize, 4096, 32768] {
        let mut t = BTree::with_config(BTreeConfig {
            node_size,
            ..Default::default()
        });
        t.bulk_load(&data).unwrap();
        let mut i = 0u64;
        g.bench_with_input(
            BenchmarkId::from_parameter(node_size),
            &node_size,
            |b, _| {
                b.iter(|| {
                    i = (i + 7919) % n as u64;
                    std::hint::black_box(t.get(2 * i).unwrap())
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("fig3_lsm_ratio_insert");
    g.sample_size(10);
    for (ratio, policy, tag) in [
        (2usize, CompactionPolicy::Levelling, "T2-lvl"),
        (8, CompactionPolicy::Levelling, "T8-lvl"),
        (8, CompactionPolicy::Tiering, "T8-tier"),
    ] {
        let mut t = LsmTree::with_config(LsmConfig {
            size_ratio: ratio,
            policy,
            memtable_records: 1024,
            ..Default::default()
        });
        let mut k = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(tag), &ratio, |b, _| {
            b.iter(|| {
                k += 1;
                t.insert(k, 1).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
