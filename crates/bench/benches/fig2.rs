//! Wall-clock benchmark of the Figure 2 mechanism: zipfian point reads
//! through a small vs. large buffer over simulated storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rum_bench::dataset;
use rum_btree::{BTree, BTreeConfig};
use rum_core::workload::Zipfian;
use rum_core::AccessMethod;
use rum_storage::{DeviceProfile, HierarchySpec, MemoryHierarchy};

fn bench_fig2(c: &mut Criterion) {
    let n = 1 << 14;
    let data = dataset(n);
    let mut g = c.benchmark_group("fig2_buffer_size");
    g.sample_size(10);
    for buffer_pages in [16usize, 1024] {
        let h = MemoryHierarchy::new(HierarchySpec::buffer_and_storage(
            buffer_pages,
            DeviceProfile::SSD,
        ));
        let mut tree = BTree::with_device(h, BTreeConfig::default());
        tree.bulk_load(&data).unwrap();
        let zipf = Zipfian::new(n, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        g.bench_with_input(
            BenchmarkId::from_parameter(buffer_pages),
            &buffer_pages,
            |b, _| {
                b.iter(|| {
                    let k = 2 * zipf.sample(&mut rng) as u64;
                    std::hint::black_box(tree.get(k).unwrap())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
