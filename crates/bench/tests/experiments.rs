//! The paper's experiments at test scale: every qualitative claim
//! (proposition, table, figure) must hold on a small, fast configuration
//! so `cargo test` guards the reproduction end to end.

use rum_bench::{fig1, fig2, fig3, props, scale, table1};
use rum_storage::DeviceProfile;

fn assert_all(checks: Vec<(String, bool)>, what: &str) {
    let failures: Vec<String> = checks
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(d, _)| d.clone())
        .collect();
    assert!(
        failures.is_empty(),
        "{what}: {} claim(s) failed:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

#[test]
fn propositions_hold() {
    let verdicts: Vec<(String, bool)> = props::verdicts();
    assert_all(verdicts, "§2 propositions");
}

#[test]
fn table1_shape_holds_at_test_scale() {
    let params = table1::Table1Params::default();
    let rows = table1::run(&[1 << 12, 1 << 14], params);
    assert_all(table1::shape_checks(&rows), "Table 1");
}

#[test]
fn fig1_placement_holds_at_test_scale() {
    let placements = fig1::run(1 << 12, 1 << 10, 99);
    assert_all(fig1::shape_checks(&placements), "Figure 1");
}

#[test]
fn fig2_vertical_tradeoff_holds() {
    let rows = fig2::run(1 << 13, 10_000, &[16, 128, 1024, 8192], DeviceProfile::SSD);
    assert_all(fig2::shape_checks(&rows), "Figure 2");
}

#[test]
fn fig3_knobs_move_methods_as_predicted() {
    let points = fig3::run(1 << 12, 1 << 10);
    assert_all(fig3::shape_checks(&points), "Figure 3");
}

#[test]
fn scale_sweep_holds_at_test_scale() {
    // A miniature of the CI smoke job: stream a few batches across 1, 2,
    // and 4 shards, cross-check every K against the serial per-op run,
    // and require finite, well-formed RUM values throughout.
    let config = scale::ScaleConfig {
        ns: vec![4096],
        ks: vec![1, 2, 4],
        batch: 512,
        verify: true,
    };
    let rows = scale::run(&config);
    assert_all(scale::checks(&rows), "scale sweep");
}

#[test]
fn table1_theory_tracks_measurement() {
    // Beyond qualitative shape: measured point-query costs should land
    // within a small factor of the paper's formulas (same units: pages).
    let params = table1::Table1Params::default();
    let rows = table1::run(&[1 << 14], params);
    for r in &rows {
        let theory = table1::analytic(&r.method, "point", r.n, &params);
        let measured = r.point_pages.max(0.01);
        let ratio = measured / theory.max(0.01);
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{}: point theory {theory:.2} vs measured {measured:.2}",
            r.method
        );
    }
}
