//! Cross-validation of the §5 "access method wizard": its analytic
//! rankings must agree with actual measurements of the implementations it
//! ranks — the wizard is only useful if Table 1's cost model predicts the
//! real (simulated) world.

use rum_bench::{dataset, insert_cost, point_query_cost, range_query_cost, table1};
use rum_core::wizard::{recommend, Constraints, Environment, Family};
use rum_core::workload::OpMix;

fn measured_cost(family: Family, mix: &OpMix, n: usize) -> f64 {
    // Map wizard families onto the Table 1 implementations.
    let params = table1::Table1Params::default();
    let name = match family {
        Family::BTree => "B+-Tree",
        Family::HashIndex => "Perfect Hash",
        Family::ZoneMap => "ZoneMaps",
        Family::LsmTree => "Levelled LSM",
        Family::SortedColumn => "Sorted column",
        Family::UnsortedColumn => "Unsorted column",
        Family::CrackedColumn => return f64::NAN, // not a Table 1 method
    };
    let (_, factory) = table1::methods(params)
        .into_iter()
        .find(|(n, _)| *n == name)
        .expect("family present");
    let mut m = factory();
    m.bulk_load(&dataset(n)).unwrap();
    let total = mix.get + mix.insert + mix.update + mix.delete + mix.range;
    let write_frac = (mix.insert + mix.update + mix.delete) / total;
    let mut cost = 0.0;
    if mix.get > 0.0 {
        cost += (mix.get / total) * point_query_cost(m.as_mut(), n, 32).pages;
    }
    if mix.range > 0.0 {
        cost += (mix.range / total) * range_query_cost(m.as_mut(), n, params.m, 8).pages;
    }
    if write_frac > 0.0 {
        let samples = if name == "Sorted column" { 4 } else { 64 };
        cost += write_frac * insert_cost(m.as_mut(), n, samples).pages;
    }
    cost
}

fn check_mix(mix: OpMix, n: usize) {
    let env = Environment {
        n,
        ..Default::default()
    };
    let recs = recommend(&mix, &env, &Constraints::default());
    // Take the wizard's best and worst Table 1 families.
    let ranked: Vec<Family> = recs
        .iter()
        .filter(|r| r.family != Family::CrackedColumn)
        .map(|r| r.family)
        .collect();
    let best = ranked.first().copied().expect("non-empty");
    let worst = ranked.last().copied().expect("non-empty");
    let best_measured = measured_cost(best, &mix, n);
    let worst_measured = measured_cost(worst, &mix, n);
    assert!(
        best_measured <= worst_measured * 1.10,
        "wizard ranked {best:?} over {worst:?}, but measured {best_measured:.2} vs {worst_measured:.2} pages/op"
    );
}

#[test]
fn wizard_top_pick_beats_its_bottom_pick_read_only() {
    check_mix(OpMix::READ_ONLY, 1 << 14);
}

#[test]
fn wizard_top_pick_beats_its_bottom_pick_insert_only() {
    check_mix(OpMix::INSERT_ONLY, 1 << 14);
}

#[test]
fn wizard_top_pick_beats_its_bottom_pick_scan_heavy() {
    check_mix(OpMix::SCAN_HEAVY, 1 << 14);
}

#[test]
fn wizard_point_cost_predictions_order_correctly() {
    // For pure point reads the wizard's per-family point costs must rank
    // hash < btree < sorted < unsorted, and the measurements must agree.
    let n = 1 << 14;
    let env = Environment {
        n,
        ..Default::default()
    };
    let analytic: Vec<(Family, f64)> = [
        Family::HashIndex,
        Family::BTree,
        Family::SortedColumn,
        Family::UnsortedColumn,
    ]
    .iter()
    .map(|&f| (f, rum_core::wizard::profile(f, &env).point_cost))
    .collect();
    for w in analytic.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "analytic order broken: {:?} {} > {:?} {}",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
        let m0 = measured_cost(w[0].0, &OpMix::READ_ONLY, n);
        let m1 = measured_cost(w[1].0, &OpMix::READ_ONLY, n);
        assert!(
            m0 <= m1 * 1.10,
            "measured order broken: {:?} {m0:.2} > {:?} {m1:.2}",
            w[0].0,
            w[1].0
        );
    }
}
