//! Property-based tests for the probabilistic structures: one-sided error
//! guarantees must hold under any input.

use proptest::prelude::*;
use rum_sketch::{BloomFilter, CountMinSketch, QuotientFilter};

proptest! {
    #[test]
    fn bloom_never_forgets(keys in proptest::collection::hash_set(any::<u64>(), 1..500)) {
        let mut f = BloomFilter::new(keys.len(), 8.0);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn count_min_never_underestimates(
        adds in proptest::collection::vec((0u64..100, 1u64..10), 1..500)
    ) {
        let mut s = CountMinSketch::new(64, 4);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &adds {
            s.add(k, c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (&k, &c) in &truth {
            prop_assert!(s.estimate(k) >= c);
        }
    }

    #[test]
    fn quotient_filter_is_an_exact_fingerprint_multiset(
        ops in proptest::collection::vec((0u8..3, 0u64..200), 1..500)
    ) {
        let mut f = QuotientFilter::new(10, 6);
        let mut model: std::collections::HashMap<u64, u32> = Default::default();
        // Fingerprint geometry is stable as long as we stay under the
        // resize threshold; bail out before that.
        for &(op, k) in &ops {
            if f.load() > 0.7 {
                break;
            }
            let fp_key = k; // model keyed by fingerprint below
            match op {
                0 => {
                    f.insert(k);
                    *model.entry(fingerprint_of(&f, fp_key)).or_insert(0) += 1;
                }
                1 => {
                    let had = model.get(&fingerprint_of(&f, fp_key)).copied().unwrap_or(0) > 0;
                    prop_assert_eq!(f.remove(k), had);
                    if had {
                        *model.get_mut(&fingerprint_of(&f, fp_key)).unwrap() -= 1;
                    }
                }
                _ => {
                    let expect = model.get(&fingerprint_of(&f, fp_key)).copied().unwrap_or(0) > 0;
                    prop_assert_eq!(f.may_contain(k), expect);
                }
            }
        }
        let total: u32 = model.values().sum();
        prop_assert_eq!(f.len(), total as usize);
    }
}

/// Recover the fingerprint a filter assigns to a key by inserting into a
/// scratch clone and diffing (the geometry is (q=10, r=6) here, so the
/// fingerprint is the top 16 bits of the mixed hash — recompute directly).
fn fingerprint_of(_f: &QuotientFilter, key: u64) -> u64 {
    // Mirror of the crate's hash1 at q+r = 16 bits.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48
}
