//! # rum-sketch
//!
//! Probabilistic, space-optimized structures — the right corner of the
//! paper's Figure 1 ("lossy index structures such as Bloom filters, lossy
//! hash-based indexes like count-min sketches") and the §5 roadmap's
//! "updatable probabilistic data structures (like quotient filters)".
//!
//! These are building blocks rather than full access methods: the LSM-tree
//! hangs a [`BloomFilter`] off every run ("iterative logs enhanced by
//! probabilistic data structures that allows for more efficient reads ...
//! at the expense of additional space"), and the approximate-index example
//! absorbs updates through a [`QuotientFilter`].
//!
//! Every structure reports its exact memory footprint so experiments can
//! charge it as auxiliary space.

pub mod bloom;
pub mod countmin;
pub mod quotient;

pub use bloom::{BloomFilter, CountingBloom};
pub use countmin::CountMinSketch;
pub use quotient::QuotientFilter;

/// First hash for double hashing.
#[inline]
pub(crate) fn hash1(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Second hash for double hashing (must be odd to cycle all slots).
#[inline]
pub(crate) fn hash2(key: u64) -> u64 {
    key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1
}
