//! Bloom filters (Bloom, CACM 1970): "Space/Time Trade-offs in Hash Coding
//! with Allowable Errors" — the canonical space-optimized structure of the
//! paper's Figure 1.

use crate::{hash1, hash2};

/// A standard Bloom filter over `u64` keys with double hashing.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
    inserted: usize,
}

impl BloomFilter {
    /// Filter sized for `expected` keys at `bits_per_key` bits each; the
    /// optimal number of hash functions `k = bits_per_key · ln 2` is
    /// derived automatically.
    pub fn new(expected: usize, bits_per_key: f64) -> Self {
        assert!(bits_per_key > 0.0, "bits_per_key must be positive");
        let n_bits = ((expected.max(1) as f64 * bits_per_key).ceil() as u64).max(64);
        let k = ((bits_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        BloomFilter {
            bits: vec![0u64; n_bits.div_ceil(64) as usize],
            n_bits,
            k,
            inserted: 0,
        }
    }

    /// Number of hash functions in use.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Filter size in bytes (the auxiliary space it costs).
    pub fn size_bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }

    /// Keys inserted so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    #[inline]
    fn bit_positions(&self, key: u64) -> impl Iterator<Item = u64> + '_ {
        let h1 = hash1(key);
        let h2 = hash2(key);
        (0..self.k).map(move |i| h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let n_bits = self.n_bits;
        let h1 = hash1(key);
        let h2 = hash2(key);
        for i in 0..self.k {
            let b = h1.wrapping_add((i as u64).wrapping_mul(h2)) % n_bits;
            self.bits[(b / 64) as usize] |= 1 << (b % 64);
        }
        self.inserted += 1;
    }

    /// Whether `key` *may* have been inserted. `false` is authoritative.
    pub fn may_contain(&self, key: u64) -> bool {
        self.bit_positions(key)
            .all(|b| self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0)
    }

    /// Theoretical false-positive rate at the current fill.
    pub fn expected_fpr(&self) -> f64 {
        let m = self.n_bits as f64;
        let n = self.inserted as f64;
        let k = self.k as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Fraction of set bits (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.n_bits as f64
    }
}

/// A counting Bloom filter: 8-bit counters instead of bits, so deletions
/// are supported (at 8× the space).
#[derive(Clone, Debug)]
pub struct CountingBloom {
    counters: Vec<u8>,
    k: u32,
}

impl CountingBloom {
    pub fn new(expected: usize, counters_per_key: f64) -> Self {
        assert!(counters_per_key > 0.0);
        let n = ((expected.max(1) as f64 * counters_per_key).ceil() as usize).max(64);
        let k = ((counters_per_key * std::f64::consts::LN_2).round() as u32).clamp(1, 30);
        CountingBloom {
            counters: vec![0u8; n],
            k,
        }
    }

    pub fn size_bytes(&self) -> u64 {
        self.counters.len() as u64
    }

    #[inline]
    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = hash1(key);
        let h2 = hash2(key);
        let n = self.counters.len() as u64;
        (0..self.k).map(move |i| (h1.wrapping_add((i as u64).wrapping_mul(h2)) % n) as usize)
    }

    pub fn insert(&mut self, key: u64) {
        let pos: Vec<usize> = self.positions(key).collect();
        for p in pos {
            self.counters[p] = self.counters[p].saturating_add(1);
        }
    }

    /// Remove one occurrence. Only call for keys actually inserted
    /// (removing a never-inserted key can introduce false negatives).
    pub fn remove(&mut self, key: u64) {
        let pos: Vec<usize> = self.positions(key).collect();
        for p in pos {
            self.counters[p] = self.counters[p].saturating_sub(1);
        }
    }

    pub fn may_contain(&self, key: u64) -> bool {
        self.positions(key).all(|p| self.counters[p] > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(10_000, 10.0);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        for k in 0..10_000u64 {
            assert!(f.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let mut f = BloomFilter::new(10_000, 10.0);
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let fp = (1_000_000..1_100_000u64)
            .filter(|&k| f.may_contain(k))
            .count();
        let rate = fp as f64 / 100_000.0;
        // ~1% at 10 bits/key; allow generous slack.
        assert!(rate < 0.03, "fpr {rate} too high");
        assert!((rate - f.expected_fpr()).abs() < 0.02);
    }

    #[test]
    fn more_bits_fewer_false_positives() {
        let rate = |bits: f64| {
            let mut f = BloomFilter::new(5_000, bits);
            for k in 0..5_000u64 {
                f.insert(k);
            }
            (1_000_000..1_050_000u64)
                .filter(|&k| f.may_contain(k))
                .count() as f64
                / 50_000.0
        };
        let r2 = rate(2.0);
        let r8 = rate(8.0);
        let r16 = rate(16.0);
        assert!(r2 > r8, "{r2} <= {r8}");
        assert!(r8 > r16, "{r8} <= {r16}");
    }

    #[test]
    fn size_scales_with_bits_per_key() {
        let small = BloomFilter::new(1000, 4.0).size_bytes();
        let large = BloomFilter::new(1000, 16.0).size_bytes();
        assert!(large >= 3 * small);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::new(100, 10.0);
        assert!(!f.may_contain(0));
        assert!(!f.may_contain(12345));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = BloomFilter::new(1000, 10.0);
        let before = f.fill_ratio();
        for k in 0..1000u64 {
            f.insert(k);
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 0.6, "should be near 50% at design point");
    }

    #[test]
    fn counting_bloom_supports_deletion() {
        let mut f = CountingBloom::new(1000, 10.0);
        for k in 0..1000u64 {
            f.insert(k);
        }
        assert!(f.may_contain(500));
        f.remove(500);
        assert!(
            !f.may_contain(500) || {
                // Residual collisions may keep it positive; removing again the
                // same key must not underflow others.
                true
            }
        );
        // Other keys keep their no-false-negative guarantee.
        for k in 0..1000u64 {
            if k != 500 {
                assert!(f.may_contain(k), "false negative for {k} after delete");
            }
        }
    }

    #[test]
    fn counting_bloom_double_insert_survives_one_remove() {
        let mut f = CountingBloom::new(100, 10.0);
        f.insert(7);
        f.insert(7);
        f.remove(7);
        assert!(f.may_contain(7));
        f.remove(7);
        assert!(!f.may_contain(7));
    }
}
