//! The count-min sketch (Cormode & Muthukrishnan): a lossy frequency
//! summary — the paper's example of a "lossy hash-based index".

use crate::{hash1, hash2};

/// A `depth × width` grid of counters; estimates are upper bounds.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    counters: Vec<u64>,
    width: usize,
    depth: usize,
    total: u64,
}

impl CountMinSketch {
    /// Sketch with error `epsilon` (relative to the total count) at
    /// confidence `1 - delta`: `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth)
    }

    /// Sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0);
        CountMinSketch {
            counters: vec![0; width * depth],
            width,
            depth,
            total: 0,
        }
    }

    pub fn size_bytes(&self) -> u64 {
        (self.counters.len() * 8) as u64
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total count added across all keys.
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn slot(&self, row: usize, key: u64) -> usize {
        let h = hash1(key).wrapping_add((row as u64).wrapping_mul(hash2(key)));
        row * self.width + (h % self.width as u64) as usize
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let s = self.slot(row, key);
            self.counters[s] += count;
        }
        self.total += count;
    }

    /// Estimated count of `key` — never an underestimate.
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn never_underestimates() {
        let mut s = CountMinSketch::with_error(0.01, 0.01);
        let mut truth = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let k = rng.gen_range(0..500u64);
            let c = rng.gen_range(1..5u64);
            s.add(k, c);
            *truth.entry(k).or_insert(0u64) += c;
        }
        for (&k, &c) in &truth {
            assert!(s.estimate(k) >= c, "underestimate for {k}");
        }
    }

    #[test]
    fn error_is_bounded() {
        let eps = 0.005;
        let mut s = CountMinSketch::with_error(eps, 0.01);
        let mut truth = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50_000 {
            let k = rng.gen_range(0..2000u64);
            s.add(k, 1);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        let bound = (eps * s.total() as f64).ceil() as u64;
        let violations = truth
            .iter()
            .filter(|(&k, &c)| s.estimate(k) > c + bound)
            .count();
        // With delta = 1%, allow a small number of outliers.
        assert!(
            violations <= truth.len() / 20,
            "{violations} of {} exceed the ε bound",
            truth.len()
        );
    }

    #[test]
    fn unseen_keys_estimate_small() {
        let mut s = CountMinSketch::with_error(0.001, 0.01);
        for k in 0..1000u64 {
            s.add(k, 10);
        }
        let worst = (10_000..11_000u64).map(|k| s.estimate(k)).max().unwrap();
        assert!(worst <= (0.001 * s.total() as f64).ceil() as u64 * 4);
    }

    #[test]
    fn dimensions_from_error_params() {
        let s = CountMinSketch::with_error(0.01, 0.05);
        assert!(s.width() >= 271); // e / 0.01
        assert!(s.depth() >= 3); // ln 20
    }

    #[test]
    fn space_shrinks_with_looser_error() {
        let tight = CountMinSketch::with_error(0.001, 0.01).size_bytes();
        let loose = CountMinSketch::with_error(0.05, 0.01).size_bytes();
        assert!(loose < tight / 10);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = CountMinSketch::new(100, 4);
        assert_eq!(s.estimate(42), 0);
        assert_eq!(s.total(), 0);
    }
}
