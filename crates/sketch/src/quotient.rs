//! A quotient filter (Bender et al.'s formulation of Cleary's compact hash
//! table) — the §5 roadmap's updatable probabilistic structure:
//! "Approximate (tree) indexing that supports updates ... by absorbing them
//! in updatable probabilistic data structures (like quotient filters)."
//!
//! Unlike a Bloom filter, a quotient filter supports **deletion** and
//! **resizing**, because it stores the fingerprints themselves: a p-bit
//! fingerprint splits into a q-bit *quotient* (the canonical slot) and an
//! r-bit *remainder* (stored in the slot). Collision resolution is linear
//! probing with three metadata bits per slot (`occupied`, `continuation`,
//! `shifted`) that preserve enough structure to recover every fingerprint
//! exactly — the filter behaves as an exact multiset of p-bit
//! fingerprints, with false positives only from fingerprint collisions.

use crate::hash1;

/// Grow when entries exceed this fraction of slots.
const MAX_LOAD: f64 = 0.75;

/// The quotient filter.
#[derive(Clone, Debug)]
pub struct QuotientFilter {
    qbits: u32,
    rbits: u32,
    remainders: Vec<u64>,
    occupied: Vec<bool>,
    continuation: Vec<bool>,
    shifted: Vec<bool>,
    entries: usize,
}

impl QuotientFilter {
    /// Filter with `2^qbits` slots and `rbits`-bit remainders. The
    /// fingerprint is `qbits + rbits` bits; false-positive rate is about
    /// `2^-rbits × load`.
    pub fn new(qbits: u32, rbits: u32) -> Self {
        assert!(qbits >= 3 && rbits >= 2, "need qbits >= 3 and rbits >= 2");
        assert!(qbits + rbits <= 60, "fingerprint must fit in 60 bits");
        let slots = 1usize << qbits;
        QuotientFilter {
            qbits,
            rbits,
            remainders: vec![0; slots],
            occupied: vec![false; slots],
            continuation: vec![false; slots],
            shifted: vec![false; slots],
            entries: 0,
        }
    }

    /// Filter sized for `expected` keys with ~`2^-rbits` false positives.
    pub fn with_capacity(expected: usize, rbits: u32) -> Self {
        let qbits = (expected.max(8) as f64 / MAX_LOAD).log2().ceil().max(3.0) as u32;
        Self::new(qbits, rbits)
    }

    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    pub fn slots(&self) -> usize {
        1 << self.qbits
    }

    /// Quotient bits (log2 of the slot count).
    pub fn qbits(&self) -> u32 {
        self.qbits
    }

    /// Remainder bits stored per slot. A probe touches one `(rbits + 3)`-bit
    /// slot cluster, which is what a caller pricing probes in bytes needs.
    pub fn rbits(&self) -> u32 {
        self.rbits
    }

    pub fn load(&self) -> f64 {
        self.entries as f64 / self.slots() as f64
    }

    /// Logical size in bytes: `(r + 3)` bits per slot, as a bit-packed
    /// implementation would use.
    pub fn size_bytes(&self) -> u64 {
        ((self.slots() as u64) * (self.rbits as u64 + 3)).div_ceil(8)
    }

    #[inline]
    fn fingerprint(&self, key: u64) -> u64 {
        hash1(key) >> (64 - (self.qbits + self.rbits))
    }

    #[inline]
    fn quot(&self, f: u64) -> usize {
        (f >> self.rbits) as usize
    }

    #[inline]
    fn rem(&self, f: u64) -> u64 {
        f & ((1u64 << self.rbits) - 1)
    }

    #[inline]
    fn inc(&self, i: usize) -> usize {
        (i + 1) & (self.slots() - 1)
    }

    #[inline]
    fn dec(&self, i: usize) -> usize {
        (i + self.slots() - 1) & (self.slots() - 1)
    }

    #[inline]
    fn slot_empty(&self, i: usize) -> bool {
        !self.occupied[i] && !self.continuation[i] && !self.shifted[i]
    }

    /// Start position of the run for canonical slot `fq`
    /// (requires `occupied[fq]`).
    fn find_run_start(&self, fq: usize) -> usize {
        debug_assert!(self.occupied[fq]);
        // Walk left to the cluster start.
        let mut b = fq;
        while self.shifted[b] {
            b = self.dec(b);
        }
        // Walk runs forward until we reach fq's run.
        let mut s = b;
        let mut q = b;
        while q != fq {
            // Skip the current run.
            loop {
                s = self.inc(s);
                if !self.continuation[s] {
                    break;
                }
            }
            // Next occupied canonical slot.
            loop {
                q = self.inc(q);
                if self.occupied[q] {
                    break;
                }
            }
        }
        s
    }

    /// Insert `(r, cont)` at `pos` (canonical slot `fq`), rippling
    /// displaced entries right. `fix_displaced_head` demotes the entry
    /// previously at `pos` to a continuation (used when the new entry
    /// becomes its run's head).
    fn shift_insert(
        &mut self,
        fq: usize,
        pos: usize,
        r: u64,
        cont: bool,
        fix_displaced_head: bool,
    ) {
        let mut i = pos;
        let mut r_cur = r;
        let mut c_cur = cont;
        let mut s_cur = pos != fq;
        loop {
            let was_empty = self.slot_empty(i);
            let old = (self.remainders[i], self.continuation[i]);
            self.remainders[i] = r_cur;
            self.continuation[i] = c_cur;
            self.shifted[i] = s_cur;
            if was_empty {
                self.entries += 1;
                return;
            }
            r_cur = old.0;
            c_cur = if i == pos && fix_displaced_head {
                true
            } else {
                old.1
            };
            s_cur = true;
            i = self.inc(i);
        }
    }

    /// Insert a key (multiset semantics: duplicates accumulate).
    pub fn insert(&mut self, key: u64) {
        if self.load() >= MAX_LOAD {
            self.grow();
        }
        let f = self.fingerprint(key);
        self.insert_fingerprint(f);
    }

    fn insert_fingerprint(&mut self, f: u64) {
        let fq = self.quot(f);
        let fr = self.rem(f);
        if self.slot_empty(fq) && !self.occupied[fq] {
            self.remainders[fq] = fr;
            self.occupied[fq] = true;
            self.entries += 1;
            return;
        }
        let was_occupied = self.occupied[fq];
        self.occupied[fq] = true;
        let run_start = self.find_run_start(fq);
        if was_occupied {
            // Keep remainders sorted within the run.
            let mut p = run_start;
            let mut found_ge = false;
            loop {
                if self.remainders[p] >= fr {
                    found_ge = true;
                    break;
                }
                let n = self.inc(p);
                if !self.continuation[n] {
                    p = n; // one past the run's last entry
                    break;
                }
                p = n;
            }
            if found_ge {
                self.shift_insert(fq, p, fr, p != run_start, true);
            } else {
                self.shift_insert(fq, p, fr, true, false);
            }
        } else {
            self.shift_insert(fq, run_start, fr, false, false);
        }
    }

    /// Whether `key` *may* be present. `false` is authoritative.
    pub fn may_contain(&self, key: u64) -> bool {
        let f = self.fingerprint(key);
        let fq = self.quot(f);
        let fr = self.rem(f);
        if !self.occupied[fq] {
            return false;
        }
        let mut p = self.find_run_start(fq);
        loop {
            match self.remainders[p].cmp(&fr) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Greater => return false, // sorted runs
                std::cmp::Ordering::Less => {}
            }
            p = self.inc(p);
            if !self.continuation[p] {
                return false;
            }
        }
    }

    /// Remove one occurrence of `key`. Returns whether a matching
    /// fingerprint was found. Only delete keys that were inserted —
    /// deleting a colliding fingerprint of a different key removes that
    /// fingerprint (the standard quotient-filter caveat).
    pub fn remove(&mut self, key: u64) -> bool {
        let f = self.fingerprint(key);
        let fq = self.quot(f);
        let fr = self.rem(f);
        if !self.occupied[fq] {
            return false;
        }
        let run_start = self.find_run_start(fq);
        // Locate the fingerprint within the (sorted) run.
        let mut p = run_start;
        loop {
            match self.remainders[p].cmp(&fr) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {
                    let n = self.inc(p);
                    if !self.continuation[n] {
                        return false;
                    }
                    p = n;
                }
            }
        }
        let deleting_head = p == run_start;
        let after = self.inc(p);
        let run_survives = !self.slot_empty(after) && self.continuation[after];
        if deleting_head && !run_survives {
            self.occupied[fq] = false;
        }
        // Shift the rest of the cluster left.
        let mut curr_q = fq;
        let mut i = p;
        loop {
            let n = self.inc(i);
            if self.slot_empty(n) || !self.shifted[n] {
                self.remainders[i] = 0;
                self.continuation[i] = false;
                self.shifted[i] = false;
                break;
            }
            let mut c = self.continuation[n];
            if !c {
                // `n` heads the next run: advance to its quotient.
                loop {
                    curr_q = self.inc(curr_q);
                    if self.occupied[curr_q] {
                        break;
                    }
                }
            }
            if i == p && deleting_head && c {
                c = false; // promote the second element to run head
            }
            self.remainders[i] = self.remainders[n];
            self.continuation[i] = c;
            self.shifted[i] = i != curr_q;
            i = n;
        }
        self.entries -= 1;
        true
    }

    /// Every stored fingerprint (quotient ‖ remainder), in no particular
    /// order. Exact: this is what makes the filter resizable and mergeable.
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.entries);
        for q in 0..self.slots() {
            if !self.occupied[q] {
                continue;
            }
            let mut p = self.find_run_start(q);
            loop {
                out.push(((q as u64) << self.rbits) | self.remainders[p]);
                p = self.inc(p);
                if !self.continuation[p] {
                    break;
                }
            }
        }
        out
    }

    /// Double the slot count by moving one fingerprint bit from the
    /// remainder to the quotient (the fingerprint itself is unchanged, so
    /// no rehashing of keys is needed).
    fn grow(&mut self) {
        assert!(self.rbits > 2, "cannot grow: remainder bits exhausted");
        let fps = self.fingerprints();
        let mut bigger = QuotientFilter::new(self.qbits + 1, self.rbits - 1);
        for f in fps {
            bigger.insert_fingerprint(f);
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn no_false_negatives() {
        let mut f = QuotientFilter::new(12, 8);
        for k in 0..2000u64 {
            f.insert(k);
        }
        for k in 0..2000u64 {
            assert!(f.may_contain(k), "false negative for {k}");
        }
        assert_eq!(f.len(), 2000);
    }

    #[test]
    fn false_positive_rate_tracks_rbits() {
        let rate = |rbits: u32| {
            let mut f = QuotientFilter::new(13, rbits);
            for k in 0..4000u64 {
                f.insert(k);
            }
            (1_000_000..1_050_000u64)
                .filter(|&k| f.may_contain(k))
                .count() as f64
                / 50_000.0
        };
        let r4 = rate(4);
        let r12 = rate(12);
        assert!(r12 < r4 / 4.0, "r4={r4} r12={r12}");
        assert!(r12 < 0.01);
    }

    #[test]
    fn deletion_really_deletes() {
        let mut f = QuotientFilter::new(10, 10);
        for k in 0..500u64 {
            f.insert(k);
        }
        for k in (0..500u64).step_by(2) {
            assert!(f.remove(k), "remove {k}");
        }
        assert_eq!(f.len(), 250);
        for k in (1..500u64).step_by(2) {
            assert!(f.may_contain(k), "survivor {k} lost");
        }
        let false_pos = (0..500u64).step_by(2).filter(|&k| f.may_contain(k)).count();
        // Deleted keys should now miss (up to fingerprint collisions).
        assert!(false_pos < 10, "{false_pos} deleted keys still positive");
    }

    #[test]
    fn remove_of_absent_key_is_false() {
        let mut f = QuotientFilter::new(8, 8);
        f.insert(5);
        assert!(!f.remove(6));
        assert!(f.remove(5));
        assert!(!f.remove(5));
        assert!(f.is_empty());
    }

    #[test]
    fn grows_transparently() {
        let mut f = QuotientFilter::new(6, 12); // 64 slots
        for k in 0..5000u64 {
            f.insert(k);
        }
        assert_eq!(f.len(), 5000);
        assert!(f.slots() >= 5000);
        for k in (0..5000u64).step_by(37) {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn behaves_exactly_like_a_fingerprint_multiset() {
        // The QF is an exact multiset of fingerprints; model it as such.
        let mut f = QuotientFilter::new(10, 6);
        let mut model: std::collections::HashMap<u64, u32> = Default::default();
        let mut rng = StdRng::seed_from_u64(77);
        let fp = |qf: &QuotientFilter, k: u64| qf.fingerprint(k);
        for _ in 0..30_000 {
            let k = rng.gen_range(0..800u64);
            match rng.gen_range(0..3) {
                0 => {
                    // Track against the *current* geometry: skip model ops
                    // across grows by keeping load below the threshold.
                    if f.load() < 0.70 {
                        f.insert(k);
                        *model.entry(fp(&f, k)).or_insert(0) += 1;
                    }
                }
                1 => {
                    let had = model.get(&fp(&f, k)).copied().unwrap_or(0) > 0;
                    assert_eq!(f.remove(k), had, "remove {k}");
                    if had {
                        *model.get_mut(&fp(&f, k)).unwrap() -= 1;
                    }
                }
                _ => {
                    let expect = model.get(&fp(&f, k)).copied().unwrap_or(0) > 0;
                    assert_eq!(f.may_contain(k), expect, "contains {k}");
                }
            }
            let model_count: u32 = model.values().sum();
            assert_eq!(f.len(), model_count as usize);
        }
    }

    #[test]
    fn fingerprints_roundtrip() {
        let mut f = QuotientFilter::new(9, 9);
        let keys: Vec<u64> = (0..300).map(|i| i * 977).collect();
        for &k in &keys {
            f.insert(k);
        }
        let mut got = f.fingerprints();
        got.sort_unstable();
        let mut expect: Vec<u64> = keys.iter().map(|&k| f.fingerprint(k)).collect();
        expect.sort_unstable();
        // Fingerprints may collide; compare as multisets.
        assert_eq!(got, expect);
    }

    #[test]
    fn duplicates_accumulate_and_delete_one_at_a_time() {
        let mut f = QuotientFilter::new(8, 8);
        f.insert(42);
        f.insert(42);
        assert_eq!(f.len(), 2);
        assert!(f.remove(42));
        assert!(f.may_contain(42));
        assert!(f.remove(42));
        assert!(!f.may_contain(42));
    }

    #[test]
    fn size_is_compact() {
        let f = QuotientFilter::new(10, 8);
        // 1024 slots × 11 bits = 1408 bytes.
        assert_eq!(f.size_bytes(), 1408);
    }

    #[test]
    fn heavy_clustering_stress() {
        // Keys engineered to collide into few quotients, maximizing shifts.
        let mut f = QuotientFilter::new(8, 16);
        let mut inserted = Vec::new();
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..150 {
            let k: u64 = rng.gen_range(0..400);
            f.insert(k);
            inserted.push(k);
        }
        for &k in &inserted {
            assert!(f.may_contain(k));
        }
        // Delete everything in random order.
        use rand::seq::SliceRandom;
        inserted.shuffle(&mut rng);
        for &k in &inserted {
            assert!(f.remove(k), "remove {k}");
        }
        assert!(f.is_empty());
        assert!(f.fingerprints().is_empty());
    }
}

#[cfg(test)]
mod fpr {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn false_positive_rate_matches_theory_at_small_rbits() {
        // FPR ≈ load × 2^-rbits; at load 0.5 and r = 3 that is ~6.25%.
        let mut f = QuotientFilter::with_capacity(1024, 3);
        for k in 0..1024u64 {
            f.insert(k * 2);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let fp = (0..100_000)
            .filter(|_| f.may_contain(rng.gen::<u64>()))
            .count();
        let rate = fp as f64 / 100_000.0;
        assert!((rate - 0.0625).abs() < 0.02, "fpr {rate} far from theory");
    }
}
