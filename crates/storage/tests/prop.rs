//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use rum_core::{Result, RumError};
use rum_storage::{
    BlockDevice, BufferPool, CheckedDevice, DeviceProfile, FaultDevice, FaultInjector, FaultPlan,
    FaultProfile, HierarchySpec, LevelSpec, LruSet, MemDevice, MemoryHierarchy, PageBuf, PageId,
    Pager, RetryPolicy,
};

/// Any sequence of device ops applied to a raw device, a buffered device,
/// and a hierarchy must read back identical data.
fn apply_ops(ops: &[(u8, u8, u64)]) -> Result<()> {
    let mut raw = MemDevice::new();
    let mut buf = BufferPool::new(MemDevice::new(), 3);
    let mut hier = MemoryHierarchy::new(HierarchySpec {
        caches: vec![
            LevelSpec::new("l1", 2, DeviceProfile::CACHE),
            LevelSpec::new("l2", 5, DeviceProfile::DRAM),
        ],
        storage_profile: DeviceProfile::SSD,
    });
    let mut ids: Vec<(PageId, PageId, PageId)> = Vec::new();

    for &(op, slot, val) in ops {
        match op % 3 {
            0 => {
                ids.push((raw.allocate()?, buf.allocate()?, hier.allocate()?));
            }
            1 if !ids.is_empty() => {
                let (a, b, c) = ids[slot as usize % ids.len()];
                let mut page = PageBuf::zeroed();
                page.write_u64(0, val);
                raw.write_page(a, &page)?;
                buf.write_page(b, &page)?;
                hier.write_page(c, &page)?;
            }
            _ if !ids.is_empty() => {
                let (a, b, c) = ids[slot as usize % ids.len()];
                let x = raw.read_page(a)?.read_u64(0);
                let y = buf.read_page(b)?.read_u64(0);
                let z = hier.read_page(c)?.read_u64(0);
                assert_eq!(x, y, "buffer pool diverged");
                assert_eq!(x, z, "hierarchy diverged");
            }
            _ => {}
        }
    }
    // Final full comparison after sync.
    buf.sync()?;
    hier.sync()?;
    for &(a, b, c) in &ids {
        let x = raw.read_page(a)?.read_u64(0);
        let y = buf.read_page(b)?.read_u64(0);
        let z = hier.read_page(c)?.read_u64(0);
        assert_eq!(x, y);
        assert_eq!(x, z);
    }
    Ok(())
}

proptest! {
    #[test]
    fn cached_devices_never_diverge_from_raw(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<u64>()), 1..200)
    ) {
        apply_ops(&ops).unwrap();
    }

    /// Seal → verify is the identity for arbitrary page bytes: whatever
    /// goes through a CheckedDevice comes back bit-identical, across
    /// rewrites of the same page.
    #[test]
    fn checked_page_roundtrip(
        pages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), rum_core::PAGE_SIZE..rum_core::PAGE_SIZE + 1),
            1..8,
        )
    ) {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        for bytes in &pages {
            let page = PageBuf::from_bytes(bytes);
            dev.write_page(id, &page).unwrap();
            let back = dev.read_page(id).unwrap();
            prop_assert_eq!(back.as_slice(), bytes.as_slice());
        }
    }

    /// Flip any single bit anywhere in a sealed page: the next read must
    /// fail with CorruptPage — never serve the damaged bytes.
    #[test]
    fn any_single_bitflip_is_detected(
        bytes in proptest::collection::vec(any::<u8>(), rum_core::PAGE_SIZE..rum_core::PAGE_SIZE + 1),
        bit in 0usize..(rum_core::PAGE_SIZE * 8),
    ) {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        dev.write_page(id, &PageBuf::from_bytes(&bytes)).unwrap();
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        dev.inner_mut().write_page(id, &PageBuf::from_bytes(&damaged)).unwrap();
        match dev.read_page(id) {
            Err(RumError::CorruptPage { id: pid, stored, computed }) => {
                prop_assert_eq!(pid, id.0);
                prop_assert_ne!(stored, computed);
            }
            Ok(_) => prop_assert!(false, "single-bit damage served as truth"),
            Err(other) => prop_assert!(false, "wrong error class: {:?}", other),
        }
    }

    /// Under any seeded transient-fault profile, a retried read either
    /// converges (when max_attempts exceeds the burst bound) or errors
    /// after exactly its bounded attempts — and the whole outcome
    /// sequence is deterministic per seed.
    #[test]
    fn retry_converges_or_errors(
        seed in any::<u64>(),
        ppm in 0u32..600_000,
        max_burst in 1u32..4,
        attempts in 1u32..6,
        reads in 1usize..60,
    ) {
        let run = || {
            let inj = FaultInjector::with_profile(
                FaultPlan::None,
                Some(FaultProfile {
                    write_error_ppm: 0,
                    ..FaultProfile::transient(seed, ppm, max_burst)
                }),
            );
            let tracker = rum_core::CostTracker::new();
            let mut pager = Pager::new(
                FaultDevice::new(MemDevice::new(), std::sync::Arc::clone(&inj)),
                std::sync::Arc::clone(&tracker),
            );
            pager.set_retry_policy(RetryPolicy::attempts(attempts));
            let id = pager.allocate().unwrap();
            pager.write(id, rum_core::DataClass::Base, &PageBuf::zeroed()).unwrap();
            let outcomes: Vec<bool> = (0..reads)
                .map(|_| match pager.read(id, rum_core::DataClass::Base) {
                    Ok(_) => true,
                    Err(RumError::Transient(_)) => false,
                    Err(other) => panic!("unexpected error {other:?}"),
                })
                .collect();
            (outcomes, tracker.snapshot())
        };
        let (outcomes, costs) = run();
        if attempts > max_burst {
            prop_assert!(
                outcomes.iter().all(|&ok| ok),
                "attempts {} > max_burst {} must converge",
                attempts, max_burst
            );
        }
        // Attempts are bounded: at most `attempts` charged page touches
        // per logical read (plus the one seeding write).
        prop_assert!(costs.page_reads <= reads as u64 * u64::from(attempts));
        // Deterministic per seed: bit-identical outcomes and costs.
        let (outcomes2, costs2) = run();
        prop_assert_eq!(outcomes, outcomes2);
        prop_assert_eq!(costs, costs2);
    }

    #[test]
    fn lru_set_matches_naive_model(
        capacity in 1usize..12,
        keys in proptest::collection::vec(0u64..24, 1..300),
    ) {
        let mut lru = LruSet::new(capacity);
        // Naive model: Vec ordered MRU-first.
        let mut model: Vec<u64> = Vec::new();
        for k in keys {
            if let Some(pos) = model.iter().position(|&x| x == k) {
                model.remove(pos);
            }
            model.insert(0, k);
            let evicted = lru.insert(k, false);
            if model.len() > capacity {
                let victim = model.pop().unwrap();
                prop_assert_eq!(evicted.map(|(v, _)| v), Some(victim));
            } else {
                prop_assert!(evicted.is_none());
            }
            prop_assert_eq!(lru.len(), model.len());
            prop_assert_eq!(lru.keys(), model.clone());
        }
    }
}
