//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use rum_core::Result;
use rum_storage::{
    BlockDevice, BufferPool, DeviceProfile, HierarchySpec, LevelSpec, LruSet, MemDevice,
    MemoryHierarchy, PageBuf, PageId,
};

/// Any sequence of device ops applied to a raw device, a buffered device,
/// and a hierarchy must read back identical data.
fn apply_ops(ops: &[(u8, u8, u64)]) -> Result<()> {
    let mut raw = MemDevice::new();
    let mut buf = BufferPool::new(MemDevice::new(), 3);
    let mut hier = MemoryHierarchy::new(HierarchySpec {
        caches: vec![
            LevelSpec::new("l1", 2, DeviceProfile::CACHE),
            LevelSpec::new("l2", 5, DeviceProfile::DRAM),
        ],
        storage_profile: DeviceProfile::SSD,
    });
    let mut ids: Vec<(PageId, PageId, PageId)> = Vec::new();

    for &(op, slot, val) in ops {
        match op % 3 {
            0 => {
                ids.push((raw.allocate()?, buf.allocate()?, hier.allocate()?));
            }
            1 if !ids.is_empty() => {
                let (a, b, c) = ids[slot as usize % ids.len()];
                let mut page = PageBuf::zeroed();
                page.write_u64(0, val);
                raw.write_page(a, &page)?;
                buf.write_page(b, &page)?;
                hier.write_page(c, &page)?;
            }
            _ if !ids.is_empty() => {
                let (a, b, c) = ids[slot as usize % ids.len()];
                let x = raw.read_page(a)?.read_u64(0);
                let y = buf.read_page(b)?.read_u64(0);
                let z = hier.read_page(c)?.read_u64(0);
                assert_eq!(x, y, "buffer pool diverged");
                assert_eq!(x, z, "hierarchy diverged");
            }
            _ => {}
        }
    }
    // Final full comparison after sync.
    buf.sync()?;
    hier.sync()?;
    for &(a, b, c) in &ids {
        let x = raw.read_page(a)?.read_u64(0);
        let y = buf.read_page(b)?.read_u64(0);
        let z = hier.read_page(c)?.read_u64(0);
        assert_eq!(x, y);
        assert_eq!(x, z);
    }
    Ok(())
}

proptest! {
    #[test]
    fn cached_devices_never_diverge_from_raw(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<u64>()), 1..200)
    ) {
        apply_ops(&ops).unwrap();
    }

    #[test]
    fn lru_set_matches_naive_model(
        capacity in 1usize..12,
        keys in proptest::collection::vec(0u64..24, 1..300),
    ) {
        let mut lru = LruSet::new(capacity);
        // Naive model: Vec ordered MRU-first.
        let mut model: Vec<u64> = Vec::new();
        for k in keys {
            if let Some(pos) = model.iter().position(|&x| x == k) {
                model.remove(pos);
            }
            model.insert(0, k);
            let evicted = lru.insert(k, false);
            if model.len() > capacity {
                let victim = model.pop().unwrap();
                prop_assert_eq!(evicted.map(|(v, _)| v), Some(victim));
            } else {
                prop_assert!(evicted.is_none());
            }
            prop_assert_eq!(lru.len(), model.len());
            prop_assert_eq!(lru.keys(), model.clone());
        }
    }
}
