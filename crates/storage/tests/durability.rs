//! Property tests for the durability layer: recovery is idempotent and
//! always rebuilds exactly the committed prefix, including when recovery
//! itself is interrupted.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use rum_core::{
    check_bulk_input, AccessMethod, CostTracker, DataClass, Key, Record, Result, RumError,
    SpaceProfile, Value, RECORD_SIZE,
};
use rum_storage::{Durable, FaultInjector, FaultPlan};

/// Minimal correct method: a BTreeMap with byte-exact base charges.
struct Toy {
    data: BTreeMap<Key, Value>,
    tracker: Arc<CostTracker>,
}

impl Toy {
    fn new() -> Self {
        Toy {
            data: BTreeMap::new(),
            tracker: CostTracker::new(),
        }
    }
}

impl AccessMethod for Toy {
    fn name(&self) -> String {
        "toy".into()
    }
    fn len(&self) -> usize {
        self.data.len()
    }
    fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }
    fn space_profile(&self) -> SpaceProfile {
        SpaceProfile::from_physical(self.data.len(), (self.data.len() * RECORD_SIZE) as u64)
    }
    fn get_impl(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.data.get(&key).copied())
    }
    fn range_impl(&mut self, lo: Key, hi: Key) -> Result<Vec<Record>> {
        Ok(self
            .data
            .range(lo..=hi)
            .map(|(&k, &v)| Record::new(k, v))
            .collect())
    }
    fn insert_impl(&mut self, key: Key, value: Value) -> Result<()> {
        self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
        self.data.insert(key, value);
        Ok(())
    }
    fn update_impl(&mut self, key: Key, value: Value) -> Result<bool> {
        match self.data.get_mut(&key) {
            Some(v) => {
                self.tracker.write(DataClass::Base, RECORD_SIZE as u64);
                *v = value;
                Ok(true)
            }
            None => Ok(false),
        }
    }
    fn delete_impl(&mut self, key: Key) -> Result<bool> {
        Ok(self.data.remove(&key).is_some())
    }
    fn bulk_load_impl(&mut self, records: &[Record]) -> Result<()> {
        check_bulk_input(records)?;
        self.tracker
            .write(DataClass::Base, (records.len() * RECORD_SIZE) as u64);
        self.data = records.iter().map(|r| (r.key, r.value)).collect();
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
enum WriteOp {
    Insert(u8, u16),
    Update(u8, u16),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = WriteOp> {
    prop_oneof![
        3 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| WriteOp::Insert(k, v)),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(k, v)| WriteOp::Update(k, v)),
        1 => any::<u8>().prop_map(WriteOp::Delete),
    ]
}

fn apply<M: AccessMethod>(m: &mut M, op: WriteOp) -> Result<()> {
    match op {
        WriteOp::Insert(k, v) => m.insert(k as Key, v as Value),
        WriteOp::Update(k, v) => m.update(k as Key, v as Value).map(|_| ()),
        WriteOp::Delete(k) => m.delete(k as Key).map(|_| ()),
    }
}

fn apply_to_model(model: &mut BTreeMap<Key, Value>, op: WriteOp) {
    match op {
        WriteOp::Insert(k, v) => {
            model.insert(k as Key, v as Value);
        }
        WriteOp::Update(k, v) => {
            if let Some(slot) = model.get_mut(&(k as Key)) {
                *slot = v as Value;
            }
        }
        WriteOp::Delete(k) => {
            model.remove(&(k as Key));
        }
    }
}

fn contents<M: AccessMethod>(m: &mut M) -> Vec<Record> {
    m.range_impl(0, Key::MAX).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash at an arbitrary WAL byte, then: recovery equals the model fed
    /// only the acknowledged ops, a second recovery changes nothing, and a
    /// recovery interrupted after an arbitrary number of replayed records
    /// followed by a full recovery converges to the same state.
    #[test]
    fn recovery_is_exact_and_idempotent(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        cut_frac in 0.0f64..1.0,
        partial in any::<usize>(),
    ) {
        // Reference run to learn the WAL footprint of this op sequence.
        let mut reference = Durable::new(Toy::new);
        for &op in &ops {
            apply(&mut reference, op).unwrap();
        }
        let total = reference.wal().synced_total();
        let cut = (total as f64 * cut_frac) as u64;

        let inj = FaultInjector::new(FaultPlan::torn_at(cut));
        let mut d = Durable::with_injector(Toy::new, inj);
        let mut model = BTreeMap::new();
        for &op in &ops {
            match apply(&mut d, op) {
                Ok(()) => apply_to_model(&mut model, op),
                Err(RumError::Crash(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }

        let report = d.recover().unwrap();
        prop_assert!(report.complete);
        let want: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        prop_assert_eq!(&contents(&mut d), &want, "recovery == acknowledged prefix");
        let profile = d.space_profile();

        // Idempotence: recovering again yields the same structure and the
        // same space profile.
        d.recover().unwrap();
        prop_assert_eq!(&contents(&mut d), &want);
        prop_assert_eq!(d.space_profile(), profile);

        // Crash during recovery: replay an arbitrary prefix of the
        // committed records, then recover fully. Same outcome.
        let stop = partial % (report.committed_ops + 1);
        let partial_report = d.recover_prefix(stop).unwrap();
        prop_assert_eq!(partial_report.complete, stop == report.committed_ops);
        d.recover().unwrap();
        prop_assert_eq!(&contents(&mut d), &want);
        prop_assert_eq!(d.space_profile(), profile);
    }

    /// Without faults, a flush (checkpoint) at an arbitrary point does not
    /// change what recovery rebuilds, and a second flush writes nothing.
    #[test]
    fn checkpoint_preserves_recovery_and_second_flush_is_free(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        flush_at in any::<usize>(),
    ) {
        let mut d = Durable::new(Toy::new);
        let mut model = BTreeMap::new();
        let flush_at = flush_at % (ops.len() + 1);
        for (i, &op) in ops.iter().enumerate() {
            if i == flush_at {
                d.flush().unwrap();
            }
            apply(&mut d, op).unwrap();
            apply_to_model(&mut model, op);
        }
        let want: Vec<Record> = model.iter().map(|(&k, &v)| Record::new(k, v)).collect();
        d.recover().unwrap();
        prop_assert_eq!(&contents(&mut d), &want);

        d.flush().unwrap();
        let before = d.tracker().snapshot();
        d.flush().unwrap();
        let delta = d.tracker().since(&before);
        prop_assert_eq!(delta.total_write_bytes(), 0);
        prop_assert_eq!(delta.page_writes, 0);
        d.recover().unwrap();
        prop_assert_eq!(&contents(&mut d), &want);
    }
}
