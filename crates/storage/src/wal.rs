//! Write-ahead log: append-only, checksummed, length-prefixed records with
//! commit markers and torn-tail detection.
//!
//! The paper's UO discussion counts logging as part of write amplification;
//! this module is where that cost becomes measurable. Every byte the log
//! persists is charged to the owning method's
//! [`CostTracker`] as auxiliary write traffic (plus
//! page-granular accesses for the log pages touched), so a method wrapped
//! in [`Durable`](crate::durable::Durable) reports UO *including* its
//! durability protocol — and the delta against the bare method is exactly
//! `WAL bytes / logical bytes`.
//!
//! ## On-"disk" format
//!
//! ```text
//! frame   := len:u32le  crc:u32le  payload
//! payload := tag:u8  fields...
//!   tag 1 = Insert  key:u64le value:u64le   (17 bytes)
//!   tag 2 = Update  key:u64le value:u64le   (17 bytes)
//!   tag 3 = Delete  key:u64le               (9 bytes)
//!   tag 4 = Commit  seq:u64le count:u32le   (13 bytes)
//! ```
//!
//! `crc` is CRC-32 (IEEE, the zlib polynomial) over the payload,
//! implemented in-tree. Replay applies data records **only when a commit
//! marker covers them**: `Commit { seq, count }` commits exactly the
//! `count` records staged immediately before it — records staged earlier
//! belong to an operation that failed mid-apply (logged, never committed)
//! and are discarded, so a later commit can never resurrect them. A frame
//! that is truncated, oversized, fails its CRC, or does not decode ends
//! replay on the spot — a torn tail is detected and discarded, never
//! replayed.

use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{CostTracker, DataClass, Key, Result, RumError, Value, PAGE_SIZE};

use crate::fault::{FaultInjector, RetryPolicy, WriteOutcome};

/// Frame header size: u32 length + u32 CRC.
pub const WAL_HEADER_BYTES: usize = 8;

/// Largest valid payload (Insert/Update: tag + key + value).
const MAX_PAYLOAD: usize = 17;

// ---- CRC-32 (IEEE 802.3 / zlib polynomial), table-driven ----------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum (IEEE polynomial, reflected, init/xorout `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- log entries --------------------------------------------------------

/// One logical WAL record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalEntry {
    /// Upsert of `key` to `value`.
    Insert { key: Key, value: Value },
    /// Update of a (presumed live) `key` to `value`.
    Update { key: Key, value: Value },
    /// Deletion of `key`.
    Delete { key: Key },
    /// The `count` records staged immediately before this marker are now
    /// atomic and durable; `seq` is the monotonically increasing commit
    /// number. Earlier staged records (from an op whose apply failed after
    /// logging) stay uncommitted forever.
    Commit { seq: u64, count: u32 },
}

impl WalEntry {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match *self {
            WalEntry::Insert { key, value } => {
                out.push(1);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            WalEntry::Update { key, value } => {
                out.push(2);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            WalEntry::Delete { key } => {
                out.push(3);
                out.extend_from_slice(&key.to_le_bytes());
            }
            WalEntry::Commit { seq, count } => {
                out.push(4);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
    }

    /// Strict decode: the tag must be known and the payload exactly the
    /// tag's size. Anything else is treated as corruption by replay.
    fn decode_payload(buf: &[u8]) -> Option<WalEntry> {
        let u64_at = |off: usize| -> u64 {
            u64::from_le_bytes(
                buf[off..off + 8]
                    .try_into()
                    .expect("slice is exactly 8 bytes"),
            )
        };
        match (buf.first(), buf.len()) {
            (Some(1), 17) => Some(WalEntry::Insert {
                key: u64_at(1),
                value: u64_at(9),
            }),
            (Some(2), 17) => Some(WalEntry::Update {
                key: u64_at(1),
                value: u64_at(9),
            }),
            (Some(3), 9) => Some(WalEntry::Delete { key: u64_at(1) }),
            (Some(4), 13) => Some(WalEntry::Commit {
                seq: u64_at(1),
                count: u32::from_le_bytes(buf[9..13].try_into().expect("slice is exactly 4 bytes")),
            }),
            _ => None,
        }
    }
}

/// Outcome of scanning the durable log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Data records covered by a commit marker, in append order. These —
    /// and only these — may be re-applied.
    pub committed: Vec<WalEntry>,
    /// Sequence number of the last valid commit marker, if any.
    pub last_commit_seq: Option<u64>,
    /// Whether scanning stopped at a torn/corrupt frame (truncated header
    /// or payload, bad CRC, unknown tag, wrong size).
    pub torn_tail: bool,
    /// Valid data records no commit marker covers — a trailing uncommitted
    /// suffix, or records of an op that failed after logging — discarded.
    pub uncommitted: usize,
    /// Byte offset of the end of the last valid frame. Recovery passes this
    /// to [`Wal::truncate_torn_tail`] so appends after a crash never land
    /// behind a corrupt frame (where replay would never see them).
    pub valid_len: u64,
}

/// The write-ahead log. `pending` models volatile buffered appends;
/// `durable` models what survives power loss. [`Wal::sync`] moves pending
/// bytes to durable — consulting the [`FaultInjector`], when armed, which
/// may cut the transfer short (crash), corrupt the kept tail (torn write),
/// or drop it entirely (failed flush).
pub struct Wal {
    durable: Vec<u8>,
    pending: Vec<u8>,
    tracker: Arc<CostTracker>,
    injector: Option<Arc<FaultInjector>>,
    /// Total bytes ever synced to durable storage (across truncations) —
    /// the exact amount charged to the tracker as auxiliary writes.
    synced_total: u64,
    /// Structured-event channel for sync outcomes; the disabled
    /// [`NoopSink`](rum_core::trace::NoopSink) by default.
    sink: Arc<dyn TraceSink>,
    /// How [`sync`](Self::sync) responds to transient injector faults:
    /// retried in place (pending bytes kept) up to `max_attempts`, backoff
    /// charged as simulated time. Never consulted on a clean device.
    retry: RetryPolicy,
}

impl Wal {
    /// A WAL charging `tracker`, with no fault injection.
    pub fn new(tracker: Arc<CostTracker>) -> Self {
        Wal {
            durable: Vec::new(),
            pending: Vec::new(),
            tracker,
            injector: None,
            synced_total: 0,
            sink: rum_core::trace::noop_sink(),
            retry: RetryPolicy::default(),
        }
    }

    /// A WAL whose syncs are subject to `injector`'s fault plan.
    pub fn with_injector(tracker: Arc<CostTracker>, injector: Arc<FaultInjector>) -> Self {
        Wal {
            injector: Some(injector),
            ..Wal::new(tracker)
        }
    }

    /// Rebind cost charges (used by recovery to keep accounting continuous
    /// across a rebuilt structure).
    pub fn set_tracker(&mut self, tracker: Arc<CostTracker>) {
        self.tracker = tracker;
    }

    /// Install a sink for [`EventKind::WalSync`] events. The log only ever
    /// reads its own state for them, so tracing never changes what is
    /// persisted or charged.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Change how transient sync faults are retried.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Bytes surviving on durable storage right now.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// Buffered (volatile) bytes awaiting sync.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current physical footprint of the log (durable + buffered).
    pub fn total_len(&self) -> u64 {
        (self.durable.len() + self.pending.len()) as u64
    }

    /// Total bytes ever synced — equals the auxiliary write bytes this log
    /// has charged to the tracker.
    pub fn synced_total(&self) -> u64 {
        self.synced_total
    }

    /// Buffer `entry` (volatile until [`sync`](Self::sync)).
    pub fn append(&mut self, entry: &WalEntry) {
        let mut payload = Vec::with_capacity(MAX_PAYLOAD);
        entry.encode_payload(&mut payload);
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
    }

    /// Charge `n` bytes landing at durable offset `start` as auxiliary
    /// write traffic: byte-exact bytes plus one page access per log page
    /// touched (an fsync rewrites at least the tail page).
    fn charge(&self, start: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.tracker.write(DataClass::Aux, n);
        let page = PAGE_SIZE as u64;
        let pages = (start + n).div_ceil(page) - start / page;
        for _ in 0..pages.max(1) {
            self.tracker.page_write();
        }
    }

    /// Make pending appends durable. Returns `Err(RumError::Crash)` when
    /// the armed fault fires; whatever prefix the injector let through is
    /// already on "disk" (and charged), mirroring a real power event.
    /// Transient injector faults are retried in place per the
    /// [`RetryPolicy`] — pending bytes are kept across failed attempts, and
    /// backoff is charged as simulated time — before surfacing
    /// [`RumError::Transient`].
    pub fn sync(&mut self) -> Result<()> {
        let mut attempt = 1u32;
        loop {
            match self.sync_attempt() {
                Err(RumError::Transient(m)) => {
                    if self.sink.enabled() {
                        self.sink.emit(
                            EventKind::FaultInjected,
                            &[("attempt", u64::from(attempt)), ("wal", 1)],
                        );
                    }
                    if attempt >= self.retry.max_attempts {
                        return Err(RumError::Transient(m));
                    }
                    let delay = self.retry.backoff.delay_ns(attempt);
                    self.tracker.sim_time(delay);
                    if self.sink.enabled() {
                        self.sink.emit(
                            EventKind::RetryAttempt,
                            &[
                                ("attempt", u64::from(attempt)),
                                ("backoff_ns", delay),
                                // Pending bytes the failed attempt tried
                                // (and the retry will try again) to land.
                                ("bytes", self.pending.len() as u64),
                            ],
                        );
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// One sync attempt against the injector.
    fn sync_attempt(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let n = self.pending.len() as u64;
        let outcome = match &self.injector {
            Some(inj) => inj.on_durable_write(n),
            None => WriteOutcome::Persist,
        };
        let start = self.durable.len() as u64;
        match outcome {
            WriteOutcome::Persist | WriteOutcome::PersistFlipped { .. } => {
                let flip = match outcome {
                    WriteOutcome::PersistFlipped { bit } => Some(bit),
                    _ => None,
                };
                self.durable.append(&mut self.pending);
                if let Some(bit) = flip {
                    // Silent media corruption inside the just-landed bytes;
                    // the per-frame CRC turns it into a torn tail on replay.
                    let idx = start as usize + (bit / 8) as usize;
                    if idx < self.durable.len() {
                        self.durable[idx] ^= 1 << (bit % 8);
                    }
                }
                self.charge(start, n);
                self.synced_total += n;
                if self.sink.enabled() {
                    self.sink.emit(
                        EventKind::WalSync,
                        &[("bytes", n), ("durable_len", self.durable.len() as u64)],
                    );
                }
                Ok(())
            }
            WriteOutcome::Transient => Err(RumError::Transient(format!(
                "transient WAL sync fault: {n} bytes still buffered"
            ))),
            WriteOutcome::CrashKeeping { keep, torn } => {
                let keep = (keep as usize).min(self.pending.len());
                self.durable.extend_from_slice(&self.pending[..keep]);
                if torn && keep > 0 {
                    // The sector under the write head when power dropped:
                    // flip the tail of what landed so only the checksum —
                    // not truncation — can reveal the damage.
                    let len = self.durable.len();
                    for b in &mut self.durable[len - keep.min(8)..] {
                        *b ^= 0xA5;
                    }
                }
                self.pending.clear();
                self.charge(start, keep as u64);
                self.synced_total += keep as u64;
                if self.sink.enabled() {
                    self.sink.emit(
                        EventKind::WalSync,
                        &[
                            ("bytes", keep as u64),
                            ("lost", n - keep as u64),
                            ("torn", u64::from(torn)),
                        ],
                    );
                }
                Err(RumError::Crash(format!(
                    "power loss during WAL sync: {keep} of {n} bytes persisted{}",
                    if torn { " (torn tail)" } else { "" }
                )))
            }
            WriteOutcome::FailFlush => {
                self.pending.clear();
                if self.sink.enabled() {
                    self.sink
                        .emit(EventKind::WalSync, &[("bytes", 0), ("lost", n)]);
                }
                Err(RumError::Crash(format!(
                    "WAL flush failed: {n} buffered bytes lost"
                )))
            }
        }
    }

    /// Drop the log after a checkpoint: durable and pending both reset.
    /// (`synced_total` is cumulative — truncation reclaims space, it does
    /// not refund write traffic.)
    pub fn truncate(&mut self) {
        self.durable.clear();
        self.pending.clear();
    }

    /// Keep only the first `len` durable bytes — recovery cuts the torn
    /// tail off the log so later appends follow valid frames instead of
    /// hiding forever behind a corrupt one.
    pub fn truncate_torn_tail(&mut self, len: u64) {
        self.durable.truncate(len as usize);
    }

    /// Scan the durable log and return the committed prefix. Never fails:
    /// corruption terminates the scan and is reported in the outcome.
    pub fn replay(&self) -> WalReplay {
        let log = &self.durable;
        let mut out = WalReplay::default();
        let mut staged: Vec<WalEntry> = Vec::new();
        let mut off = 0usize;
        loop {
            if off == log.len() {
                break; // clean end of log
            }
            if off + WAL_HEADER_BYTES > log.len() {
                out.torn_tail = true; // truncated header
                break;
            }
            let len = u32::from_le_bytes(
                log[off..off + 4]
                    .try_into()
                    .expect("slice is exactly 4 bytes"),
            ) as usize;
            let crc = u32::from_le_bytes(
                log[off + 4..off + 8]
                    .try_into()
                    .expect("slice is exactly 4 bytes"),
            );
            if len == 0 || len > MAX_PAYLOAD || off + WAL_HEADER_BYTES + len > log.len() {
                out.torn_tail = true; // absurd length or truncated payload
                break;
            }
            let payload = &log[off + WAL_HEADER_BYTES..off + WAL_HEADER_BYTES + len];
            if crc32(payload) != crc {
                out.torn_tail = true;
                break;
            }
            let Some(entry) = WalEntry::decode_payload(payload) else {
                out.torn_tail = true;
                break;
            };
            match entry {
                WalEntry::Commit { seq, count } => {
                    let count = count as usize;
                    if count > staged.len() {
                        // A commit covering records that are not in the
                        // log cannot be honored; stop, like corruption.
                        out.torn_tail = true;
                        break;
                    }
                    let covered = staged.split_off(staged.len() - count);
                    out.uncommitted += staged.len(); // aborted-op leftovers
                    staged.clear();
                    out.committed.extend(covered);
                    out.last_commit_seq = Some(seq);
                }
                data => staged.push(data),
            }
            off += WAL_HEADER_BYTES + len;
        }
        // `off` only ever advances past fully-validated frames, so at any
        // break it marks the end of the trustworthy prefix.
        out.valid_len = off as u64;
        out.uncommitted += staged.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultPlan};

    fn entries() -> Vec<WalEntry> {
        vec![
            WalEntry::Insert { key: 1, value: 10 },
            WalEntry::Update { key: 1, value: 11 },
            WalEntry::Delete { key: 2 },
            WalEntry::Commit { seq: 0, count: 3 },
            WalEntry::Insert { key: 3, value: 30 },
            WalEntry::Commit { seq: 1, count: 1 },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn committed_prefix_roundtrips() {
        let mut wal = Wal::new(CostTracker::new());
        for e in entries() {
            wal.append(&e);
        }
        wal.sync().unwrap();
        let replay = wal.replay();
        assert!(!replay.torn_tail);
        assert_eq!(replay.last_commit_seq, Some(1));
        assert_eq!(replay.uncommitted, 0);
        assert_eq!(
            replay.committed,
            vec![
                WalEntry::Insert { key: 1, value: 10 },
                WalEntry::Update { key: 1, value: 11 },
                WalEntry::Delete { key: 2 },
                WalEntry::Insert { key: 3, value: 30 },
            ]
        );
    }

    #[test]
    fn uncommitted_tail_is_not_replayed() {
        let mut wal = Wal::new(CostTracker::new());
        wal.append(&WalEntry::Insert { key: 1, value: 1 });
        wal.append(&WalEntry::Commit { seq: 0, count: 1 });
        wal.append(&WalEntry::Insert { key: 2, value: 2 }); // never committed
        wal.sync().unwrap();
        let replay = wal.replay();
        assert!(!replay.torn_tail, "clean frames, just uncommitted");
        assert_eq!(
            replay.committed,
            vec![WalEntry::Insert { key: 1, value: 1 }]
        );
        assert_eq!(replay.uncommitted, 1);
    }

    #[test]
    fn aborted_op_is_never_resurrected_by_a_later_commit() {
        // An op that logged its record but failed mid-apply leaves an
        // uncovered record; the next op's commit must not adopt it.
        let mut wal = Wal::new(CostTracker::new());
        wal.append(&WalEntry::Insert { key: 7, value: 70 }); // aborted op
        wal.append(&WalEntry::Insert { key: 8, value: 80 });
        wal.append(&WalEntry::Commit { seq: 0, count: 1 });
        wal.sync().unwrap();
        let replay = wal.replay();
        assert!(!replay.torn_tail);
        assert_eq!(
            replay.committed,
            vec![WalEntry::Insert { key: 8, value: 80 }]
        );
        assert_eq!(replay.uncommitted, 1, "the aborted record is discarded");
    }

    #[test]
    fn overreaching_commit_stops_replay() {
        let mut wal = Wal::new(CostTracker::new());
        wal.append(&WalEntry::Insert { key: 1, value: 1 });
        wal.append(&WalEntry::Commit { seq: 0, count: 2 }); // covers 2, only 1 staged
        wal.sync().unwrap();
        let replay = wal.replay();
        assert!(replay.torn_tail);
        assert!(replay.committed.is_empty());
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        // Crash mid-log at every byte offset: replay must never yield more
        // than the commits whose frames fully landed, and must flag tears.
        let mut reference = Wal::new(CostTracker::new());
        for e in entries() {
            reference.append(&e);
        }
        reference.sync().unwrap();
        let total = reference.durable_len() as u64;
        let full = reference.replay();
        let mut saw_torn = false;
        for cut in 0..total {
            for torn in [false, true] {
                let plan = if torn {
                    FaultPlan::torn_at(cut)
                } else {
                    FaultPlan::crash_at(cut)
                };
                let mut wal = Wal::with_injector(CostTracker::new(), FaultInjector::new(plan));
                for e in entries() {
                    wal.append(&e);
                }
                let err = wal.sync().unwrap_err();
                assert!(matches!(err, RumError::Crash(_)));
                assert_eq!(wal.durable_len() as u64, cut);
                let replay = wal.replay();
                saw_torn |= replay.torn_tail;
                // Only fully-committed prefixes of the reference replay.
                assert!(replay.committed.len() <= full.committed.len());
                assert_eq!(
                    replay.committed[..],
                    full.committed[..replay.committed.len()],
                    "cut={cut} torn={torn}"
                );
                if let Some(seq) = replay.last_commit_seq {
                    assert!(seq <= 1);
                }
            }
        }
        assert!(saw_torn, "some cut must land mid-frame");
    }

    #[test]
    fn sync_charges_aux_bytes_and_log_pages() {
        let tracker = CostTracker::new();
        let mut wal = Wal::new(Arc::clone(&tracker));
        wal.append(&WalEntry::Insert { key: 1, value: 1 });
        wal.append(&WalEntry::Commit { seq: 0, count: 1 });
        wal.sync().unwrap();
        let s = tracker.snapshot();
        assert_eq!(s.aux_write_bytes, wal.synced_total());
        assert_eq!(s.base_write_bytes, 0, "WAL traffic is auxiliary");
        assert_eq!(s.page_writes, 1, "one small sync touches one log page");
        // A sync spanning a page boundary touches both pages.
        let tracker2 = CostTracker::new();
        let mut big = Wal::new(Arc::clone(&tracker2));
        let mut k = 0;
        while big.pending_len() <= PAGE_SIZE {
            big.append(&WalEntry::Insert { key: k, value: k });
            k += 1;
        }
        big.sync().unwrap();
        let s2 = tracker2.snapshot();
        assert_eq!(s2.aux_write_bytes, big.synced_total());
        assert_eq!(s2.page_writes, 2, "straddling sync touches two pages");
    }

    #[test]
    fn failed_flush_loses_pending_only() {
        let tracker = CostTracker::new();
        let mut wal = Wal::with_injector(
            Arc::clone(&tracker),
            FaultInjector::new(FaultPlan::fail_flush(2)),
        );
        wal.append(&WalEntry::Insert { key: 1, value: 1 });
        wal.append(&WalEntry::Commit { seq: 0, count: 1 });
        wal.sync().unwrap();
        let durable_before = wal.durable_len();
        let charged_before = tracker.snapshot().aux_write_bytes;
        wal.append(&WalEntry::Insert { key: 2, value: 2 });
        wal.append(&WalEntry::Commit { seq: 1, count: 1 });
        assert!(matches!(wal.sync(), Err(RumError::Crash(_))));
        assert_eq!(wal.durable_len(), durable_before, "nothing landed");
        assert_eq!(wal.pending_len(), 0, "buffered bytes are gone");
        assert_eq!(
            tracker.snapshot().aux_write_bytes,
            charged_before,
            "a failed flush writes nothing, charges nothing"
        );
        assert_eq!(wal.replay().last_commit_seq, Some(0));
    }

    #[test]
    fn truncate_resets_the_log_but_not_the_accounting() {
        let mut wal = Wal::new(CostTracker::new());
        wal.append(&WalEntry::Insert { key: 1, value: 1 });
        wal.append(&WalEntry::Commit { seq: 0, count: 1 });
        wal.sync().unwrap();
        let synced = wal.synced_total();
        assert!(synced > 0);
        wal.truncate();
        assert_eq!(wal.durable_len(), 0);
        assert_eq!(wal.replay(), WalReplay::default());
        assert_eq!(wal.synced_total(), synced, "charges are not refunded");
    }

    #[test]
    fn empty_sync_is_free_and_infallible() {
        let tracker = CostTracker::new();
        // Even with a fail-on-first-flush plan armed, an empty sync has
        // nothing to lose and must not consume the fault.
        let mut wal = Wal::with_injector(
            Arc::clone(&tracker),
            FaultInjector::new(FaultPlan::fail_flush(1)),
        );
        wal.sync().unwrap();
        assert_eq!(tracker.snapshot(), Default::default());
    }
}
