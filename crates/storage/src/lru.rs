//! An intrusive, O(1) LRU index used by the buffer pool and by each level
//! of the memory-hierarchy simulator. It tracks *which* keys are resident
//! (and their dirty bits); payload storage is the caller's business.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
    dirty: bool,
}

/// Fixed-capacity LRU set with dirty tracking.
#[derive(Debug)]
pub struct LruSet<K: Eq + Hash + Copy> {
    nodes: Vec<Node<K>>,
    map: HashMap<K, usize>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Copy> LruSet<K> {
    /// A set that holds at most `capacity` keys (0 = always empty).
    pub fn new(capacity: usize) -> Self {
        LruSet {
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touch `key`, marking it most-recently-used; returns whether it was
    /// resident. Does not insert.
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            if self.head != idx {
                self.detach(idx);
                self.attach_front(idx);
            }
            true
        } else {
            false
        }
    }

    /// Mark a resident key dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.nodes[idx].dirty = true;
            true
        } else {
            false
        }
    }

    /// Whether a resident key is dirty.
    pub fn is_dirty(&self, key: &K) -> bool {
        self.map
            .get(key)
            .map(|&idx| self.nodes[idx].dirty)
            .unwrap_or(false)
    }

    /// Insert `key` as most-recently-used. If the set is over capacity the
    /// least-recently-used key is evicted and returned as
    /// `(key, was_dirty)`. Inserting a resident key just touches it (and
    /// ORs the dirty bit).
    pub fn insert(&mut self, key: K, dirty: bool) -> Option<(K, bool)> {
        if self.capacity == 0 {
            // Degenerate cache: the entry is immediately evicted.
            return Some((key, dirty));
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].dirty |= dirty;
            self.touch(&key);
            return None;
        }
        let idx = if let Some(free) = self.free.pop() {
            self.nodes[free] = Node {
                key,
                prev: NIL,
                next: NIL,
                dirty,
            };
            free
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
                dirty,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        if self.map.len() > self.capacity {
            return self.evict_lru();
        }
        None
    }

    /// Remove and return the least-recently-used key.
    pub fn evict_lru(&mut self) -> Option<(K, bool)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.nodes[idx].key;
        let dirty = self.nodes[idx].dirty;
        self.detach(idx);
        self.map.remove(&key);
        self.free.push(idx);
        Some((key, dirty))
    }

    /// Remove a specific key; returns its dirty bit if it was resident.
    pub fn remove(&mut self, key: &K) -> Option<bool> {
        let idx = self.map.remove(key)?;
        let dirty = self.nodes[idx].dirty;
        self.detach(idx);
        self.free.push(idx);
        Some(dirty)
    }

    /// Drain every resident key (MRU first), returning `(key, dirty)`.
    pub fn drain(&mut self) -> Vec<(K, bool)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push((self.nodes[cur].key, self.nodes[cur].dirty));
            cur = self.nodes[cur].next;
        }
        self.map.clear();
        self.free.clear();
        self.nodes.clear();
        self.head = NIL;
        self.tail = NIL;
        out
    }

    /// Keys currently resident, MRU first.
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur].key);
            cur = self.nodes[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_evicts_in_lru_order() {
        let mut l = LruSet::new(2);
        assert_eq!(l.insert(1, false), None);
        assert_eq!(l.insert(2, false), None);
        // 1 is LRU; inserting 3 evicts it.
        assert_eq!(l.insert(3, false), Some((1, false)));
        assert!(l.contains(&2) && l.contains(&3));
    }

    #[test]
    fn touch_reorders() {
        let mut l = LruSet::new(2);
        l.insert(1, false);
        l.insert(2, false);
        assert!(l.touch(&1));
        // Now 2 is LRU.
        assert_eq!(l.insert(3, false), Some((2, false)));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut l = LruSet::new(1);
        l.insert(1, false);
        assert!(l.mark_dirty(&1));
        assert_eq!(l.insert(2, false), Some((1, true)));
    }

    #[test]
    fn reinsert_ors_dirty() {
        let mut l = LruSet::new(2);
        l.insert(1, false);
        l.insert(1, true);
        assert!(l.is_dirty(&1));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut l = LruSet::new(0);
        assert_eq!(l.insert(1, true), Some((1, true)));
        assert!(l.is_empty());
    }

    #[test]
    fn remove_specific() {
        let mut l = LruSet::new(3);
        l.insert(1, false);
        l.insert(2, true);
        assert_eq!(l.remove(&2), Some(true));
        assert_eq!(l.remove(&2), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn drain_returns_mru_first() {
        let mut l = LruSet::new(3);
        l.insert(1, false);
        l.insert(2, true);
        l.insert(3, false);
        let d = l.drain();
        assert_eq!(d, vec![(3, false), (2, true), (1, false)]);
        assert!(l.is_empty());
        // Reusable after drain.
        l.insert(9, false);
        assert!(l.contains(&9));
    }

    #[test]
    fn slot_recycling_is_sound() {
        let mut l = LruSet::new(4);
        for round in 0..5 {
            for k in 0..4u64 {
                l.insert(round * 10 + k, false);
            }
        }
        assert_eq!(l.len(), 4);
        let keys = l.keys();
        assert_eq!(keys, vec![43, 42, 41, 40]);
    }

    #[test]
    fn heavy_churn_keeps_capacity_invariant() {
        let mut l = LruSet::new(16);
        for k in 0..10_000u64 {
            l.insert(k, k % 3 == 0);
            assert!(l.len() <= 16);
        }
        assert_eq!(l.len(), 16);
    }
}
