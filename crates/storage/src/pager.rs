//! The [`Pager`] — the facade through which access methods touch pages.
//!
//! Every read and write is charged to a [`CostTracker`] with a
//! [`DataClass`] tag (base vs. auxiliary data). This is what turns page
//! traffic into the paper's RO and UO: accessing a 4 KiB page to fetch one
//! 16-byte record charges 4096 bytes of physical reads against 16 logical
//! bytes — read amplification 256, exactly the paper's "minimum access
//! granularity" argument.

use std::sync::Arc;

use rum_core::trace::{EventKind, TraceSink};
use rum_core::{CostTracker, DataClass, Result, RumError, PAGE_SIZE};

use crate::checked::{CheckedDevice, ScrubReport};
use crate::cost::{AccessClassifier, DeviceProfile};
use crate::device::BlockDevice;
use crate::fault::RetryPolicy;
use crate::page::{PageBuf, PageId};

/// Instrumented page manager over any block device.
pub struct Pager<D: BlockDevice> {
    device: D,
    tracker: Arc<CostTracker>,
    profile: DeviceProfile,
    classifier: AccessClassifier,
    /// Answer to transient device faults: every attempt — failed or not —
    /// is charged to the tracker, so retries surface as RO/UO. Never
    /// consulted on a clean device, so the default changes nothing there.
    retry: RetryPolicy,
    /// Structured-event channel for fault/retry/corruption observations;
    /// the disabled noop sink by default.
    sink: Arc<dyn TraceSink>,
}

impl<D: BlockDevice> Pager<D> {
    /// A pager with the DRAM cost profile (suitable for pure I/O-count
    /// experiments where simulated time is not the focus).
    pub fn new(device: D, tracker: Arc<CostTracker>) -> Self {
        Self::with_profile(device, tracker, DeviceProfile::DRAM)
    }

    /// A pager charging simulated time per `profile`.
    pub fn with_profile(device: D, tracker: Arc<CostTracker>, profile: DeviceProfile) -> Self {
        Pager {
            device,
            tracker,
            profile,
            classifier: AccessClassifier::new(),
            retry: RetryPolicy::default(),
            sink: rum_core::trace::noop_sink(),
        }
    }

    /// Change how transient device faults are retried.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Install a sink for fault, retry, and corruption events. The pager
    /// only reads its own state for them, so tracing never changes what is
    /// read, written, or charged.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    pub fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    /// Redirect future charges to a different tracker (used when a
    /// composite structure shares one tracker across sub-structures).
    pub fn set_tracker(&mut self, tracker: Arc<CostTracker>) {
        self.tracker = tracker;
    }

    pub fn device(&self) -> &D {
        &self.device
    }

    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Allocate a fresh zeroed page. Allocation itself is not charged; the
    /// write that populates the page is.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.device.allocate()
    }

    /// Free a page.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        self.device.free(id)
    }

    /// Read a page, charging one page access and `PAGE_SIZE` bytes of
    /// `class` traffic **per attempt**: transient device faults are
    /// retried per the [`RetryPolicy`], and every failed attempt still
    /// touched the device, so resilience is priced as extra RO. Detected
    /// corruption ([`RumError::CorruptPage`]) is not retryable — the
    /// stored bytes are wrong, not busy — and is surfaced (and traced)
    /// immediately.
    pub fn read(&mut self, id: PageId, class: DataClass) -> Result<PageBuf> {
        let mut attempt = 1u32;
        loop {
            let r = self.device.read_page(id);
            if Self::attempt_touched_device(&r) {
                self.tracker.page_read();
                self.tracker.read(class, PAGE_SIZE as u64);
                let ns = self.classifier.read(&self.profile, id);
                self.tracker.sim_time(ns);
            }
            match r {
                Ok(buf) => return Ok(buf),
                Err(e) => {
                    if let Some(err) = self.note_failure(id, &e, &mut attempt) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Write a page, charging one page access and `PAGE_SIZE` bytes of
    /// `class` traffic **per attempt**: transient faults are retried per
    /// the [`RetryPolicy`], and every failed attempt is priced as extra
    /// UO.
    pub fn write(&mut self, id: PageId, class: DataClass, page: &PageBuf) -> Result<()> {
        let mut attempt = 1u32;
        loop {
            let r = self.device.write_page(id, page);
            if Self::attempt_touched_device(&r) {
                self.tracker.page_write();
                self.tracker.write(class, PAGE_SIZE as u64);
                let ns = self.classifier.write(&self.profile, id);
                self.tracker.sim_time(ns);
            }
            match r {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if let Some(err) = self.note_failure(id, &e, &mut attempt) {
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Whether one device attempt performed (and should charge) a physical
    /// page touch. Success always did; a transient fault or a checksum
    /// mismatch cost the access before failing. Other errors (bad page id,
    /// power loss — whose partial-write accounting lives with the fault
    /// injector) keep their long-standing uncharged behavior.
    fn attempt_touched_device<T>(r: &Result<T>) -> bool {
        matches!(
            r,
            Ok(_) | Err(RumError::Transient(_)) | Err(RumError::CorruptPage { .. })
        )
    }

    /// Common failure handling for one failed attempt: trace it, decide
    /// whether to retry (returns `None`, after charging backoff and
    /// bumping `attempt`) or give up (returns the error to surface).
    fn note_failure(&mut self, id: PageId, e: &RumError, attempt: &mut u32) -> Option<RumError> {
        if self.sink.enabled() {
            match e {
                RumError::Transient(_) => {
                    self.sink.emit(
                        EventKind::FaultInjected,
                        &[("page", id.0), ("attempt", u64::from(*attempt))],
                    );
                }
                RumError::CorruptPage {
                    stored, computed, ..
                } => {
                    self.sink.emit(
                        EventKind::CorruptionDetected,
                        &[
                            ("page", id.0),
                            ("stored", u64::from(*stored)),
                            ("computed", u64::from(*computed)),
                            // The checksum-failed attempt touched (and
                            // charged) one full page.
                            ("bytes", PAGE_SIZE as u64),
                        ],
                    );
                }
                _ => {}
            }
        }
        if !e.is_transient() || *attempt >= self.retry.max_attempts {
            return Some(e.clone());
        }
        let delay = self.retry.backoff.delay_ns(*attempt);
        self.tracker.sim_time(delay);
        if self.sink.enabled() {
            self.sink.emit(
                EventKind::RetryAttempt,
                &[
                    ("page", id.0),
                    ("attempt", u64::from(*attempt)),
                    ("backoff_ns", delay),
                    // The wasted attempt being retried cost one page of
                    // device traffic.
                    ("bytes", PAGE_SIZE as u64),
                ],
            );
        }
        *attempt += 1;
        None
    }

    /// Live pages on the device — the physical footprint in pages.
    pub fn live_pages(&self) -> usize {
        self.device.live_pages()
    }

    /// Physical footprint in bytes (live pages × page size).
    pub fn physical_bytes(&self) -> u64 {
        (self.live_pages() * PAGE_SIZE) as u64
    }

    /// Flush any cached state in the underlying device.
    pub fn sync(&mut self) -> Result<()> {
        self.device.sync()
    }
}

impl<D: BlockDevice> Pager<CheckedDevice<D>> {
    /// Verify every sealed page against its CRC, in ascending page order.
    /// Each verification read (including transient-fault retries) is
    /// charged as an **auxiliary** read — scrubbing is maintenance
    /// traffic, priced in the same RO currency as everything else. The
    /// pass does not stop at the first problem: all corrupt and
    /// unreadable pages are collected so repair can act on the full
    /// picture.
    pub fn scrub(&mut self) -> Result<ScrubReport> {
        let ids = self.device.sealed_pages();
        let mut report = ScrubReport {
            pages_scanned: ids.len(),
            ..ScrubReport::default()
        };
        for id in ids {
            match self.read(id, DataClass::Aux) {
                Ok(_) => {}
                Err(RumError::CorruptPage { .. }) => report.corrupt.push(id),
                Err(_) => report.unreadable.push(id),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use rum_core::RECORDS_PER_PAGE;

    #[test]
    fn accesses_charge_tracker() {
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let id = pager.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.write_u64(0, 1);
        pager.write(id, DataClass::Base, &p).unwrap();
        pager.read(id, DataClass::Aux).unwrap();
        let s = tracker.snapshot();
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.base_write_bytes, PAGE_SIZE as u64);
        assert_eq!(s.aux_read_bytes, PAGE_SIZE as u64);
        assert!(s.sim_time_ns > 0);
    }

    #[test]
    fn one_record_from_one_page_is_b_amplification() {
        // The "minimum access granularity" argument: fetching one record
        // costs a full page, so RO = B = 256.
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let id = pager.allocate().unwrap();
        pager.read(id, DataClass::Base).unwrap();
        tracker.logical_read(16);
        let s = tracker.snapshot();
        assert_eq!(s.read_amplification(), RECORDS_PER_PAGE as f64);
    }

    #[test]
    fn physical_bytes_follow_live_pages() {
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), tracker);
        let a = pager.allocate().unwrap();
        let _b = pager.allocate().unwrap();
        assert_eq!(pager.physical_bytes(), 2 * PAGE_SIZE as u64);
        pager.free(a).unwrap();
        assert_eq!(pager.physical_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn transient_faults_are_retried_and_priced_as_extra_reads() {
        use crate::fault::{FaultDevice, FaultInjector, FaultPlan, FaultProfile, RetryPolicy};
        let run = || {
            let inj = FaultInjector::with_profile(
                FaultPlan::None,
                Some(FaultProfile::transient(17, 400_000, 2)),
            );
            let tracker = CostTracker::new();
            let mut pager = Pager::new(
                FaultDevice::new(MemDevice::new(), Arc::clone(&inj)),
                Arc::clone(&tracker),
            );
            pager.set_retry_policy(RetryPolicy::attempts(8));
            let id = pager.allocate().unwrap();
            pager
                .write(id, DataClass::Base, &PageBuf::zeroed())
                .unwrap();
            for _ in 0..100 {
                pager.read(id, DataClass::Base).unwrap();
            }
            (tracker.snapshot(), inj.transient_faults())
        };
        let (a, faults) = run();
        assert!(faults > 0, "40% fault rate over 100 reads must fire");
        assert!(
            a.page_reads > 100,
            "failed attempts are charged: {} reads for 100 logical",
            a.page_reads
        );
        assert_eq!(
            a.base_read_bytes,
            a.page_reads * PAGE_SIZE as u64,
            "every attempt charged a full page of class traffic"
        );
        let (b, _) = run();
        assert_eq!(a, b, "same seed, same policy, bit-identical costs");
    }

    #[test]
    fn no_retry_policy_surfaces_the_first_transient() {
        use crate::fault::{FaultDevice, FaultInjector, FaultPlan, FaultProfile, RetryPolicy};
        use rum_core::RumError;
        // ppm = 1e6: every read attempt faults, so attempt 1 must fail.
        let inj = FaultInjector::with_profile(
            FaultPlan::None,
            Some(FaultProfile {
                write_error_ppm: 0,
                ..FaultProfile::transient(1, 1_000_000, 1)
            }),
        );
        let tracker = CostTracker::new();
        let mut pager = Pager::new(FaultDevice::new(MemDevice::new(), inj), tracker);
        pager.set_retry_policy(RetryPolicy::none());
        let id = pager.allocate().unwrap();
        pager
            .write(id, DataClass::Base, &PageBuf::zeroed())
            .unwrap();
        let err = pager.read(id, DataClass::Base).unwrap_err();
        assert!(matches!(err, RumError::Transient(_)), "got {err:?}");
    }

    #[test]
    fn scrub_verifies_seals_and_charges_aux_reads() {
        use crate::checked::CheckedDevice;
        use rum_core::RumError;
        let tracker = CostTracker::new();
        let mut pager = Pager::new(CheckedDevice::new(MemDevice::new()), Arc::clone(&tracker));
        let ids: Vec<_> = (0..3).map(|_| pager.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            let mut p = PageBuf::zeroed();
            p.as_mut_slice().fill(i as u8 + 1);
            pager.write(*id, DataClass::Base, &p).unwrap();
        }
        // Clean scrub: everything verifies, priced as 3 aux page reads.
        let before = tracker.snapshot();
        let clean = pager.scrub().unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.pages_scanned, 3);
        let d = tracker.since(&before);
        assert_eq!(d.aux_read_bytes, 3 * PAGE_SIZE as u64);
        assert_eq!(d.page_reads, 3);
        // Damage one page behind the seal; scrub pinpoints it and keeps
        // going.
        let mut damaged = PageBuf::zeroed();
        damaged.as_mut_slice().fill(0xEE);
        pager
            .device_mut()
            .inner_mut()
            .write_page(ids[1], &damaged)
            .unwrap();
        let dirty = pager.scrub().unwrap();
        assert_eq!(dirty.corrupt, vec![ids[1]]);
        assert!(dirty.unreadable.is_empty());
        // Foreground reads refuse the damaged page too.
        let err = pager.read(ids[1], DataClass::Base).unwrap_err();
        assert!(matches!(err, RumError::CorruptPage { .. }));
        let _ = pager.read(ids[0], DataClass::Base).unwrap();
    }

    #[test]
    fn hdd_profile_charges_more_for_random() {
        let tracker = CostTracker::new();
        let mut pager =
            Pager::with_profile(MemDevice::new(), Arc::clone(&tracker), DeviceProfile::HDD);
        let ids: Vec<_> = (0..3).map(|_| pager.allocate().unwrap()).collect();
        // Sequential: 0,1,2.
        for id in &ids {
            pager.read(*id, DataClass::Base).unwrap();
        }
        let seq = tracker.snapshot().sim_time_ns;
        tracker.reset();
        // Random-ish: 2,0,2.
        pager.read(ids[2], DataClass::Base).unwrap();
        pager.read(ids[0], DataClass::Base).unwrap();
        pager.read(ids[2], DataClass::Base).unwrap();
        let rand = tracker.snapshot().sim_time_ns;
        assert!(rand > seq, "random {rand} should exceed sequential {seq}");
    }
}
