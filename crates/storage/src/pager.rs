//! The [`Pager`] — the facade through which access methods touch pages.
//!
//! Every read and write is charged to a [`CostTracker`] with a
//! [`DataClass`] tag (base vs. auxiliary data). This is what turns page
//! traffic into the paper's RO and UO: accessing a 4 KiB page to fetch one
//! 16-byte record charges 4096 bytes of physical reads against 16 logical
//! bytes — read amplification 256, exactly the paper's "minimum access
//! granularity" argument.

use std::sync::Arc;

use rum_core::{CostTracker, DataClass, Result, PAGE_SIZE};

use crate::cost::{AccessClassifier, DeviceProfile};
use crate::device::BlockDevice;
use crate::page::{PageBuf, PageId};

/// Instrumented page manager over any block device.
pub struct Pager<D: BlockDevice> {
    device: D,
    tracker: Arc<CostTracker>,
    profile: DeviceProfile,
    classifier: AccessClassifier,
}

impl<D: BlockDevice> Pager<D> {
    /// A pager with the DRAM cost profile (suitable for pure I/O-count
    /// experiments where simulated time is not the focus).
    pub fn new(device: D, tracker: Arc<CostTracker>) -> Self {
        Self::with_profile(device, tracker, DeviceProfile::DRAM)
    }

    /// A pager charging simulated time per `profile`.
    pub fn with_profile(device: D, tracker: Arc<CostTracker>, profile: DeviceProfile) -> Self {
        Pager {
            device,
            tracker,
            profile,
            classifier: AccessClassifier::new(),
        }
    }

    pub fn tracker(&self) -> &Arc<CostTracker> {
        &self.tracker
    }

    /// Redirect future charges to a different tracker (used when a
    /// composite structure shares one tracker across sub-structures).
    pub fn set_tracker(&mut self, tracker: Arc<CostTracker>) {
        self.tracker = tracker;
    }

    pub fn device(&self) -> &D {
        &self.device
    }

    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Allocate a fresh zeroed page. Allocation itself is not charged; the
    /// write that populates the page is.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.device.allocate()
    }

    /// Free a page.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        self.device.free(id)
    }

    /// Read a page, charging one page access and `PAGE_SIZE` bytes of
    /// `class` traffic.
    pub fn read(&mut self, id: PageId, class: DataClass) -> Result<PageBuf> {
        let buf = self.device.read_page(id)?;
        self.tracker.page_read();
        self.tracker.read(class, PAGE_SIZE as u64);
        let ns = self.classifier.read(&self.profile, id);
        self.tracker.sim_time(ns);
        Ok(buf)
    }

    /// Write a page, charging one page access and `PAGE_SIZE` bytes of
    /// `class` traffic.
    pub fn write(&mut self, id: PageId, class: DataClass, page: &PageBuf) -> Result<()> {
        self.device.write_page(id, page)?;
        self.tracker.page_write();
        self.tracker.write(class, PAGE_SIZE as u64);
        let ns = self.classifier.write(&self.profile, id);
        self.tracker.sim_time(ns);
        Ok(())
    }

    /// Live pages on the device — the physical footprint in pages.
    pub fn live_pages(&self) -> usize {
        self.device.live_pages()
    }

    /// Physical footprint in bytes (live pages × page size).
    pub fn physical_bytes(&self) -> u64 {
        (self.live_pages() * PAGE_SIZE) as u64
    }

    /// Flush any cached state in the underlying device.
    pub fn sync(&mut self) -> Result<()> {
        self.device.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use rum_core::RECORDS_PER_PAGE;

    #[test]
    fn accesses_charge_tracker() {
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let id = pager.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.write_u64(0, 1);
        pager.write(id, DataClass::Base, &p).unwrap();
        pager.read(id, DataClass::Aux).unwrap();
        let s = tracker.snapshot();
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.base_write_bytes, PAGE_SIZE as u64);
        assert_eq!(s.aux_read_bytes, PAGE_SIZE as u64);
        assert!(s.sim_time_ns > 0);
    }

    #[test]
    fn one_record_from_one_page_is_b_amplification() {
        // The "minimum access granularity" argument: fetching one record
        // costs a full page, so RO = B = 256.
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), Arc::clone(&tracker));
        let id = pager.allocate().unwrap();
        pager.read(id, DataClass::Base).unwrap();
        tracker.logical_read(16);
        let s = tracker.snapshot();
        assert_eq!(s.read_amplification(), RECORDS_PER_PAGE as f64);
    }

    #[test]
    fn physical_bytes_follow_live_pages() {
        let tracker = CostTracker::new();
        let mut pager = Pager::new(MemDevice::new(), tracker);
        let a = pager.allocate().unwrap();
        let _b = pager.allocate().unwrap();
        assert_eq!(pager.physical_bytes(), 2 * PAGE_SIZE as u64);
        pager.free(a).unwrap();
        assert_eq!(pager.physical_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn hdd_profile_charges_more_for_random() {
        let tracker = CostTracker::new();
        let mut pager =
            Pager::with_profile(MemDevice::new(), Arc::clone(&tracker), DeviceProfile::HDD);
        let ids: Vec<_> = (0..3).map(|_| pager.allocate().unwrap()).collect();
        // Sequential: 0,1,2.
        for id in &ids {
            pager.read(*id, DataClass::Base).unwrap();
        }
        let seq = tracker.snapshot().sim_time_ns;
        tracker.reset();
        // Random-ish: 2,0,2.
        pager.read(ids[2], DataClass::Base).unwrap();
        pager.read(ids[0], DataClass::Base).unwrap();
        pager.read(ids[2], DataClass::Base).unwrap();
        let rand = tracker.snapshot().sim_time_ns;
        assert!(rand > seq, "random {rand} should exceed sequential {seq}");
    }
}
