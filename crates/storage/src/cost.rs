//! Device cost model: simulated time per page access.
//!
//! "The fundamental assumption that data has a minimum access granularity
//! holds for all storage mediums today ...; the only difference is that
//! both access time and access granularity vary" (§4). The profiles below
//! encode the classic asymmetries: HDDs punish random access, flash is
//! read/write asymmetric, DRAM is fast and symmetric.

use crate::page::PageId;

/// Per-page access latencies in nanoseconds, split sequential vs. random.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    pub name: &'static str,
    pub seq_read_ns: u64,
    pub rand_read_ns: u64,
    pub seq_write_ns: u64,
    pub rand_write_ns: u64,
}

impl DeviceProfile {
    /// Rotational disk: ~8 ms seek+rotate per random 4 KiB page, ~25 µs per
    /// sequential page at ~160 MB/s.
    pub const HDD: DeviceProfile = DeviceProfile {
        name: "hdd",
        seq_read_ns: 25_000,
        rand_read_ns: 8_000_000,
        seq_write_ns: 25_000,
        rand_write_ns: 8_000_000,
    };

    /// NAND flash SSD: ~80 µs random read, writes ~3× more expensive than
    /// reads (the asymmetry motivating flash-aware write-optimized trees,
    /// LA-tree / FD-tree in §4).
    pub const SSD: DeviceProfile = DeviceProfile {
        name: "ssd",
        seq_read_ns: 10_000,
        rand_read_ns: 80_000,
        seq_write_ns: 30_000,
        rand_write_ns: 240_000,
    };

    /// DRAM: ~0.4 µs per 4 KiB page streamed, ~1 µs random (TLB + row
    /// misses).
    pub const DRAM: DeviceProfile = DeviceProfile {
        name: "dram",
        seq_read_ns: 400,
        rand_read_ns: 1_000,
        seq_write_ns: 400,
        rand_write_ns: 1_000,
    };

    /// CPU cache level: a handful of nanoseconds.
    pub const CACHE: DeviceProfile = DeviceProfile {
        name: "cache",
        seq_read_ns: 20,
        rand_read_ns: 40,
        seq_write_ns: 20,
        rand_write_ns: 40,
    };

    /// Cost of reading `page` when the previous access was `prev`.
    pub fn read_cost(&self, prev: Option<PageId>, page: PageId) -> u64 {
        if is_sequential(prev, page) {
            self.seq_read_ns
        } else {
            self.rand_read_ns
        }
    }

    /// Cost of writing `page` when the previous access was `prev`.
    pub fn write_cost(&self, prev: Option<PageId>, page: PageId) -> u64 {
        if is_sequential(prev, page) {
            self.seq_write_ns
        } else {
            self.rand_write_ns
        }
    }
}

fn is_sequential(prev: Option<PageId>, page: PageId) -> bool {
    match prev {
        Some(p) => page.0 == p.0 || page.0 == p.0 + 1,
        None => false,
    }
}

/// Tracks the device head position to classify accesses.
#[derive(Debug, Default)]
pub struct AccessClassifier {
    last: Option<PageId>,
}

impl AccessClassifier {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a read of `page`; returns its simulated cost.
    pub fn read(&mut self, profile: &DeviceProfile, page: PageId) -> u64 {
        let c = profile.read_cost(self.last, page);
        self.last = Some(page);
        c
    }

    /// Charge a write of `page`; returns its simulated cost.
    pub fn write(&mut self, profile: &DeviceProfile, page: PageId) -> u64 {
        let c = profile.write_cost(self.last, page);
        self.last = Some(page);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_detection() {
        assert!(is_sequential(Some(PageId(4)), PageId(5)));
        assert!(is_sequential(Some(PageId(4)), PageId(4)));
        assert!(!is_sequential(Some(PageId(4)), PageId(6)));
        assert!(!is_sequential(Some(PageId(4)), PageId(3)));
        assert!(!is_sequential(None, PageId(0)));
    }

    #[test]
    fn hdd_random_penalty_dominates() {
        let p = DeviceProfile::HDD;
        assert!(p.rand_read_ns > 100 * p.seq_read_ns);
    }

    #[test]
    fn ssd_write_asymmetry() {
        let p = DeviceProfile::SSD;
        assert!(p.rand_write_ns >= 2 * p.rand_read_ns);
    }

    #[test]
    fn classifier_tracks_head() {
        let mut c = AccessClassifier::new();
        let p = DeviceProfile::HDD;
        // Cold start is random.
        assert_eq!(c.read(&p, PageId(10)), p.rand_read_ns);
        // Next page is sequential.
        assert_eq!(c.read(&p, PageId(11)), p.seq_read_ns);
        // Jump is random again.
        assert_eq!(c.read(&p, PageId(100)), p.rand_read_ns);
        // Overwrite in place is sequential.
        assert_eq!(c.write(&p, PageId(100)), p.seq_write_ns);
    }

    #[test]
    fn scan_cost_is_mostly_sequential() {
        let mut c = AccessClassifier::new();
        let p = DeviceProfile::HDD;
        let total: u64 = (0..1000u64).map(|i| c.read(&p, PageId(i))).sum();
        // One random start + 999 sequential pages.
        assert_eq!(total, p.rand_read_ns + 999 * p.seq_read_ns);
    }
}
