//! Sealed pages: a [`CheckedDevice`] wraps any [`BlockDevice`] and seals
//! every `write_page` with the WAL's CRC-32 in a sidecar map, verifying on
//! `read_page`. Silent bit-rot becomes
//! [`RumError::CorruptPage`] — detect-or-fail, never wrong data.
//!
//! The seal lives in a sidecar (page id → CRC) rather than an in-page
//! trailer so page capacity — and therefore every node layout and every
//! baseline RUM number — is untouched. The sidecar *is* priced: its 4
//! bytes per sealed page are reported by
//! [`checksum_bytes`](CheckedDevice::checksum_bytes) and belong in MO.
//!
//! Stack order matters for fault injection: wrap the checker **around**
//! the [`FaultDevice`](crate::fault::FaultDevice)
//! (`CheckedDevice<FaultDevice<MemDevice>>`) so injected bit-flips and
//! torn pages land *under* the seal and are caught on the next read.

use std::collections::HashMap;
use std::sync::Arc;

use rum_core::{Result, RumError};

use crate::device::{BlockDevice, IoStats};
use crate::page::{PageBuf, PageId};
use crate::wal::crc32;

/// A [`BlockDevice`] wrapper verifying a CRC-32 seal on every read.
pub struct CheckedDevice<D: BlockDevice> {
    inner: D,
    /// Sidecar seal map: raw page id → CRC-32 of the sealed contents.
    /// Pages never written (freshly allocated) have no seal and are served
    /// unverified — there is nothing to verify against yet.
    sums: HashMap<u64, u32>,
}

impl<D: BlockDevice> CheckedDevice<D> {
    pub fn new(inner: D) -> Self {
        CheckedDevice {
            inner,
            sums: HashMap::new(),
        }
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device — the escape hatch tests use
    /// to damage stored bytes behind the seal's back.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Ids of all sealed pages, ascending (deterministic scrub order).
    pub fn sealed_pages(&self) -> Vec<PageId> {
        let mut ids: Vec<u64> = self.sums.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(PageId).collect()
    }

    /// Bytes the sidecar itself occupies — the MO price of detection
    /// (4 CRC bytes per sealed page).
    pub fn checksum_bytes(&self) -> u64 {
        self.sums.len() as u64 * 4
    }

    /// Verify one sealed page without going through the charged pager
    /// path. `Ok(None)` means the seal matches (or the page was never
    /// sealed); `Ok(Some((stored, computed)))` reports a mismatch. Device
    /// errors (transient faults, sticky pages) propagate.
    pub fn check_page(&mut self, id: PageId) -> Result<Option<(u32, u32)>> {
        let stored = match self.sums.get(&id.0) {
            Some(&s) => s,
            None => return Ok(None),
        };
        let buf = self.inner.read_page(id)?;
        let computed = crc32(buf.as_slice());
        if computed == stored {
            Ok(None)
        } else {
            Ok(Some((stored, computed)))
        }
    }

    /// Re-seal `id` over whatever the device currently stores — used by
    /// repair after rebuilding a page's contents out-of-band.
    pub fn reseal(&mut self, id: PageId) -> Result<()> {
        let buf = self.inner.read_page(id)?;
        self.sums.insert(id.0, crc32(buf.as_slice()));
        Ok(())
    }
}

impl<D: BlockDevice> BlockDevice for CheckedDevice<D> {
    fn allocate(&mut self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.sums.remove(&id.0);
        self.inner.free(id)
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        let buf = self.inner.read_page(id)?;
        if let Some(&stored) = self.sums.get(&id.0) {
            let computed = crc32(buf.as_slice());
            if computed != stored {
                return Err(RumError::CorruptPage {
                    id: id.0,
                    stored,
                    computed,
                });
            }
        }
        Ok(buf)
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        let seal = crc32(page.as_slice());
        // Seal only after the write lands: a failed write (transient or
        // torn) leaves the old seal in place, so a half-persisted page is
        // detected on the next read instead of trusted.
        self.inner.write_page(id, page)?;
        self.sums.insert(id.0, seal);
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.inner.live_pages()
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

/// Result of a [`scrub`](crate::pager::Pager::scrub) pass over every
/// sealed page.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Sealed pages visited.
    pub pages_scanned: usize,
    /// Pages whose contents no longer match their seal.
    pub corrupt: Vec<PageId>,
    /// Pages that could not be read at all (sticky-bad sectors, retries
    /// exhausted).
    pub unreadable: Vec<PageId>,
}

impl ScrubReport {
    /// Whether every sealed page verified clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.unreadable.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use crate::fault::{FaultDevice, FaultInjector, FaultPlan, FaultProfile};
    use rum_core::PAGE_SIZE;

    #[test]
    fn seal_roundtrip_serves_exact_bytes() {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.as_mut_slice()[..4].copy_from_slice(&[1, 2, 3, 4]);
        dev.write_page(id, &p).unwrap();
        assert_eq!(dev.read_page(id).unwrap(), p);
        assert_eq!(dev.checksum_bytes(), 4);
        assert_eq!(dev.sealed_pages(), vec![id]);
    }

    #[test]
    fn unsealed_pages_are_served_unverified() {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        // Never written: nothing to verify against.
        assert!(dev.read_page(id).is_ok());
        assert_eq!(dev.checksum_bytes(), 0);
    }

    #[test]
    fn damage_behind_the_seal_is_detected_not_served() {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.as_mut_slice().fill(0x3C);
        dev.write_page(id, &p).unwrap();
        // Corrupt the stored copy directly, bypassing the seal.
        let mut damaged = p.clone();
        damaged.as_mut_slice()[1000] ^= 0x40;
        dev.inner_mut().write_page(id, &damaged).unwrap();
        let err = dev.read_page(id).unwrap_err();
        match err {
            RumError::CorruptPage {
                id: pid,
                stored,
                computed,
            } => {
                assert_eq!(pid, id.0);
                assert_ne!(stored, computed);
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        // check_page reports the same mismatch without consuming it.
        assert!(dev.check_page(id).unwrap().is_some());
        // Re-sealing over the damaged bytes (repair's job, once contents
        // are rebuilt) makes reads serve again.
        dev.reseal(id).unwrap();
        assert_eq!(dev.read_page(id).unwrap(), damaged);
    }

    #[test]
    fn rewrite_updates_the_seal_and_free_drops_it() {
        let mut dev = CheckedDevice::new(MemDevice::new());
        let id = dev.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        dev.write_page(id, &p).unwrap();
        p.as_mut_slice().fill(0xAB);
        dev.write_page(id, &p).unwrap();
        assert_eq!(dev.read_page(id).unwrap(), p);
        assert_eq!(dev.checksum_bytes(), 4, "re-seal, not a second entry");
        dev.free(id).unwrap();
        assert_eq!(dev.checksum_bytes(), 0);
    }

    #[test]
    fn injected_bitflip_is_caught_by_the_seal() {
        // The intended stack: checker around the fault device, so the
        // injected flip lands under the seal.
        let inj = FaultInjector::with_profile(
            FaultPlan::None,
            Some(FaultProfile::bitflips(9, 1_000_000)),
        );
        let mut dev = CheckedDevice::new(FaultDevice::new(MemDevice::new(), inj));
        let id = dev.allocate().unwrap();
        let mut p = PageBuf::zeroed();
        p.as_mut_slice().fill(0x77);
        dev.write_page(id, &p).unwrap(); // flip injected silently
        let err = dev.read_page(id).unwrap_err();
        assert!(
            matches!(err, RumError::CorruptPage { .. }),
            "flip must surface as CorruptPage, got {err:?}"
        );
    }

    #[test]
    fn torn_crash_write_is_caught_by_the_stale_seal() {
        let inj = FaultInjector::new(FaultPlan::torn_at(PAGE_SIZE as u64 + 100));
        let mut dev = CheckedDevice::new(FaultDevice::new(MemDevice::new(), inj));
        let id = dev.allocate().unwrap();
        let mut old = PageBuf::zeroed();
        old.as_mut_slice().fill(0x11);
        dev.write_page(id, &old).unwrap();
        let mut new = PageBuf::zeroed();
        new.as_mut_slice().fill(0x22);
        let err = dev.write_page(id, &new).unwrap_err();
        assert!(matches!(err, RumError::Crash(_)));
        // The torn splice neither matches the old seal nor the new bytes:
        // reading detects it instead of serving the Frankenstein page.
        let err = dev.read_page(id).unwrap_err();
        assert!(matches!(err, RumError::CorruptPage { .. }), "got {err:?}");
    }
}
