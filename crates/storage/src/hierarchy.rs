//! The memory-hierarchy simulator behind Figure 2 of the paper.
//!
//! "The RUM tradeoffs can also be viewed vertically rather than
//! horizontally. For example, the RO_n read and the UO_n update overheads
//! at memory level n can be reduced by storing more data, updates, or
//! meta-data, at the previous level n−1, which results, at least, in a
//! higher MO_{n−1}."
//!
//! A [`MemoryHierarchy`] stacks inclusive LRU cache levels (identity +
//! dirty bit only) over a backing store that holds the actual bytes. Every
//! level keeps its own [`IoStats`], so experiments can observe exactly the
//! vertical tradeoff: grow level n−1's capacity (its MO) and watch level
//! n's reads and writes fall (its RO/UO).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rum_core::{Result, RumError};

use crate::cost::{AccessClassifier, DeviceProfile};
use crate::device::{BlockDevice, IoStats};
use crate::lru::LruSet;
use crate::page::{PageBuf, PageId};

/// One cache level of the hierarchy.
#[derive(Clone, Debug)]
pub struct LevelSpec {
    pub name: String,
    /// Capacity in pages. The MO this level spends.
    pub capacity_pages: usize,
    pub profile: DeviceProfile,
}

impl LevelSpec {
    pub fn new(name: impl Into<String>, capacity_pages: usize, profile: DeviceProfile) -> Self {
        LevelSpec {
            name: name.into(),
            capacity_pages,
            profile,
        }
    }
}

/// Full hierarchy description: cache levels top (fastest) to bottom, plus
/// the profile of the backing store.
#[derive(Clone, Debug)]
pub struct HierarchySpec {
    pub caches: Vec<LevelSpec>,
    pub storage_profile: DeviceProfile,
}

impl HierarchySpec {
    /// The classic three-level stack: CPU cache → DRAM → storage.
    pub fn cache_mem_disk(cache_pages: usize, mem_pages: usize) -> Self {
        HierarchySpec {
            caches: vec![
                LevelSpec::new("cpu-cache", cache_pages, DeviceProfile::CACHE),
                LevelSpec::new("dram", mem_pages, DeviceProfile::DRAM),
            ],
            storage_profile: DeviceProfile::SSD,
        }
    }

    /// A single cache in front of storage (the minimal Figure 2 setup).
    pub fn buffer_and_storage(buffer_pages: usize, storage: DeviceProfile) -> Self {
        HierarchySpec {
            caches: vec![LevelSpec::new("buffer", buffer_pages, DeviceProfile::DRAM)],
            storage_profile: storage,
        }
    }
}

struct CacheLevel {
    spec: LevelSpec,
    lru: LruSet<PageId>,
    stats: Arc<IoStats>,
    classifier: AccessClassifier,
}

impl CacheLevel {
    fn charge_read(&mut self, id: PageId) {
        self.stats.page_reads.fetch_add(1, Ordering::Relaxed);
        let ns = self.classifier.read(&self.spec.profile, id);
        self.stats.sim_time_ns.fetch_add(ns, Ordering::Relaxed);
    }
    fn charge_write(&mut self, id: PageId) {
        self.stats.page_writes.fetch_add(1, Ordering::Relaxed);
        let ns = self.classifier.write(&self.spec.profile, id);
        self.stats.sim_time_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// An inclusive multi-level cache hierarchy implementing [`BlockDevice`].
pub struct MemoryHierarchy {
    caches: Vec<CacheLevel>,
    storage_profile: DeviceProfile,
    storage_stats: Arc<IoStats>,
    storage_classifier: AccessClassifier,
    pages: Vec<Option<PageBuf>>,
    free_list: Vec<PageId>,
}

impl MemoryHierarchy {
    pub fn new(spec: HierarchySpec) -> Self {
        MemoryHierarchy {
            caches: spec
                .caches
                .into_iter()
                .map(|s| CacheLevel {
                    lru: LruSet::new(s.capacity_pages),
                    stats: Arc::new(IoStats::default()),
                    classifier: AccessClassifier::new(),
                    spec: s,
                })
                .collect(),
            storage_profile: spec.storage_profile,
            storage_stats: Arc::new(IoStats::default()),
            storage_classifier: AccessClassifier::new(),
            pages: Vec::new(),
            free_list: Vec::new(),
        }
    }

    /// Number of levels including storage.
    pub fn levels(&self) -> usize {
        self.caches.len() + 1
    }

    /// Name of level `i` (storage is the last level).
    pub fn level_name(&self, i: usize) -> &str {
        if i < self.caches.len() {
            &self.caches[i].spec.name
        } else {
            self.storage_profile.name
        }
    }

    /// I/O stats of level `i` (storage is the last level).
    pub fn level_stats(&self, i: usize) -> &Arc<IoStats> {
        if i < self.caches.len() {
            &self.caches[i].stats
        } else {
            &self.storage_stats
        }
    }

    /// Pages resident at cache level `i` — its current MO in pages.
    pub fn level_resident(&self, i: usize) -> usize {
        if i < self.caches.len() {
            self.caches[i].lru.len()
        } else {
            self.pages.len() - self.free_list.len()
        }
    }

    /// Total simulated time across all levels, nanoseconds.
    pub fn total_sim_ns(&self) -> u64 {
        self.caches.iter().map(|c| c.stats.sim_ns()).sum::<u64>() + self.storage_stats.sim_ns()
    }

    fn slot(&self, id: PageId) -> Result<()> {
        match self.pages.get(id.index()) {
            Some(Some(_)) => Ok(()),
            Some(None) => Err(RumError::Storage(format!("{id} is freed"))),
            None => Err(RumError::Storage(format!("{id} out of bounds"))),
        }
    }

    fn charge_storage_read(&mut self, id: PageId) {
        self.storage_stats
            .page_reads
            .fetch_add(1, Ordering::Relaxed);
        let ns = self.storage_classifier.read(&self.storage_profile, id);
        self.storage_stats
            .sim_time_ns
            .fetch_add(ns, Ordering::Relaxed);
    }

    fn charge_storage_write(&mut self, id: PageId) {
        self.storage_stats
            .page_writes
            .fetch_add(1, Ordering::Relaxed);
        let ns = self.storage_classifier.write(&self.storage_profile, id);
        self.storage_stats
            .sim_time_ns
            .fetch_add(ns, Ordering::Relaxed);
    }

    /// Insert `id` into cache level `level` (dirty or clean), cascading any
    /// dirty evictions down the hierarchy.
    fn install(&mut self, level: usize, id: PageId, dirty: bool) {
        let mut pending = vec![(level, id, dirty)];
        while let Some((lvl, pid, d)) = pending.pop() {
            if lvl >= self.caches.len() {
                // Fell out of the bottom cache: a dirty page is written to
                // storage; a clean one just vanishes (storage always holds
                // the data in this simulator).
                if d {
                    self.charge_storage_write(pid);
                }
                continue;
            }
            if let Some((victim, victim_dirty)) = self.caches[lvl].lru.insert(pid, d) {
                if victim_dirty {
                    // Dirty eviction: written to the level below, which also
                    // installs it there.
                    if lvl + 1 < self.caches.len() {
                        self.caches[lvl + 1].charge_write(victim);
                        pending.push((lvl + 1, victim, true));
                    } else {
                        self.charge_storage_write(victim);
                    }
                }
            }
        }
    }
}

impl BlockDevice for MemoryHierarchy {
    fn allocate(&mut self) -> Result<PageId> {
        self.storage_stats
            .allocations
            .fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free_list.pop() {
            self.pages[id.index()] = Some(PageBuf::zeroed());
            Ok(id)
        } else {
            let id = PageId(self.pages.len() as u64);
            self.pages.push(Some(PageBuf::zeroed()));
            Ok(id)
        }
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.slot(id)?;
        for c in &mut self.caches {
            c.lru.remove(&id);
        }
        self.pages[id.index()] = None;
        self.free_list.push(id);
        self.storage_stats.frees.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        self.slot(id)?;
        // Find the highest level holding the page.
        let mut hit_level = self.caches.len(); // storage by default
        for (i, c) in self.caches.iter_mut().enumerate() {
            if c.lru.touch(&id) {
                hit_level = i;
                break;
            }
        }
        if hit_level == self.caches.len() {
            self.charge_storage_read(id);
        } else {
            self.caches[hit_level].charge_read(id);
        }
        // Promote into every level above the hit (inclusive hierarchy).
        for lvl in (0..hit_level).rev() {
            self.install(lvl, id, false);
        }
        Ok(self.pages[id.index()]
            .clone()
            .expect("slot() verified a live page buffer at this index"))
    }

    fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        self.slot(id)?;
        self.pages[id.index()] = Some(page.clone());
        if self.caches.is_empty() {
            self.charge_storage_write(id);
        } else {
            // Write-back: the top level absorbs the write.
            self.caches[0].charge_write(id);
            self.install(0, id, true);
        }
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.pages.len() - self.free_list.len()
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.storage_stats
    }

    fn sync(&mut self) -> Result<()> {
        // Flush dirty pages level by level, top down.
        for lvl in 0..self.caches.len() {
            let entries = self.caches[lvl].lru.drain();
            for (id, dirty) in entries {
                if dirty {
                    if lvl + 1 < self.caches.len() {
                        self.caches[lvl + 1].charge_write(id);
                        self.install(lvl + 1, id, true);
                    } else {
                        self.charge_storage_write(id);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_marker(h: &mut MemoryHierarchy, id: PageId, v: u64) {
        let mut p = PageBuf::zeroed();
        p.write_u64(0, v);
        h.write_page(id, &p).unwrap();
    }

    #[test]
    fn data_survives_the_hierarchy() {
        let mut h = MemoryHierarchy::new(HierarchySpec::cache_mem_disk(2, 4));
        let ids: Vec<_> = (0..10).map(|_| h.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            write_marker(&mut h, *id, i as u64);
        }
        h.sync().unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(h.read_page(*id).unwrap().read_u64(0), i as u64);
        }
    }

    #[test]
    fn top_level_absorbs_hot_reads() {
        let mut h = MemoryHierarchy::new(HierarchySpec::cache_mem_disk(4, 16));
        let id = h.allocate().unwrap();
        h.read_page(id).unwrap(); // storage read, promoted everywhere
        let storage_before = h.level_stats(2).reads();
        for _ in 0..100 {
            h.read_page(id).unwrap();
        }
        assert_eq!(
            h.level_stats(2).reads(),
            storage_before,
            "no more storage reads"
        );
        assert!(h.level_stats(0).reads() >= 100);
    }

    #[test]
    fn bigger_upper_level_reduces_lower_level_reads() {
        // The Figure 2 claim, end to end: MO at level n−1 buys down RO at
        // level n. (A randomized access pattern is used because LRU on a
        // strict cyclic scan misses at every capacity below the working
        // set — the classic scan pathology.)
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let storage_reads = |cache_pages: usize| {
            let mut h = MemoryHierarchy::new(HierarchySpec::buffer_and_storage(
                cache_pages,
                DeviceProfile::SSD,
            ));
            let ids: Vec<_> = (0..32).map(|_| h.allocate().unwrap()).collect();
            // Warm: touch everything once.
            for id in &ids {
                h.read_page(*id).unwrap();
            }
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..1000 {
                let id = ids[rng.gen_range(0..ids.len())];
                h.read_page(id).unwrap();
            }
            h.level_stats(1).reads()
        };
        let small = storage_reads(4);
        let medium = storage_reads(16);
        let large = storage_reads(32);
        assert!(small > medium, "{small} <= {medium}");
        assert!(medium > large, "{medium} <= {large}");
        assert_eq!(large, 32, "fully cached after the warm-up round");
    }

    #[test]
    fn dirty_evictions_cascade_to_storage() {
        let mut h = MemoryHierarchy::new(HierarchySpec::buffer_and_storage(2, DeviceProfile::HDD));
        let ids: Vec<_> = (0..6).map(|_| h.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            write_marker(&mut h, *id, i as u64);
        }
        // Cache holds 2; at least 4 dirty pages must have reached storage.
        assert!(h.level_stats(1).writes() >= 4);
        h.sync().unwrap();
        assert_eq!(h.level_stats(1).writes(), 6);
    }

    #[test]
    fn write_coalescing_in_upper_level() {
        let mut h = MemoryHierarchy::new(HierarchySpec::buffer_and_storage(4, DeviceProfile::SSD));
        let id = h.allocate().unwrap();
        for v in 0..50 {
            write_marker(&mut h, id, v);
        }
        h.sync().unwrap();
        assert_eq!(h.level_stats(1).writes(), 1, "50 writes coalesced to one");
    }

    #[test]
    fn free_purges_all_levels() {
        let mut h = MemoryHierarchy::new(HierarchySpec::cache_mem_disk(4, 8));
        let id = h.allocate().unwrap();
        write_marker(&mut h, id, 3);
        h.free(id).unwrap();
        assert!(h.read_page(id).is_err());
        assert_eq!(h.level_resident(0), 0);
        assert_eq!(h.level_resident(1), 0);
    }

    #[test]
    fn level_metadata() {
        let h = MemoryHierarchy::new(HierarchySpec::cache_mem_disk(4, 8));
        assert_eq!(h.levels(), 3);
        assert_eq!(h.level_name(0), "cpu-cache");
        assert_eq!(h.level_name(1), "dram");
        assert_eq!(h.level_name(2), "ssd");
    }
}
